//! Deterministic discrete-event executor.
//!
//! Sites and the coordinator are sequential event handlers with a
//! `ready_at` clock; a handler invoked by a message arriving at `t`
//! starts at `max(t, ready_at)`, runs for `charged ops × ns_per_op`
//! (plus a fixed per-message overhead), and its sends are delivered
//! after `latency + bytes / bandwidth`. When the event queue drains,
//! the coordinator's `on_quiescent` runs at the instant the last
//! handler finished — the idealized fixpoint-detection barrier.
//!
//! Everything is ordered by `(time, sequence-number)`, so runs are
//! fully deterministic and independent of host parallelism: this is
//! what lets a laptop reproduce the response-time *shape* of a
//! 20-machine cluster (DESIGN.md §4).

use crate::cost::CostModel;
use crate::fault::FaultPlan;
use crate::message::{Endpoint, MsgClass, WireSize};
use crate::metrics::RunMetrics;
use crate::site::{CoordinatorLogic, Outbox, SiteLogic};
use crate::RunOutcome;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

struct Event<M> {
    at: u64,
    seq: u64,
    from: Endpoint,
    to: Endpoint,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The deterministic discrete-event executor.
pub struct VirtualExecutor {
    cost: CostModel,
    faults: Option<FaultPlan>,
    start_workers: usize,
}

impl VirtualExecutor {
    /// Creates an executor with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        VirtualExecutor {
            cost,
            faults: None,
            start_workers: 1,
        }
    }

    /// Enables deterministic at-least-once fault injection: the
    /// configured fraction of **data** messages is delivered twice
    /// (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Fans the per-site `on_start` handlers (the Phase-1 local
    /// evaluations, by far the heaviest handlers of the dGPM family)
    /// out over up to `workers` OS threads. The outboxes are replayed
    /// in site order on the driving thread afterwards, so sequence
    /// numbers, the event heap and every virtual quantity are
    /// bit-identical to the sequential executor — this is host
    /// parallelism *under* the virtual clock, not a semantic change.
    /// `workers <= 1` (and single-site runs) keep the fully
    /// sequential path.
    pub fn with_start_workers(mut self, workers: usize) -> Self {
        self.start_workers = workers.max(1);
        self
    }

    /// Runs the protocol to completion; see [`crate::run`].
    pub fn run<M, C, S>(&self, mut coordinator: C, mut sites: Vec<S>) -> RunOutcome<C, S>
    where
        M: WireSize + Clone + Send,
        C: CoordinatorLogic<M>,
        S: SiteLogic<M> + Send,
    {
        let n = sites.len();
        let wall_start = Instant::now();
        let mut metrics = RunMetrics::new(n);
        let mut heap: BinaryHeap<Event<M>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut ready = vec![0u64; n];
        let mut coord_ready = 0u64;

        let ready_of = |ready: &[u64], coord_ready: u64, ep: Endpoint| -> u64 {
            match ep {
                Endpoint::Coordinator => coord_ready,
                Endpoint::Site(i) => ready[i as usize],
            }
        };

        // Finishes a handler invocation: advances the endpoint clock
        // and schedules its sends.
        let mut finish = |ep: Endpoint,
                          arrival: u64,
                          overhead: u64,
                          out: Outbox<M>,
                          ready: &mut [u64],
                          coord_ready: &mut u64,
                          heap: &mut BinaryHeap<Event<M>>,
                          metrics: &mut RunMetrics|
         -> u64 {
            let start = arrival.max(ready_of(ready, *coord_ready, ep));
            let busy = self.cost.compute_ns_at(ep.site_index(), out.ops) + overhead;
            let end = start + busy;
            match ep {
                Endpoint::Coordinator => *coord_ready = end,
                Endpoint::Site(i) => ready[i as usize] = end,
            }
            metrics.record_ops(ep, out.ops);
            for (to, class, msg) in out.sends {
                let bytes = msg.wire_size();
                metrics.record_send_from(ep, class, bytes);
                seq += 1;
                // At-least-once injection: a duplicate copy of a data
                // message arrives after an extra delay, as if a
                // retrying transport re-sent it.
                if class == MsgClass::Data {
                    if let Some(plan) = &self.faults {
                        if plan.duplicates(seq) {
                            metrics.record_send_from(ep, class, bytes);
                            metrics.duplicated_messages += 1;
                            metrics.duplicated_bytes += bytes as u64;
                            seq += 1;
                            heap.push(Event {
                                at: end
                                    + self.cost.delivery_ns_jittered(bytes, seq)
                                    + plan.extra_delay_ns,
                                seq,
                                from: ep,
                                to,
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                heap.push(Event {
                    at: end + self.cost.delivery_ns_jittered(bytes, seq),
                    seq,
                    from: ep,
                    to,
                    msg,
                });
            }
            end
        };

        // Start-up handlers, all at t = 0.
        {
            let mut out = Outbox::new(Endpoint::Coordinator, n);
            coordinator.on_start(&mut out);
            finish(
                Endpoint::Coordinator,
                0,
                0,
                out,
                &mut ready,
                &mut coord_ready,
                &mut heap,
                &mut metrics,
            );
        }
        // Site start handlers: optionally evaluated on a scoped pool
        // (disjoint `&mut` sites handed out via a shared work queue),
        // then *replayed* strictly in site order so seq assignment —
        // and with it the whole event schedule — matches the
        // sequential path bit for bit.
        let workers = self.start_workers.min(n);
        let start_outs: Vec<Outbox<M>> = if workers > 1 {
            let mut slots: Vec<Option<Outbox<M>>> = (0..n).map(|_| None).collect();
            {
                let jobs =
                    std::sync::Mutex::new(sites.iter_mut().zip(slots.iter_mut()).enumerate());
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let job = jobs.lock().unwrap().next();
                            let Some((i, (site, slot))) = job else { break };
                            let ep = Endpoint::Site(i as u32);
                            let mut out = Outbox::new(ep, n);
                            site.on_start(&mut out);
                            *slot = Some(out);
                        });
                    }
                });
            }
            slots
                .into_iter()
                .map(|s| s.expect("every start job ran"))
                .collect()
        } else {
            sites
                .iter_mut()
                .enumerate()
                .map(|(i, site)| {
                    let mut out = Outbox::new(Endpoint::Site(i as u32), n);
                    site.on_start(&mut out);
                    out
                })
                .collect()
        };
        for (i, out) in start_outs.into_iter().enumerate() {
            finish(
                Endpoint::Site(i as u32),
                0,
                0,
                out,
                &mut ready,
                &mut coord_ready,
                &mut heap,
                &mut metrics,
            );
        }

        let response_time;
        loop {
            while let Some(ev) = heap.pop() {
                let mut out = Outbox::new(ev.to, n);
                match ev.to {
                    Endpoint::Coordinator => {
                        coordinator.on_message(ev.from, ev.msg, &mut out);
                    }
                    Endpoint::Site(i) => {
                        sites[i as usize].on_message(ev.from, ev.msg, &mut out);
                    }
                }
                finish(
                    ev.to,
                    ev.at,
                    self.cost.ns_per_message,
                    out,
                    &mut ready,
                    &mut coord_ready,
                    &mut heap,
                    &mut metrics,
                );
            }

            // Quiescent: all deliveries processed; the barrier fires
            // once every endpoint has finished its last handler.
            let now = ready.iter().copied().max().unwrap_or(0).max(coord_ready);
            metrics.quiescence_rounds += 1;
            let mut out = Outbox::new(Endpoint::Coordinator, n);
            let done = coordinator.on_quiescent(&mut out);
            let end = finish(
                Endpoint::Coordinator,
                now,
                0,
                out,
                &mut ready,
                &mut coord_ready,
                &mut heap,
                &mut metrics,
            );
            if done {
                response_time = end;
                break;
            }
            assert!(
                !heap.is_empty(),
                "protocol stalled: on_quiescent returned false without sending"
            );
        }

        metrics.virtual_time_ns = response_time;
        metrics.wall_time = wall_start.elapsed();
        RunOutcome {
            coordinator,
            sites,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: coordinator sends `k` to site 0; site replies `k-1`;
    /// repeat until 0.
    struct PingCoord {
        start: u32,
        finished: bool,
    }
    struct PongSite;

    impl CoordinatorLogic<u32> for PingCoord {
        fn on_start(&mut self, out: &mut Outbox<u32>) {
            out.send(Endpoint::Site(0), self.start);
        }
        fn on_message(&mut self, _from: Endpoint, msg: u32, out: &mut Outbox<u32>) {
            out.charge_ops(1);
            if msg == 0 {
                self.finished = true;
            } else {
                out.send(Endpoint::Site(0), msg);
            }
        }
        fn on_quiescent(&mut self, _out: &mut Outbox<u32>) -> bool {
            assert!(self.finished, "quiesced before finishing");
            true
        }
    }
    impl SiteLogic<u32> for PongSite {
        fn on_start(&mut self, _out: &mut Outbox<u32>) {}
        fn on_message(&mut self, from: Endpoint, msg: u32, out: &mut Outbox<u32>) {
            out.charge_ops(10);
            out.send(from, msg - 1);
        }
    }

    #[test]
    fn ping_pong_terminates_with_metrics() {
        let exec = VirtualExecutor::new(CostModel::default());
        let outcome = exec.run(
            PingCoord {
                start: 5,
                finished: false,
            },
            vec![PongSite],
        );
        assert!(outcome.coordinator.finished);
        // 5 pings + 5 pongs.
        assert_eq!(outcome.metrics.data_messages, 10);
        assert_eq!(outcome.metrics.data_bytes, 40);
        assert_eq!(outcome.metrics.site_ops, vec![50]);
        assert_eq!(outcome.metrics.coordinator_ops, 5);
        assert_eq!(outcome.metrics.quiescence_rounds, 1);
        assert!(outcome.metrics.virtual_time_ns > 10 * CostModel::default().latency_ns);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let exec = VirtualExecutor::new(CostModel::default());
            let mut m = exec
                .run(
                    PingCoord {
                        start: 8,
                        finished: false,
                    },
                    vec![PongSite],
                )
                .metrics;
            // Wall time is real time and legitimately varies; all the
            // virtual quantities must be bit-identical.
            m.wall_time = std::time::Duration::ZERO;
            m
        };
        assert_eq!(run(), run());
    }

    /// A two-phase protocol: phase 1 scatters to all sites; at the
    /// first quiescence the coordinator starts phase 2; the second
    /// quiescence terminates.
    struct TwoPhase {
        phase: u32,
    }
    struct EchoSite {
        received: u32,
    }
    impl CoordinatorLogic<u32> for TwoPhase {
        fn on_start(&mut self, out: &mut Outbox<u32>) {
            for i in 0..out.num_sites() {
                out.send_control(Endpoint::Site(i as u32), 1);
            }
        }
        fn on_message(&mut self, _from: Endpoint, _msg: u32, _out: &mut Outbox<u32>) {}
        fn on_quiescent(&mut self, out: &mut Outbox<u32>) -> bool {
            self.phase += 1;
            if self.phase == 1 {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), 2);
                }
                false
            } else {
                true
            }
        }
    }
    impl SiteLogic<u32> for EchoSite {
        fn on_start(&mut self, _out: &mut Outbox<u32>) {}
        fn on_message(&mut self, _from: Endpoint, msg: u32, out: &mut Outbox<u32>) {
            self.received += msg;
            out.send_result(Endpoint::Coordinator, msg);
        }
    }

    #[test]
    fn multi_phase_quiescence() {
        let exec = VirtualExecutor::new(CostModel::compute_only());
        let outcome = exec.run(
            TwoPhase { phase: 0 },
            vec![EchoSite { received: 0 }, EchoSite { received: 0 }],
        );
        assert_eq!(outcome.metrics.quiescence_rounds, 2);
        assert_eq!(outcome.metrics.control_messages, 4);
        assert_eq!(outcome.metrics.result_messages, 4);
        for s in &outcome.sites {
            assert_eq!(s.received, 3);
        }
    }

    /// Parallelism check: k sites each charging W ops in their start
    /// handler finish in ~W time, not k*W — the virtual clock models
    /// one processor per site.
    struct NullCoord;
    impl CoordinatorLogic<()> for NullCoord {
        fn on_start(&mut self, _out: &mut Outbox<()>) {}
        fn on_message(&mut self, _f: Endpoint, _m: (), _o: &mut Outbox<()>) {}
        fn on_quiescent(&mut self, _out: &mut Outbox<()>) -> bool {
            true
        }
    }
    struct BusySite {
        work: u64,
    }
    impl SiteLogic<()> for BusySite {
        fn on_start(&mut self, out: &mut Outbox<()>) {
            out.charge_ops(self.work);
        }
        fn on_message(&mut self, _f: Endpoint, _m: (), _o: &mut Outbox<()>) {}
    }

    #[test]
    fn sites_run_in_parallel_in_virtual_time() {
        let exec = VirtualExecutor::new(CostModel::compute_only());
        let one = exec.run(NullCoord, vec![BusySite { work: 1_000 }]);
        let many = exec.run(
            NullCoord,
            (0..8).map(|_| BusySite { work: 1_000 }).collect(),
        );
        assert_eq!(one.metrics.virtual_time_ns, many.metrics.virtual_time_ns);
        assert_eq!(many.metrics.total_ops, 8_000);
    }

    #[test]
    fn straggler_dominates_response_time() {
        // 8 equal sites; slowing one by 10× stretches the virtual
        // response time by ~10× (the barrier waits for the straggler).
        let fast = VirtualExecutor::new(CostModel::compute_only());
        let base = fast
            .run(
                NullCoord,
                (0..8).map(|_| BusySite { work: 1_000 }).collect(),
            )
            .metrics
            .virtual_time_ns;
        let slow = VirtualExecutor::new(CostModel::compute_only().with_straggler(3, 10.0));
        let slowed = slow
            .run(
                NullCoord,
                (0..8).map(|_| BusySite { work: 1_000 }).collect(),
            )
            .metrics
            .virtual_time_ns;
        assert_eq!(base, 1_000);
        assert_eq!(slowed, 10_000);
    }

    #[test]
    fn duplication_inflates_traffic_and_redelivers() {
        // Count deliveries at the site: with duplicate_rate = 1 every
        // data message arrives twice.
        struct CountSite {
            seen: u64,
        }
        impl SiteLogic<u32> for CountSite {
            fn on_start(&mut self, _out: &mut Outbox<u32>) {}
            fn on_message(&mut self, _f: Endpoint, _m: u32, _o: &mut Outbox<u32>) {
                self.seen += 1;
            }
        }
        struct SendThree;
        impl CoordinatorLogic<u32> for SendThree {
            fn on_start(&mut self, out: &mut Outbox<u32>) {
                for k in 0..3 {
                    out.send(Endpoint::Site(0), k);
                }
            }
            fn on_message(&mut self, _f: Endpoint, _m: u32, _o: &mut Outbox<u32>) {}
            fn on_quiescent(&mut self, _out: &mut Outbox<u32>) -> bool {
                true
            }
        }
        let exec = VirtualExecutor::new(CostModel::default())
            .with_faults(crate::fault::FaultPlan::duplicating(1.0, 0));
        let outcome = exec.run(SendThree, vec![CountSite { seen: 0 }]);
        assert_eq!(outcome.sites[0].seen, 6);
        assert_eq!(outcome.metrics.duplicated_messages, 3);
        assert_eq!(outcome.metrics.data_messages, 6);
        assert_eq!(
            outcome.metrics.duplicated_bytes * 2,
            outcome.metrics.data_bytes
        );
    }

    #[test]
    fn control_and_result_traffic_is_never_duplicated() {
        let exec = VirtualExecutor::new(CostModel::compute_only())
            .with_faults(crate::fault::FaultPlan::duplicating(1.0, 0));
        let outcome = exec.run(
            TwoPhase { phase: 0 },
            vec![EchoSite { received: 0 }, EchoSite { received: 0 }],
        );
        assert_eq!(outcome.metrics.duplicated_messages, 0);
        assert_eq!(outcome.metrics.control_messages, 4);
        assert_eq!(outcome.metrics.result_messages, 4);
        for s in &outcome.sites {
            assert_eq!(s.received, 3);
        }
    }

    /// The pooled start path must be bit-identical to the sequential
    /// one: same metrics, same message arrival order at the
    /// coordinator, same virtual clock.
    #[test]
    fn pooled_start_is_bit_identical_to_sequential() {
        struct StartSite {
            id: u32,
        }
        impl SiteLogic<u32> for StartSite {
            fn on_start(&mut self, out: &mut Outbox<u32>) {
                // Uneven work so threads genuinely finish out of order.
                out.charge_ops(1 + 997 * (self.id as u64 % 5));
                out.send(Endpoint::Coordinator, self.id);
                if self.id.is_multiple_of(2) {
                    out.send_control(Endpoint::Coordinator, 1_000 + self.id);
                }
            }
            fn on_message(&mut self, _f: Endpoint, _m: u32, _o: &mut Outbox<u32>) {}
        }
        struct Collect {
            seen: Vec<u32>,
        }
        impl CoordinatorLogic<u32> for Collect {
            fn on_start(&mut self, _out: &mut Outbox<u32>) {}
            fn on_message(&mut self, _f: Endpoint, msg: u32, _o: &mut Outbox<u32>) {
                self.seen.push(msg);
            }
            fn on_quiescent(&mut self, _out: &mut Outbox<u32>) -> bool {
                true
            }
        }
        let run = |workers: usize| {
            let exec = VirtualExecutor::new(CostModel::default()).with_start_workers(workers);
            let mut outcome = exec.run(
                Collect { seen: Vec::new() },
                (0..16).map(|id| StartSite { id }).collect(),
            );
            outcome.metrics.wall_time = std::time::Duration::ZERO;
            (outcome.coordinator.seen, outcome.metrics)
        };
        let sequential = run(1);
        for workers in [2, 4, 16, 64] {
            assert_eq!(run(workers), sequential, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "protocol stalled")]
    fn stalled_protocol_panics() {
        struct Stall;
        impl CoordinatorLogic<()> for Stall {
            fn on_start(&mut self, _out: &mut Outbox<()>) {}
            fn on_message(&mut self, _f: Endpoint, _m: (), _o: &mut Outbox<()>) {}
            fn on_quiescent(&mut self, _out: &mut Outbox<()>) -> bool {
                false
            }
        }
        let exec = VirtualExecutor::new(CostModel::default());
        let _ = exec.run::<(), _, BusySite>(Stall, vec![]);
    }
}
