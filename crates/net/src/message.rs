//! Message addressing, classification and wire-size accounting.

/// A message destination or source: the coordinator `Sc` or one of the
/// worker sites `S1..Sn` (0-based here).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Endpoint {
    /// The coordinator site `Sc`.
    Coordinator,
    /// Worker site `Si` (0-based).
    Site(u32),
}

impl Endpoint {
    /// The site index, if this is a worker site.
    pub fn site_index(self) -> Option<usize> {
        match self {
            Endpoint::Coordinator => None,
            Endpoint::Site(i) => Some(i as usize),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Coordinator => write!(f, "Sc"),
            Endpoint::Site(i) => write!(f, "S{}", i + 1),
        }
    }
}

/// Shipment accounting class of a message (see
/// [`crate::metrics::RunMetrics`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// Algorithm data: Boolean variables, equations, shipped subgraphs.
    /// This is the paper's "data shipment" (DS) metric.
    Data,
    /// Protocol control: query broadcast, barriers, changed-flags,
    /// termination votes.
    Control,
    /// Final result collection (partial matches sent to `Sc`), which
    /// the paper's DS figures exclude.
    Result,
}

/// Serialized size of a message in bytes.
///
/// Sizes are computed by hand per message type (no serialization crate
/// is pulled in just for accounting); implementations should match what
/// a compact binary encoding would ship. The executors use this for the
/// DS metrics and for the bandwidth term of the virtual-time cost
/// model.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        // 4-byte length prefix plus elements.
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_is_one_based() {
        assert_eq!(Endpoint::Coordinator.to_string(), "Sc");
        assert_eq!(Endpoint::Site(0).to_string(), "S1");
        assert_eq!(Endpoint::Site(2).site_index(), Some(2));
        assert_eq!(Endpoint::Coordinator.site_index(), None);
    }

    #[test]
    fn wire_sizes_compose() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!((1u32, 2u64).wire_size(), 12);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.wire_size(), 4 + 12);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.wire_size(), 4);
    }
}
