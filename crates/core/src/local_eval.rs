//! `lEval`: optimistic local evaluation with incremental falsification
//! (§4.1, Fig. 4 of the paper).
//!
//! Each site keeps, for every node of its fragment (local *and*
//! virtual) and every query node, a candidacy bit for the Boolean
//! variable `X(u,v)`:
//!
//! * label mismatch → `false` from the start (both sides of a crossing
//!   edge know the virtual node's label, so this never needs shipping);
//! * `u` a sink query node and labels match → `true` forever (`lEval`
//!   line 5);
//! * otherwise `X(u,v)` starts optimistically `true` and can only be
//!   *falsified* — for local nodes by the counter-based worklist below,
//!   for virtual nodes by falsification messages from their owner.
//!
//! The counters are the HHK scheme restricted to the fragment: pair
//! `(u, v)` holds, per query edge `(u, u')`, the number of
//! still-candidate successors matching `u'`. Virtual nodes have no
//! out-edges in `Ei`, so their pairs are never falsified locally —
//! exactly the paper's "always assume the unevaluated virtual nodes
//! are match candidates".
//!
//! [`LocalEval::apply_virtual_falsifications`] is the *incremental*
//! `lEval` of §4.2: it touches only the affected area `AFF` (the
//! counters reachable from the changed variables), and returns the
//! in-node variables that became false — precisely what `lMsg` must
//! ship. The non-incremental `dGPMNOpt` variant instead rebuilds a
//! fresh `LocalEval` with the known-false virtual variables pinned
//! (`LocalEval::new_with_pinned`).

use crate::vars::Var;
use dgs_graph::{Pattern, QNodeId};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::matchset::{MatchSet, SetBits};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-site optimistic evaluation state.
pub struct LocalEval {
    frag: Arc<Fragmentation>,
    site: SiteId,
    q: Arc<Pattern>,
    nq: usize,
    n: usize,
    n_local: usize,
    /// Per query node: `(edge index, parent)` pairs of incoming query
    /// edges.
    parent_edges: Vec<Vec<(usize, u16)>>,
    /// Per query node: indices of outgoing query edges.
    out_edges: Vec<Vec<usize>>,
    /// Candidacy of `X(u, v)`: one bitset row per query variable over
    /// the fragment index arena (locals first, then virtuals).
    cand: MatchSet,
    /// Support counters: `cnt[e * n + idx]` (meaningful for local
    /// indices only).
    cnt: Vec<u32>,
    /// Charged basic operations since the last [`LocalEval::take_ops`].
    ops: u64,
}

impl LocalEval {
    /// Builds the evaluation state and runs the initial local fixpoint
    /// (Phase 1 partial evaluation). Returns the state and the in-node
    /// variables that are already falsified — the site's first
    /// `lMsg` payload.
    pub fn new(frag: Arc<Fragmentation>, site: SiteId, q: Arc<Pattern>) -> (Self, Vec<Var>) {
        Self::new_with_pinned(frag, site, q, &HashSet::new())
    }

    /// Like [`LocalEval::new`], but with a set of virtual variables
    /// already known false (used by the from-scratch re-evaluation of
    /// `dGPMNOpt`).
    pub fn new_with_pinned(
        frag: Arc<Fragmentation>,
        site: SiteId,
        q: Arc<Pattern>,
        pinned_false: &HashSet<Var>,
    ) -> (Self, Vec<Var>) {
        let f = frag.fragment(site);
        let nq = q.node_count();
        let n = f.n_total();
        let n_local = f.n_local();
        let qedges: Vec<(u16, u16)> = q.edges().map(|(u, c)| (u.0, c.0)).collect();
        let ne = qedges.len();
        let mut parent_edges: Vec<Vec<(usize, u16)>> = vec![Vec::new(); nq];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nq];
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            parent_edges[uc as usize].push((e, u));
            out_edges[u as usize].push(e);
        }

        let mut ops: u64 = 0;

        // Candidacy by label: one bitset row of label-matched indices
        // per label (single pass over the fragment), then candidate
        // rows are word-at-a-time copies. Virtual pairs additionally
        // respect the pinned-false set.
        let label_bound = q
            .labels()
            .iter()
            .map(|l| l.index() + 1)
            .max()
            .unwrap_or(0)
            .max(
                (0..n as u32)
                    .map(|idx| f.label(idx).index() + 1)
                    .max()
                    .unwrap_or(0),
            );
        let mut by_label = MatchSet::new(label_bound, n);
        for idx in 0..n as u32 {
            ops += 1;
            by_label.set(f.label(idx).index(), idx);
        }
        let mut cand = MatchSet::new(nq, n);
        for u in q.nodes() {
            ops += cand.words_per_row() as u64;
            cand.copy_row_from(u.index(), by_label.row(q.label(u).index()));
        }
        for var in pinned_false {
            ops += 1;
            if (var.q as usize) < nq {
                if let Some(idx) = f.index_of(var.node_id()) {
                    if f.is_virtual(idx) {
                        cand.remove(var.q as usize, idx);
                    }
                }
            }
        }

        // Seed counters from current candidacy: per query edge, a
        // contiguous sorted-slice sweep over each local node's
        // successors against the child's candidate row.
        let mut cnt = vec![0u32; ne * n];
        for (e, &(_, uc)) in qedges.iter().enumerate() {
            for idx in 0..n_local as u32 {
                let mut c = 0u32;
                for &s in f.successors(idx) {
                    ops += 1;
                    if cand.test(uc as usize, s) {
                        c += 1;
                    }
                }
                cnt[e * n + idx as usize] = c;
            }
        }

        let mut ev = LocalEval {
            frag: Arc::clone(&frag),
            site,
            q,
            nq,
            n,
            n_local,
            parent_edges,
            out_edges,
            cand,
            cnt,
            ops,
        };

        // Initial worklist: local label-candidates with an unsupported
        // query edge — walk only the set bits of each row, which are
        // ascending, so the scan stops at the first virtual index.
        let mut worklist: Vec<(u16, u32)> = Vec::new();
        for u in 0..nq as u16 {
            let row = ev.cand.row(u as usize).to_vec();
            for idx in SetBits::new(&row) {
                if idx as usize >= n_local {
                    break;
                }
                ev.ops += 1;
                let dead = ev.out_edges[u as usize]
                    .iter()
                    .any(|&e| ev.cnt[e * n + idx as usize] == 0);
                if dead {
                    ev.cand.remove(u as usize, idx);
                    worklist.push((u, idx));
                }
            }
        }
        let falsified = ev.run_worklist(worklist);
        (ev, falsified)
    }

    #[inline]
    fn fragment(&self) -> &dgs_partition::Fragment {
        self.frag.fragment(self.site)
    }

    /// Is `X(u, idx)` still a candidate? (`idx` is a fragment-local
    /// index.)
    #[inline]
    pub fn is_candidate(&self, u: u16, idx: u32) -> bool {
        self.cand.test(u as usize, idx)
    }

    /// The pattern this evaluation runs.
    pub fn pattern(&self) -> &Pattern {
        &self.q
    }

    /// Fragment-local index space size.
    pub fn n_total(&self) -> usize {
        self.n
    }

    /// Takes and resets the charged operation counter.
    pub fn take_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    /// Propagates a batch of falsified *virtual* variables (received
    /// from their owner sites). Returns the in-node variables newly
    /// falsified by the incremental propagation — the next `lMsg`
    /// payload. Unknown or already-false variables are ignored
    /// (messages are idempotent).
    pub fn apply_virtual_falsifications(&mut self, vars: &[Var]) -> Vec<Var> {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let mut worklist = Vec::new();
        for var in vars {
            self.ops += 1;
            let Some(idx) = f.index_of(var.node_id()) else {
                continue;
            };
            debug_assert!(
                f.is_virtual(idx),
                "falsification for a non-virtual node {:?}",
                var
            );
            if (var.q as usize) < self.nq && self.cand.remove(var.q as usize, idx) {
                worklist.push((var.q, idx));
            }
        }
        self.run_worklist(worklist)
    }

    /// Directly falsifies a (local or virtual) pair by local index;
    /// used by `dGPMt` when the coordinator returns solved root
    /// variables. Returns newly falsified in-node variables.
    pub fn falsify_pair(&mut self, u: u16, idx: u32) -> Vec<Var> {
        if !self.cand.remove(u as usize, idx) {
            return Vec::new();
        }
        self.run_worklist(vec![(u, idx)])
    }

    /// The downward worklist: each entry has just been set non-candidate;
    /// decrement supporting counters of local predecessors and cascade.
    fn run_worklist(&mut self, mut worklist: Vec<(u16, u32)>) -> Vec<Var> {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let n = self.n;
        let mut falsified_in_nodes = Vec::new();
        while let Some((uq, idx)) = worklist.pop() {
            if (idx as usize) < self.n_local && f.in_node_pos(idx).is_some() {
                falsified_in_nodes.push(Var {
                    q: uq,
                    node: f.global_id(idx).0,
                });
            }
            for &(e, up) in &self.parent_edges[uq as usize] {
                for &vp in f.predecessors(idx) {
                    self.ops += 1;
                    let c = &mut self.cnt[e * n + vp as usize];
                    debug_assert!(*c > 0, "support counter underflow");
                    *c -= 1;
                    if *c == 0 && self.cand.remove(up as usize, vp) {
                        worklist.push((up, vp));
                    }
                }
            }
        }
        falsified_in_nodes
    }

    /// Current matches among *local* nodes, as global ids per query
    /// node (the payload of the final result collection).
    pub fn local_match_lists(&mut self) -> Vec<(u16, Vec<u32>)> {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let mut out = Vec::with_capacity(self.nq);
        for u in 0..self.nq as u16 {
            // Set bits come out ascending, so locals ([0, n_local))
            // form a prefix of the row walk.
            let mut l = Vec::new();
            self.ops += self.cand.words_per_row() as u64;
            for idx in self.cand.iter_row(u as usize) {
                if idx as usize >= self.n_local {
                    break;
                }
                self.ops += 1;
                l.push(f.global_id(idx).0);
            }
            out.push((u, l));
        }
        out
    }

    /// Count of still-candidate virtual variables (`|Fi.O'|` of the
    /// push benefit function — unevaluated virtual nodes).
    pub fn unevaluated_virtuals(&self) -> usize {
        let f = self.fragment();
        f.virtual_indices()
            .map(|idx| (0..self.nq).filter(|&u| self.cand.test(u, idx)).count())
            .sum()
    }

    /// Count of still-candidate in-node variables (`|Fi.I'|`).
    pub fn unevaluated_in_nodes(&self) -> usize {
        let f = self.fragment();
        f.in_nodes()
            .iter()
            .map(|&idx| (0..self.nq).filter(|&u| self.cand.test(u, idx)).count())
            .sum()
    }

    /// Still-candidate in-node variables as `Var`s.
    pub fn candidate_in_node_vars(&self) -> Vec<Var> {
        let f = self.fragment();
        let mut out = Vec::new();
        for &idx in f.in_nodes() {
            for u in 0..self.nq as u16 {
                if self.is_candidate(u, idx) {
                    out.push(Var {
                        q: u,
                        node: f.global_id(idx).0,
                    });
                }
            }
        }
        out
    }

    /// Query children of `u` paired with matching successors of `idx`,
    /// for the symbolic expansion in [`crate::push`] / `dGPMt`.
    pub(crate) fn and_or_structure(&self, u: u16, idx: u32) -> Vec<(u16, Vec<u32>)> {
        let f = self.fragment();
        let q = &self.q;
        q.children(QNodeId(u))
            .iter()
            .map(|&uc| {
                let vs: Vec<u32> = f
                    .successors(idx)
                    .iter()
                    .copied()
                    .filter(|&s| self.is_candidate(uc.0, s))
                    .collect();
                (uc.0, vs)
            })
            .collect()
    }

    /// Charges `n` extra operations (used by callers that do work on
    /// top of the evaluation state, e.g. equation expansion).
    pub fn charge(&mut self, n: u64) {
        self.ops += n;
    }

    /// The fragmentation backing this evaluation.
    pub fn fragmentation(&self) -> &Arc<Fragmentation> {
        &self.frag
    }

    /// This evaluation's site.
    pub fn site(&self) -> SiteId {
        self.site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;

    fn fig1_eval(site: usize) -> (LocalEval, Vec<Var>, dgs_graph::generate::social::Fig1) {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (ev, falsified) = LocalEval::new(frag, site, q);
        (ev, falsified, w)
    }

    #[test]
    fn initial_eval_kills_local_only_failures() {
        // At F1: yb1 has no F successor, so X(YB, yb1) dies locally;
        // f1 has no SP successor at all (f1 -> f4 only, F label), so
        // X(F, f1) dies locally. Neither is an in-node, so the initial
        // falsified list is empty (in-nodes yf1/sp1 survive
        // optimistically).
        let (ev, falsified, w) = fig1_eval(0);
        assert!(falsified.is_empty());
        let f = ev.fragmentation().fragment(0);
        let yb1 = f.index_of(w.node("yb1")).unwrap();
        let f1 = f.index_of(w.node("f1")).unwrap();
        let yf1 = f.index_of(w.node("yf1")).unwrap();
        let sp1 = f.index_of(w.node("sp1")).unwrap();
        assert!(!ev.is_candidate(w.qnode("YB").0, yb1));
        assert!(!ev.is_candidate(w.qnode("F").0, f1));
        assert!(ev.is_candidate(w.qnode("YF").0, yf1));
        assert!(ev.is_candidate(w.qnode("SP").0, sp1));
    }

    #[test]
    fn virtual_pairs_survive_optimistically() {
        let (ev, _, w) = fig1_eval(0);
        let f = ev.fragmentation().fragment(0);
        // f2 and yf2 are virtual at F1; their label-matched vars stay
        // candidates until a message arrives.
        let f2 = f.index_of(w.node("f2")).unwrap();
        assert!(f.is_virtual(f2));
        assert!(ev.is_candidate(w.qnode("F").0, f2));
        // Label-mismatched virtual pair is false without any message.
        assert!(!ev.is_candidate(w.qnode("SP").0, f2));
    }

    #[test]
    fn incremental_falsification_cascades_example8() {
        // Example 8 of the paper: if X(F, f2) is falsified at F1, then
        // X(YF, yf1) = X(F, f2) falls, and X(SP, sp1) reduces to
        // X(YF, yf2) but stays a candidate.
        let (mut ev, _, w) = fig1_eval(0);
        let out = ev.apply_virtual_falsifications(&[Var::new(w.qnode("F"), w.node("f2"))]);
        let f = ev.fragmentation().fragment(0);
        let yf1 = f.index_of(w.node("yf1")).unwrap();
        let sp1 = f.index_of(w.node("sp1")).unwrap();
        assert!(!ev.is_candidate(w.qnode("YF").0, yf1));
        assert!(ev.is_candidate(w.qnode("SP").0, sp1));
        // yf1 is an in-node of F1, so its falsification must be
        // reported for shipping.
        assert_eq!(out, vec![Var::new(w.qnode("YF"), w.node("yf1"))]);
    }

    #[test]
    fn falsifications_idempotent_and_unknown_ignored() {
        let (mut ev, _, w) = fig1_eval(0);
        let var = Var::new(w.qnode("F"), w.node("f2"));
        let first = ev.apply_virtual_falsifications(&[var]);
        assert!(!first.is_empty());
        let second = ev.apply_virtual_falsifications(&[var]);
        assert!(second.is_empty());
        // A node this fragment has never heard of.
        let foreign = Var { q: 0, node: 9999 };
        assert!(ev.apply_virtual_falsifications(&[foreign]).is_empty());
    }

    #[test]
    fn pinned_construction_matches_incremental() {
        // dGPMNOpt invariant: rebuilding from scratch with the pinned
        // set must land in the same state as incremental propagation.
        let (mut incr, _, w) = fig1_eval(1);
        let var = Var::new(w.qnode("SP"), w.node("sp1"));
        incr.apply_virtual_falsifications(&[var]);

        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let mut pinned = HashSet::new();
        pinned.insert(var);
        let (scratch, _) =
            LocalEval::new_with_pinned(frag, 1, Arc::new(w.pattern.clone()), &pinned);
        for idx in 0..incr.n_total() as u32 {
            for u in 0..w.pattern.node_count() as u16 {
                assert_eq!(
                    incr.is_candidate(u, idx),
                    scratch.is_candidate(u, idx),
                    "mismatch at u{u}, idx{idx}"
                );
            }
        }
    }

    #[test]
    fn local_match_lists_cover_local_nodes_only() {
        let (mut ev, _, w) = fig1_eval(2);
        let lists = ev.local_match_lists();
        assert_eq!(lists.len(), 4);
        let f = ev.fragmentation().fragment(2);
        for (_, l) in &lists {
            for &g in l {
                let idx = f.index_of(dgs_graph::NodeId(g)).unwrap();
                assert!(!f.is_virtual(idx));
            }
        }
        // yb3 matches YB at F3 even before any messages (all its
        // support is optimistic).
        let yb = w.qnode("YB").0;
        let yb3 = w.node("yb3").0;
        assert!(lists[yb as usize].1.contains(&yb3));
    }

    #[test]
    fn unevaluated_counts() {
        let (ev, _, _) = fig1_eval(0);
        // F1 virtuals: f2 (F matches), f4 (F), yf2 (YF) → 3 candidate
        // virtual vars; in-nodes yf1 (YF), sp1 (SP) → 2 candidates.
        assert_eq!(ev.unevaluated_virtuals(), 3);
        assert_eq!(ev.unevaluated_in_nodes(), 2);
        assert_eq!(ev.candidate_in_node_vars().len(), 2);
    }

    #[test]
    fn ops_are_charged_and_taken() {
        let (mut ev, _, _) = fig1_eval(0);
        let ops = ev.take_ops();
        assert!(ops > 0);
        assert_eq!(ev.take_ops(), 0);
        ev.charge(5);
        assert_eq!(ev.take_ops(), 5);
    }
}
