//! The auto-planner: cached structural facts plus the decision rule
//! that picks the cheapest applicable engine for each query.
//!
//! The paper's specialized algorithms trade generality for better
//! bounds — `dGPMt` (§5.2) needs a tree graph cut into connected
//! fragments, `dGPMd` (§5.1) needs a DAG pattern or a DAG graph —
//! and a session engine should make that choice, not the caller.
//! [`GraphFacts`] is computed **once** per [`crate::SimEngine`] (the
//! graph-side checks are linear but touch the whole graph);
//! [`PatternFacts`] is computed per query (linear in `|Q|`, which the
//! paper assumes small). [`Planner::plan`] combines the two into an
//! [`EngineChoice`] with a human-readable [`PlanExplanation`].

use crate::error::DgsError;
use dgs_graph::algo::{strongly_connected_components, PatternView};
use dgs_graph::generate::tree::is_rooted_tree;
use dgs_graph::{Graph, Pattern};
use dgs_partition::Fragmentation;

/// Structural facts about the loaded graph + fragmentation, computed
/// once at engine build time and reused by every query.
#[derive(Clone, Debug)]
pub struct GraphFacts {
    /// `|V|`.
    pub node_count: usize,
    /// `|E|`.
    pub edge_count: usize,
    /// Whether the data graph is acyclic (enables the `dGPMd`
    /// cyclic-pattern short-circuit, §5.1).
    pub is_dag: bool,
    /// Whether the data graph is a rooted tree (Corollary 4 scope).
    pub is_rooted_tree: bool,
    /// Whether every fragment has at most one in-node — for tree
    /// graphs this is the "connected subtree fragments" precondition
    /// of `dGPMt` (§5.2).
    pub fragments_connected: bool,
    /// SCC condensation of the graph: component id per node, in
    /// reverse topological order of the condensation.
    pub scc_of: Vec<u32>,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// `|F|`.
    pub num_sites: usize,
}

impl GraphFacts {
    /// Computes all facts in `O(|V| + |E|)` — one Tarjan pass, with
    /// DAG-ness derived from the condensation (all SCCs trivial, no
    /// self-loop) instead of a second pass.
    pub fn compute(graph: &Graph, frag: &Fragmentation) -> Self {
        let (scc_of, scc_count) = strongly_connected_components(graph);
        let is_dag = scc_count == graph.node_count()
            && graph.nodes().all(|v| !graph.successors(v).contains(&v));
        GraphFacts {
            node_count: graph.node_count(),
            edge_count: graph.edge_count(),
            is_dag,
            is_rooted_tree: is_rooted_tree(graph),
            fragments_connected: frag.fragments().iter().all(|f| f.in_nodes().len() <= 1),
            scc_of,
            scc_count,
            num_sites: frag.num_sites(),
        }
    }
}

/// Structural facts about one query pattern.
#[derive(Clone, Debug)]
pub struct PatternFacts {
    /// `|Vq|`.
    pub node_count: usize,
    /// `|Eq|`.
    pub edge_count: usize,
    /// Whether the pattern is acyclic (enables `dGPMd`'s rank
    /// scheduling directly on `Q`).
    pub is_dag: bool,
    /// Number of SCCs of the pattern — the number of strata `dGPMs`
    /// will schedule.
    pub scc_count: usize,
}

impl PatternFacts {
    /// Computes the per-query facts in `O(|Vq| + |Eq|)` — one Tarjan
    /// pass, DAG-ness derived from it as in [`GraphFacts::compute`].
    pub fn compute(q: &Pattern) -> Self {
        let (_, scc_count) = strongly_connected_components(&PatternView(q));
        let is_dag = scc_count == q.node_count() && q.nodes().all(|u| !q.children(u).contains(&u));
        PatternFacts {
            node_count: q.node_count(),
            edge_count: q.edge_count(),
            is_dag,
            scc_count,
        }
    }
}

/// Whether the `trivial-∅` short-circuit's all-empty relation is also
/// the **maximum simulation fixpoint** on an acyclic graph — true
/// exactly when every pattern node can reach a cycle of `Q`.
///
/// A node that cannot (a childless sink, or an ancestor whose only
/// descendants are such sinks) keeps its label-compatible matches in
/// the true fixpoint on *any* graph; for those patterns `∅` is only
/// the answer convention, not the fixpoint, so cached `∅` rows are
/// not a valid baseline for incremental maintenance once insertions
/// may close a graph cycle.
pub(crate) fn empty_rows_are_fixpoint(q: &Pattern) -> bool {
    // Iteratively trim nodes whose successors are all trimmed
    // (childless sinks first); survivors are exactly the nodes that
    // can reach a cycle.
    let n = q.node_count();
    let mut trimmed = vec![false; n];
    loop {
        let mut changed = false;
        for u in q.nodes() {
            if !trimmed[u.0 as usize] && q.children(u).iter().all(|c| trimmed[c.0 as usize]) {
                trimmed[u.0 as usize] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    trimmed.iter().all(|t| !t)
}

/// The engine the planner resolved a query to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Two-round tree algorithm (§5.2).
    Dgpmt,
    /// Rank-batched DAG algorithm (§5.1).
    Dgpmd,
    /// SCC-stratified batching for cyclic patterns.
    Dgpms,
    /// Fully asynchronous partition-bounded `dGPM` (§4).
    Dgpm,
    /// A cyclic pattern on an acyclic graph can never match: answer
    /// `∅` without any distributed work (§5.1's observation).
    TriviallyEmpty,
}

impl EngineChoice {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            EngineChoice::Dgpmt => "dGPMt",
            EngineChoice::Dgpmd => "dGPMd",
            EngineChoice::Dgpms => "dGPMs",
            EngineChoice::Dgpm => "dGPM",
            EngineChoice::TriviallyEmpty => "trivial-∅",
        }
    }
}

/// Which general-purpose engine the planner falls back to when the
/// workload is cyclic on both sides.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CyclicFallback {
    /// SCC-stratified batched shipping (fewer, larger messages —
    /// better when per-message overhead dominates).
    #[default]
    Dgpms,
    /// Fully asynchronous `dGPM` (better when bandwidth dominates and
    /// messages are cheap).
    Dgpm,
}

/// The planner: a pure decision rule over cached facts.
#[derive(Clone, Debug, Default)]
pub struct Planner {
    /// Engine used when neither `dGPMt` nor `dGPMd` applies.
    pub cyclic_fallback: CyclicFallback,
}

/// The compressed leg of a plan: the query was answered on the
/// simulation-equivalence quotient `Gc` instead of `G`, and the
/// relation decompressed back to `G`'s node ids (Fan et al.,
/// *Query Preserving Graph Compression*, SIGMOD'12 — the companion
/// technique §7 of the VLDB'14 paper points at).
#[derive(Clone, Debug)]
pub struct CompressedNote {
    /// `|Gc| / |G|` in the paper's size measure (`|V| + |E|`).
    pub ratio: f64,
    /// Number of equivalence classes (nodes of `Gc`).
    pub classes: usize,
    /// Display name of the equivalence used (`simeq` / `bisim`).
    pub method: &'static str,
}

/// The incremental leg of a plan: the answer was **maintained** under
/// edge deletions and insertions by the distributed counter update
/// (the paper's incremental `lEval`, §4.2, run site-by-site with
/// falsifications — and, for insertions, affected-area resurrections —
/// exchanged like dGPM data messages) instead of being re-evaluated
/// from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncrementalNote {
    /// Edge deletions absorbed since the entry was computed.
    pub deletions_absorbed: u64,
    /// Edge insertions absorbed since the entry was computed.
    pub insertions_absorbed: u64,
    /// Distributed maintenance runs that kept the entry current.
    pub maintenance_runs: u64,
}

/// How a query was planned, recorded in every report.
#[derive(Clone, Debug)]
pub struct PlanExplanation {
    /// Display name of the engine that (would) run.
    pub algorithm: &'static str,
    /// `true` when the planner chose; `false` when the caller forced
    /// an engine.
    pub auto: bool,
    /// The facts that drove the decision, in decision order.
    pub reasons: Vec<String>,
    /// Present when the engine ran on the compressed graph `Gc`
    /// rather than `G` itself.
    pub compressed: Option<CompressedNote>,
    /// Present when the answer was maintained incrementally under
    /// edge deletions rather than re-evaluated.
    pub incremental: Option<IncrementalNote>,
}

impl PlanExplanation {
    /// An explanation for an explicitly requested engine.
    pub fn forced(algorithm: &'static str) -> Self {
        PlanExplanation {
            algorithm,
            auto: false,
            reasons: vec!["engine requested explicitly by the caller".into()],
            compressed: None,
            incremental: None,
        }
    }
}

impl std::fmt::Display for PlanExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}",
            self.algorithm,
            if self.auto { "auto" } else { "forced" },
        )?;
        if let Some(c) = &self.compressed {
            write!(
                f,
                ", on Gc via {}: {} classes, ratio {:.2}",
                c.method, c.classes, c.ratio
            )?;
        }
        if let Some(i) = &self.incremental {
            write!(
                f,
                ", incremental: {} deletions + {} insertions over {} maintenance runs",
                i.deletions_absorbed, i.insertions_absorbed, i.maintenance_runs
            )?;
        }
        write!(f, "): {}", self.reasons.join("; "))
    }
}

impl Planner {
    /// Resolves a query against the cached facts.
    ///
    /// Decision order (most specialized bound first):
    /// 1. cyclic `Q` on an acyclic `G` → trivially empty, no
    ///    distributed work;
    /// 2. tree `G` with connected fragments → `dGPMt` (DS `O(|Q||F|)`,
    ///    parallel scalable in shipment, Corollary 4);
    /// 3. DAG `Q` → `dGPMd` (rank-batched, `d + 1` shipping rounds,
    ///    Theorem 3);
    /// 4. otherwise → the configured cyclic fallback.
    pub fn plan(
        &self,
        g: &GraphFacts,
        q: &PatternFacts,
    ) -> Result<(EngineChoice, PlanExplanation), DgsError> {
        self.validate_pattern(q)?;
        let mut reasons = Vec::new();
        let choice = if !q.is_dag && g.is_dag {
            reasons.push(format!(
                "pattern is cyclic ({} SCCs over {} nodes) but the graph is acyclic — \
                 a cycle of Q can only be simulated by a cycle of G, so Q(G) = ∅",
                q.scc_count, q.node_count
            ));
            EngineChoice::TriviallyEmpty
        } else if g.is_rooted_tree && g.fragments_connected {
            reasons.push("graph is a rooted tree".into());
            reasons.push(format!(
                "all {} fragments are connected subtrees (≤ 1 in-node each)",
                g.num_sites
            ));
            EngineChoice::Dgpmt
        } else if q.is_dag {
            if g.is_rooted_tree {
                reasons.push(
                    "graph is a rooted tree but some fragment is disconnected, \
                     so dGPMt's two-round bound does not apply"
                        .into(),
                );
            }
            reasons.push("pattern is a DAG — rank scheduling applies (Theorem 3)".into());
            EngineChoice::Dgpmd
        } else {
            reasons.push(format!(
                "pattern and graph are both cyclic (pattern: {} SCCs, graph: {} SCCs) — \
                 only the partition-bounded engines apply (Theorem 2)",
                q.scc_count, g.scc_count
            ));
            match self.cyclic_fallback {
                CyclicFallback::Dgpms => EngineChoice::Dgpms,
                CyclicFallback::Dgpm => EngineChoice::Dgpm,
            }
        };
        let plan = PlanExplanation {
            algorithm: choice.name(),
            auto: true,
            reasons,
            compressed: None,
            incremental: None,
        };
        Ok((choice, plan))
    }

    /// The pattern checks every engine shares, independent of any
    /// structural precondition.
    pub fn validate_pattern(&self, q: &PatternFacts) -> Result<(), DgsError> {
        if q.node_count == 0 {
            return Err(DgsError::InvalidPattern {
                reason: "pattern has no nodes".into(),
            });
        }
        Ok(())
    }

    /// Checks an explicitly requested engine against the facts,
    /// returning the precondition violation if any.
    pub fn check_explicit(
        &self,
        choice: EngineChoice,
        g: &GraphFacts,
        q: &PatternFacts,
    ) -> Result<(), DgsError> {
        self.validate_pattern(q)?;
        match choice {
            EngineChoice::Dgpmt => {
                if !g.is_rooted_tree {
                    return Err(DgsError::Unsupported {
                        algorithm: "dGPMt",
                        reason: "dGPMt requires a rooted tree graph".into(),
                    });
                }
                if !g.fragments_connected {
                    return Err(DgsError::Unsupported {
                        algorithm: "dGPMt",
                        reason: "dGPMt requires connected fragments \
                                 (some fragment has more than one in-node)"
                            .into(),
                    });
                }
                Ok(())
            }
            EngineChoice::Dgpmd => {
                if !q.is_dag && !g.is_dag {
                    return Err(DgsError::Unsupported {
                        algorithm: "dGPMd",
                        reason: "dGPMd requires a DAG pattern or a DAG graph".into(),
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{dag, patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};

    fn facts_for(g: &Graph, k: usize, seed: u64) -> GraphFacts {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Fragmentation::build(g, &assign, k);
        GraphFacts::compute(g, &frag)
    }

    #[test]
    fn tree_with_connected_fragments_plans_dgpmt() {
        let g = tree::random_tree(120, 4, 1);
        let assign = tree_partition(&g, 4);
        let frag = Fragmentation::build(&g, &assign, 4);
        let gf = GraphFacts::compute(&g, &frag);
        assert!(gf.is_dag && gf.is_rooted_tree && gf.fragments_connected);
        let qf = PatternFacts::compute(&patterns::path_pattern(
            3,
            &[
                dgs_graph::Label(0),
                dgs_graph::Label(1),
                dgs_graph::Label(2),
            ],
        ));
        let (choice, plan) = Planner::default().plan(&gf, &qf).unwrap();
        assert_eq!(choice, EngineChoice::Dgpmt);
        assert!(plan.auto);
        assert_eq!(plan.algorithm, "dGPMt");
        assert!(plan.to_string().contains("rooted tree"));
    }

    #[test]
    fn tree_with_hash_fragments_falls_back_to_dgpmd() {
        let g = tree::random_tree(200, 4, 2);
        let gf = facts_for(&g, 4, 2);
        assert!(gf.is_rooted_tree);
        // A hash partition of a 200-node tree virtually never yields
        // connected fragments.
        assert!(!gf.fragments_connected);
        let qf = PatternFacts::compute(&patterns::random_dag_with_depth(3, 4, 2, 4, 2));
        let (choice, _) = Planner::default().plan(&gf, &qf).unwrap();
        assert_eq!(choice, EngineChoice::Dgpmd);
    }

    #[test]
    fn dag_graph_cyclic_pattern_is_trivially_empty() {
        let g = dag::citation_like(100, 250, 4, 3);
        let gf = facts_for(&g, 3, 3);
        assert!(gf.is_dag && !gf.is_rooted_tree);
        let qf = PatternFacts::compute(&patterns::random_cyclic(3, 5, 4, 3));
        assert!(!qf.is_dag);
        let (choice, plan) = Planner::default().plan(&gf, &qf).unwrap();
        assert_eq!(choice, EngineChoice::TriviallyEmpty);
        assert!(plan.reasons[0].contains("cyclic"));
    }

    #[test]
    fn doubly_cyclic_uses_fallback() {
        let g = random::uniform(80, 300, 4, 4);
        let gf = facts_for(&g, 3, 4);
        assert!(!gf.is_dag);
        let qf = PatternFacts::compute(&patterns::random_cyclic(3, 5, 4, 4));
        let (choice, _) = Planner::default().plan(&gf, &qf).unwrap();
        assert_eq!(choice, EngineChoice::Dgpms);
        let dgpm_planner = Planner {
            cyclic_fallback: CyclicFallback::Dgpm,
        };
        let (choice, _) = dgpm_planner.plan(&gf, &qf).unwrap();
        assert_eq!(choice, EngineChoice::Dgpm);
    }

    #[test]
    fn empty_pattern_is_invalid() {
        let g = random::uniform(10, 20, 2, 5);
        let gf = facts_for(&g, 2, 5);
        let qf = PatternFacts::compute(&dgs_graph::PatternBuilder::new().build());
        assert!(matches!(
            Planner::default().plan(&gf, &qf),
            Err(DgsError::InvalidPattern { .. })
        ));
    }

    #[test]
    fn explicit_checks_mirror_the_old_asserts() {
        let g = random::uniform(50, 200, 4, 6);
        let gf = facts_for(&g, 2, 6);
        let qf = PatternFacts::compute(&patterns::random_cyclic(3, 5, 4, 6));
        let p = Planner::default();
        assert!(matches!(
            p.check_explicit(EngineChoice::Dgpmd, &gf, &qf),
            Err(DgsError::Unsupported {
                algorithm: "dGPMd",
                ..
            })
        ));
        assert!(matches!(
            p.check_explicit(EngineChoice::Dgpmt, &gf, &qf),
            Err(DgsError::Unsupported {
                algorithm: "dGPMt",
                ..
            })
        ));
        assert!(p.check_explicit(EngineChoice::Dgpms, &gf, &qf).is_ok());
        assert!(p.check_explicit(EngineChoice::Dgpm, &gf, &qf).is_ok());
    }
}
