//! `dGPM`: the partition-bounded distributed simulation algorithm
//! (§4, Theorem 2), plus its unoptimized variant `dGPMNOpt` (§4.2).
//!
//! Protocol (Fig. 3 of the paper):
//!
//! 1. **Partial evaluation** — every site runs `lEval`
//!    ([`crate::local_eval::LocalEval`]) on its fragment in parallel,
//!    treating virtual-node variables optimistically as `true`.
//! 2. **Asynchronous message passing** — whenever an in-node variable
//!    `X(u,v)` is falsified, the site ships it to the sites holding
//!    `v` as a virtual node (the local dependency graph annotation —
//!    [`dgs_partition::Fragment::in_node_subscribers`]). Each received
//!    falsification triggers incremental re-evaluation. Because each
//!    crossing edge ships each query node's falsification at most
//!    once, total data shipment is `O(|Ef||Vq|)`.
//! 3. **Assembly** — at the fixpoint (runtime quiescence, idealizing
//!    the paper's changed-flag protocol) the coordinator collects
//!    local matches and unions them; if some query node has no match
//!    anywhere, the answer is `∅`.
//!
//! With [`DgpmConfig::push_threshold`] set, sites additionally run the
//! push operation of §4.2 ([`crate::push`]) after their initial
//! evaluation. With [`DgpmConfig::incremental`] off (`dGPMNOpt`), every
//! incoming batch triggers a from-scratch re-evaluation of the whole
//! fragment instead of `O(|AFF|)` incremental propagation — same
//! answers and shipment, far more local work (the paper measures dGPM
//! ~20× faster).

use crate::local_eval::LocalEval;
use crate::push::{plan_push, ExtraSubscribers, InlinedEquations, PushedEq};
use crate::vars::{AnswerBuilder, MatchLists, Var};
use dgs_graph::Pattern;
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::matchset::MatchSet;
use dgs_sim::MatchRelation;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Messages of the `dGPM` protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgpmMsg {
    /// Falsified Boolean variables of in-nodes (data; site → site).
    Falsified(Vec<Var>),
    /// Pushed in-node equations (data; site → parent site).
    PushEqs(Vec<PushedEq>),
    /// Rewiring: "also ship falsifications of these variables of yours
    /// to site `forward_to`" (data; pushing site → third-party site).
    Subscribe {
        /// In-node variables of the receiver.
        vars: Vec<Var>,
        /// The site to additionally notify.
        forward_to: u32,
    },
    /// Result collection request (control; coordinator → sites).
    GatherRequest,
    /// Local matches (result; site → coordinator).
    LocalMatches(MatchLists),
    /// Boolean-query result: a bitmask of query nodes with at least
    /// one local match (result; site → coordinator). For Boolean
    /// patterns `Sc` "simply checks whether each node of Q has a match
    /// in any local site" (§4.1), so `O(|F|)` bytes of result traffic
    /// suffice instead of shipping match lists.
    Presence(u64),
}

impl WireSize for DgpmMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DgpmMsg::Falsified(vars) => vars.wire_size(),
            DgpmMsg::PushEqs(eqs) => 4 + eqs.iter().map(WireSize::wire_size).sum::<usize>(),
            DgpmMsg::Subscribe { vars, .. } => vars.wire_size() + 4,
            DgpmMsg::GatherRequest => 0,
            DgpmMsg::LocalMatches(m) => m.wire_size(),
            DgpmMsg::Presence(_) => 8,
        }
    }
}

/// What the final gather collects (§2.1's two query types).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Data-selecting query: ship full local match lists.
    #[default]
    DataSelecting,
    /// Boolean query: ship per-query-node presence bits only.
    Boolean,
}

/// Configuration of the `dGPM` family.
#[derive(Clone, Debug)]
pub struct DgpmConfig {
    /// Incremental local evaluation (§4.2 optimization 1). Off =
    /// `dGPMNOpt`: recompute the local fixpoint from scratch per batch.
    pub incremental: bool,
    /// Push threshold θ (§4.2 optimization 2); `None` disables pushes.
    /// The paper fixes θ = 0.2 in its experiments.
    pub push_threshold: Option<f64>,
    /// Size budget (expression nodes) for symbolic equation extraction;
    /// an overflowing extraction skips the push.
    pub push_size_cap: usize,
}

impl Default for DgpmConfig {
    fn default() -> Self {
        DgpmConfig {
            incremental: true,
            push_threshold: Some(0.2),
            push_size_cap: 4096,
        }
    }
}

impl DgpmConfig {
    /// The paper's `dGPM` (both optimizations on, θ = 0.2).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// The paper's `dGPMNOpt` (no incremental evaluation, no push).
    pub fn no_opt() -> Self {
        DgpmConfig {
            incremental: false,
            push_threshold: None,
            push_size_cap: 0,
        }
    }

    /// `dGPM` without push only (ablation).
    pub fn incremental_only() -> Self {
        DgpmConfig {
            incremental: true,
            push_threshold: None,
            push_size_cap: 0,
        }
    }
}

/// Site logic of `dGPM`.
pub struct DgpmSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
    cfg: DgpmConfig,
    eval: Option<LocalEval>,
    /// Falsified virtual variables received so far (drives the
    /// from-scratch rebuilds of `dGPMNOpt`).
    known_false_virtuals: HashSet<Var>,
    /// In-node falsifications already shipped (idempotence for the
    /// from-scratch path): one bit per `(query var, local index)`.
    sent: MatchSet,
    /// Push state: equations inlined *at* this site.
    inlined: InlinedEquations,
    /// Push state: extra subscribers registered at this site.
    extra_subs: ExtraSubscribers,
    pushed: bool,
    mode: QueryMode,
}

impl DgpmSite {
    /// Creates the site logic for `site` of `frag`.
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>, cfg: DgpmConfig) -> Self {
        Self::with_mode(site, frag, q, cfg, QueryMode::DataSelecting)
    }

    /// Creates the site logic with an explicit query mode.
    pub fn with_mode(
        site: SiteId,
        frag: Arc<Fragmentation>,
        q: Arc<Pattern>,
        cfg: DgpmConfig,
        mode: QueryMode,
    ) -> Self {
        let sent = MatchSet::new(q.node_count(), frag.fragment(site).n_total());
        DgpmSite {
            site,
            frag,
            q,
            cfg,
            eval: None,
            known_false_virtuals: HashSet::new(),
            sent,
            inlined: InlinedEquations::new(),
            extra_subs: ExtraSubscribers::new(),
            pushed: false,
            mode,
        }
    }

    /// Routes in-node falsifications to their subscriber sites (plus
    /// any dynamically registered extras), batched per destination.
    fn route_falsifications(&mut self, vars: Vec<Var>, out: &mut Outbox<DgpmMsg>) {
        if vars.is_empty() {
            return;
        }
        let f = self.frag.fragment(self.site);
        // BTreeMap: deterministic destination order.
        let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
        for var in vars {
            let idx = f.index_of(var.node_id()).expect("in-node var is local");
            if !self.sent.insert(var.q as usize, idx) {
                continue;
            }
            let pos = f.in_node_pos(idx).expect("falsified var is an in-node");
            for &s in f.in_node_subscribers(pos) {
                per_site.entry(s).or_default().push(var);
            }
            for &s in self.extra_subs.of(var) {
                let entry = per_site.entry(s).or_default();
                if !entry.contains(&var) {
                    entry.push(var);
                }
            }
        }
        for (s, vars) in per_site {
            out.send(Endpoint::Site(s as u32), DgpmMsg::Falsified(vars));
        }
    }

    /// Applies received falsifications through the configured
    /// evaluation mode, returning newly falsified in-node variables.
    fn apply_falsifications(&mut self, vars: &[Var]) -> Vec<Var> {
        // Feed inlined equations first: foreign variables may resolve
        // pushed equations into local virtual falsifications.
        let mut all: Vec<Var> = vars.to_vec();
        all.extend(self.inlined.apply_false(vars));
        for v in &all {
            self.known_false_virtuals.insert(*v);
        }
        if self.cfg.incremental {
            self.eval
                .as_mut()
                .expect("eval initialized in on_start")
                .apply_virtual_falsifications(&all)
        } else {
            // dGPMNOpt: rebuild the whole local state from scratch.
            let (eval, falsified) = LocalEval::new_with_pinned(
                Arc::clone(&self.frag),
                self.site,
                Arc::clone(&self.q),
                &self.known_false_virtuals,
            );
            self.eval = Some(eval);
            falsified
        }
    }

    /// Runs the push decision once, after the initial evaluation.
    fn maybe_push(&mut self, out: &mut Outbox<DgpmMsg>) {
        let Some(theta) = self.cfg.push_threshold else {
            return;
        };
        if self.pushed {
            return;
        }
        self.pushed = true;
        let eval = self.eval.as_mut().expect("eval initialized");
        let Some(plan) = plan_push(eval, theta, self.cfg.push_size_cap) else {
            return;
        };
        let f = self.frag.fragment(self.site);
        // Group equations by parent (subscriber) site.
        let mut per_parent: BTreeMap<SiteId, Vec<PushedEq>> = BTreeMap::new();
        for eq in plan.equations {
            let idx = f.index_of(eq.var.node_id()).expect("in-node var");
            let pos = f.in_node_pos(idx).expect("in-node var");
            for &parent in f.in_node_subscribers(pos) {
                per_parent.entry(parent).or_default().push(eq.clone());
            }
        }
        for (parent, eqs) in per_parent {
            // Rewiring: each referenced virtual variable's owner must
            // also notify the parent directly.
            let mut per_owner: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
            for eq in &eqs {
                for var in eq.expr.vars() {
                    let owner = self.frag.owner(var.node_id());
                    if owner != parent {
                        let entry = per_owner.entry(owner).or_default();
                        if !entry.contains(&var) {
                            entry.push(var);
                        }
                    }
                }
            }
            for (owner, vars) in per_owner {
                out.send(
                    Endpoint::Site(owner as u32),
                    DgpmMsg::Subscribe {
                        vars,
                        forward_to: parent as u32,
                    },
                );
            }
            out.send(Endpoint::Site(parent as u32), DgpmMsg::PushEqs(eqs));
        }
    }

    fn charge_eval_ops(&mut self, out: &mut Outbox<DgpmMsg>) {
        if let Some(ev) = self.eval.as_mut() {
            out.charge_ops(ev.take_ops());
        }
    }
}

impl SiteLogic<DgpmMsg> for DgpmSite {
    fn on_start(&mut self, out: &mut Outbox<DgpmMsg>) {
        let (eval, falsified) =
            LocalEval::new(Arc::clone(&self.frag), self.site, Arc::clone(&self.q));
        self.eval = Some(eval);
        self.route_falsifications(falsified, out);
        self.maybe_push(out);
        self.charge_eval_ops(out);
    }

    fn on_message(&mut self, from: Endpoint, msg: DgpmMsg, out: &mut Outbox<DgpmMsg>) {
        match msg {
            DgpmMsg::Falsified(vars) => {
                let newly = self.apply_falsifications(&vars);
                self.route_falsifications(newly, out);
            }
            DgpmMsg::PushEqs(eqs) => {
                out.charge_ops(eqs.iter().map(|e| e.expr.size() as u64).sum());
                let immediately_false = self.inlined.add(eqs);
                let newly = self.apply_falsifications(&immediately_false);
                self.route_falsifications(newly, out);
            }
            DgpmMsg::Subscribe { vars, forward_to } => {
                out.charge_ops(vars.len() as u64);
                let f = self.frag.fragment(self.site);
                let eval = self.eval.as_ref().expect("eval initialized");
                let mut already_false = Vec::new();
                for var in vars {
                    let Some(idx) = f.index_of(var.node_id()) else {
                        continue;
                    };
                    if eval.is_candidate(var.q, idx) {
                        self.extra_subs.register(var, forward_to as usize);
                    } else {
                        // Falsified before the subscription arrived:
                        // forward immediately or the parent never learns.
                        already_false.push(var);
                    }
                }
                if !already_false.is_empty() {
                    out.send(
                        Endpoint::Site(forward_to),
                        DgpmMsg::Falsified(already_false),
                    );
                }
            }
            DgpmMsg::GatherRequest => {
                debug_assert_eq!(from, Endpoint::Coordinator);
                let eval = self.eval.as_mut().expect("eval initialized");
                match self.mode {
                    QueryMode::DataSelecting => {
                        let lists = MatchLists(eval.local_match_lists());
                        out.send_result(Endpoint::Coordinator, DgpmMsg::LocalMatches(lists));
                    }
                    QueryMode::Boolean => {
                        assert!(self.q.node_count() <= 64, "presence bitmask limit");
                        let mut bits = 0u64;
                        for (q, l) in eval.local_match_lists() {
                            if !l.is_empty() {
                                bits |= 1 << q;
                            }
                        }
                        out.send_result(Endpoint::Coordinator, DgpmMsg::Presence(bits));
                    }
                }
            }
            DgpmMsg::LocalMatches(_) | DgpmMsg::Presence(_) => {
                unreachable!("sites never receive results")
            }
        }
        self.charge_eval_ops(out);
    }
}

impl dgs_net::RemoteSpec for DgpmSite {
    /// Engine tag + configuration + query mode + the pattern; the
    /// worker rebuilds this site against its bootstrapped
    /// fragmentation (`dgs_core::remote`).
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Ok(crate::remote::spec_dgpm(&self.q, &self.cfg, self.mode))
    }
}

/// Coordinator phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Fixpoint,
    Gathering,
    Done,
}

/// Coordinator logic of `dGPM`: idles through the fixpoint, then
/// gathers and assembles `Q(G)`.
pub struct DgpmCoordinator {
    nq: usize,
    phase: Phase,
    builder: Option<AnswerBuilder>,
    presence: u64,
    mode: QueryMode,
    /// The assembled maximum relation (after a data-selecting run).
    pub answer: Option<MatchRelation>,
    /// The Boolean answer (after a Boolean run).
    pub boolean: Option<bool>,
}

impl DgpmCoordinator {
    /// Creates the coordinator for a pattern with `nq` query nodes.
    pub fn new(nq: usize) -> Self {
        Self::with_mode(nq, QueryMode::DataSelecting)
    }

    /// Creates the coordinator with an explicit query mode.
    pub fn with_mode(nq: usize, mode: QueryMode) -> Self {
        DgpmCoordinator {
            nq,
            phase: Phase::Fixpoint,
            builder: Some(AnswerBuilder::new(nq)),
            presence: 0,
            mode,
            answer: None,
            boolean: None,
        }
    }

    /// The final relation.
    ///
    /// # Panics
    /// Panics if the run has not completed.
    pub fn relation(&self) -> &MatchRelation {
        self.answer.as_ref().expect("run not finished")
    }

    fn finish(&mut self) {
        match self.mode {
            QueryMode::DataSelecting => {
                self.answer = Some(self.builder.take().unwrap().finish());
            }
            QueryMode::Boolean => {
                let all = if self.nq == 0 {
                    false
                } else if self.nq == 64 {
                    self.presence == u64::MAX
                } else {
                    self.presence == (1u64 << self.nq) - 1
                };
                self.boolean = Some(all);
            }
        }
    }
}

impl CoordinatorLogic<DgpmMsg> for DgpmCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DgpmMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DgpmMsg, out: &mut Outbox<DgpmMsg>) {
        match msg {
            DgpmMsg::LocalMatches(lists) => {
                let ops = self
                    .builder
                    .as_mut()
                    .expect("gathering phase")
                    .merge(&lists);
                out.charge_ops(ops);
            }
            DgpmMsg::Presence(bits) => {
                out.charge_ops(1);
                self.presence |= bits;
            }
            _ => unreachable!("site-only messages"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DgpmMsg>) -> bool {
        match self.phase {
            Phase::Fixpoint => {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), DgpmMsg::GatherRequest);
                }
                self.phase = Phase::Gathering;
                // Degenerate case: zero sites.
                if out.num_sites() == 0 {
                    self.finish();
                    self.phase = Phase::Done;
                    return true;
                }
                false
            }
            Phase::Gathering => {
                // Final check: O(|Vq||F|) merge + totality test.
                out.charge_ops((self.nq * out.num_sites()) as u64);
                self.finish();
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the full actor set for a data-selecting `dGPM` run.
pub fn build(
    frag: &Arc<Fragmentation>,
    q: &Arc<Pattern>,
    cfg: DgpmConfig,
) -> (DgpmCoordinator, Vec<DgpmSite>) {
    build_with_mode(frag, q, cfg, QueryMode::DataSelecting)
}

/// Builds the full actor set with an explicit query mode.
pub fn build_with_mode(
    frag: &Arc<Fragmentation>,
    q: &Arc<Pattern>,
    cfg: DgpmConfig,
    mode: QueryMode,
) -> (DgpmCoordinator, Vec<DgpmSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DgpmSite::with_mode(s, Arc::clone(frag), Arc::clone(q), cfg.clone(), mode))
        .collect();
    (DgpmCoordinator::with_mode(q.node_count(), mode), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_sim::hhk_simulation;

    fn run_fig1(cfg: DgpmConfig, kind: ExecutorKind) -> MatchRelation {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q, cfg);
        let outcome = dgs_net::run(kind, &CostModel::default(), coord, sites);
        outcome.coordinator.answer.unwrap()
    }

    #[test]
    fn fig1_all_configs_match_oracle() {
        let w = fig1();
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        for cfg in [
            DgpmConfig::optimized(),
            DgpmConfig::no_opt(),
            DgpmConfig::incremental_only(),
        ] {
            let got = run_fig1(cfg.clone(), ExecutorKind::Virtual);
            assert_eq!(got, oracle, "cfg {cfg:?}");
        }
    }

    #[test]
    fn fig1_threaded_matches_virtual() {
        let a = run_fig1(DgpmConfig::optimized(), ExecutorKind::Threaded);
        let b = run_fig1(DgpmConfig::optimized(), ExecutorKind::Virtual);
        assert_eq!(a, b);
    }

    #[test]
    fn fig1_expected_matches() {
        let w = fig1();
        let got = run_fig1(DgpmConfig::optimized(), ExecutorKind::Virtual);
        let mut pairs: Vec<_> = got.iter().collect();
        let mut expected = w.expected_matches();
        pairs.sort();
        expected.sort();
        assert_eq!(pairs, expected);
        assert!(got.is_total());
    }

    #[test]
    fn no_false_shipment_on_fig1() {
        // In Fig. 1 every in-node variable stays true (Example 7: "no
        // variable is updated to false"), so dGPM without push ships
        // nothing at all during the fixpoint.
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q, DgpmConfig::incremental_only());
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        assert_eq!(outcome.metrics.data_messages, 0);
        assert_eq!(outcome.metrics.data_bytes, 0);
        // Results and control still flow.
        assert_eq!(outcome.metrics.control_messages, 3);
        assert_eq!(outcome.metrics.result_messages, 3);
    }

    #[test]
    fn broken_fig1_ships_falsifications() {
        // Remove the edge (f2, sp1) as in Example 8: X(F, f2) falls at
        // F2 and must be shipped to F1, cascading around the cycle.
        let w = fig1();
        let mut gb = dgs_graph::GraphBuilder::new();
        for v in w.graph.nodes() {
            gb.add_node(w.graph.label(v));
        }
        for (a, b) in w.graph.edges() {
            if !(a == w.node("f2") && b == w.node("sp1")) {
                gb.add_edge(a, b);
            }
        }
        let g = gb.build();
        let frag = Arc::new(Fragmentation::build(&g, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q, DgpmConfig::incremental_only());
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        assert!(outcome.metrics.data_messages > 0);
        let oracle = hhk_simulation(&q, &g).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
    }

    #[test]
    fn nopt_does_more_work_but_ships_the_same() {
        use dgs_graph::generate::{patterns, random};
        use dgs_partition::hash_partition;
        let g = random::uniform(400, 1_600, 6, 5);
        let q = Arc::new(patterns::random_cyclic(4, 8, 6, 5));
        let assign = hash_partition(400, 4, 5);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));

        let run = |cfg: DgpmConfig| {
            let (coord, sites) = build(&frag, &q, cfg);
            dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites)
        };
        let opt = run(DgpmConfig::incremental_only());
        let nopt = run(DgpmConfig::no_opt());
        assert_eq!(
            opt.coordinator.answer.unwrap(),
            nopt.coordinator.answer.unwrap()
        );
        // Identical shipment of variables (the paper shows one DS line
        // for both). Batch *boundaries* depend on timing, so compare
        // the shipped variable count: a Falsified message costs
        // 5 bytes of header plus 6 bytes per variable.
        let vars_of = |m: &dgs_net::RunMetrics| (m.data_bytes - 5 * m.data_messages) / 6;
        assert_eq!(vars_of(&opt.metrics), vars_of(&nopt.metrics));
        // ...but from-scratch recomputation costs far more local work
        // whenever any message flowed.
        if opt.metrics.data_messages > 0 {
            assert!(nopt.metrics.total_ops > opt.metrics.total_ops);
        }
    }
}
