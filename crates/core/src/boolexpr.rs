//! Boolean expressions and equation systems over `X(u,v)` variables.
//!
//! §4.1 of the paper represents partial answers as Boolean equations
//! "defined in terms of the Boolean variables of the virtual nodes":
//! `X(u,v) = ⋀ (⋁ X(ui,vj))`. This module provides:
//!
//! * [`BExpr`] — monotone (AND/OR/const/var) expressions with
//!   normalization (flattening, constant folding, deduplication);
//! * [`EquationSystem`] — a set of equations `var = expr` with a
//!   greatest-fixpoint solver (downward Kleene iteration), used by the
//!   coordinator of `dGPMt` and by tests;
//! * a compact wire encoding ([`BExpr::wire_size`]) for shipping
//!   equations in push operations and the tree algorithm.
//!
//! Everything is *monotone*: no negation exists anywhere in graph
//! simulation, which is what makes optimistic evaluation and
//! asynchronous falsification sound.

use crate::vars::Var;
use dgs_net::WireSize;
use std::collections::HashMap;

/// A monotone Boolean expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BExpr {
    /// A constant.
    Const(bool),
    /// A variable `X(u,v)`.
    Var(Var),
    /// Conjunction (empty = true).
    And(Vec<BExpr>),
    /// Disjunction (empty = false).
    Or(Vec<BExpr>),
}

impl BExpr {
    /// `true`.
    pub const TRUE: BExpr = BExpr::Const(true);
    /// `false`.
    pub const FALSE: BExpr = BExpr::Const(false);

    /// Builds a normalized conjunction.
    pub fn and(children: Vec<BExpr>) -> BExpr {
        BExpr::And(children).normalize()
    }

    /// Builds a normalized disjunction.
    pub fn or(children: Vec<BExpr>) -> BExpr {
        BExpr::Or(children).normalize()
    }

    /// Normalizes: flattens nested And/Or of the same kind, folds
    /// constants, sorts and deduplicates children, and collapses
    /// singletons.
    pub fn normalize(self) -> BExpr {
        match self {
            BExpr::Const(_) | BExpr::Var(_) => self,
            BExpr::And(children) => {
                let mut out = Vec::with_capacity(children.len());
                for c in children {
                    match c.normalize() {
                        BExpr::Const(true) => {}
                        BExpr::Const(false) => return BExpr::FALSE,
                        BExpr::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                out.sort_unstable();
                out.dedup();
                match out.len() {
                    0 => BExpr::TRUE,
                    1 => out.pop().unwrap(),
                    _ => BExpr::And(out),
                }
            }
            BExpr::Or(children) => {
                let mut out = Vec::with_capacity(children.len());
                for c in children {
                    match c.normalize() {
                        BExpr::Const(false) => {}
                        BExpr::Const(true) => return BExpr::TRUE,
                        BExpr::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                out.sort_unstable();
                out.dedup();
                match out.len() {
                    0 => BExpr::FALSE,
                    1 => out.pop().unwrap(),
                    _ => BExpr::Or(out),
                }
            }
        }
    }

    /// Evaluates under `lookup`; unknown variables should be mapped by
    /// the caller (optimistic evaluation passes `true`).
    pub fn eval(&self, lookup: &impl Fn(Var) -> bool) -> bool {
        match self {
            BExpr::Const(b) => *b,
            BExpr::Var(v) => lookup(*v),
            BExpr::And(cs) => cs.iter().all(|c| c.eval(lookup)),
            BExpr::Or(cs) => cs.iter().any(|c| c.eval(lookup)),
        }
    }

    /// Substitutes known values for some variables and renormalizes;
    /// variables not in `values` remain symbolic.
    pub fn substitute(&self, values: &HashMap<Var, bool>) -> BExpr {
        match self {
            BExpr::Const(_) => self.clone(),
            BExpr::Var(v) => match values.get(v) {
                Some(&b) => BExpr::Const(b),
                None => self.clone(),
            },
            BExpr::And(cs) => {
                BExpr::And(cs.iter().map(|c| c.substitute(values)).collect()).normalize()
            }
            BExpr::Or(cs) => {
                BExpr::Or(cs.iter().map(|c| c.substitute(values)).collect()).normalize()
            }
        }
    }

    /// Number of leaves and operators (the equation size `m` of the
    /// push benefit function, §4.2).
    pub fn size(&self) -> usize {
        match self {
            BExpr::Const(_) | BExpr::Var(_) => 1,
            BExpr::And(cs) | BExpr::Or(cs) => 1 + cs.iter().map(BExpr::size).sum::<usize>(),
        }
    }

    /// Collects the distinct variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            BExpr::Const(_) => {}
            BExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            BExpr::And(cs) | BExpr::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// The distinct variables of this expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// True iff the expression is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, BExpr::Const(_))
    }
}

impl WireSize for BExpr {
    /// Size of the [postfix encoding](BExpr::encode_postfix): 1 tag
    /// byte per operator/constant plus a 2-byte arity for operators;
    /// 1 + 6 bytes per variable leaf.
    fn wire_size(&self) -> usize {
        match self {
            BExpr::Const(_) => 1,
            BExpr::Var(_) => 7,
            BExpr::And(cs) | BExpr::Or(cs) => 3 + cs.iter().map(WireSize::wire_size).sum::<usize>(),
        }
    }
}

/// Decoding errors of the postfix format.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a token.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Operator arity exceeds the available operands.
    StackUnderflow,
    /// Input decoded to zero or more than one expression.
    WrongArity(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated postfix input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            DecodeError::StackUnderflow => write!(f, "operator arity underflow"),
            DecodeError::WrongArity(n) => write!(f, "expected 1 expression, got {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_VAR: u8 = 2;
const TAG_AND: u8 = 3;
const TAG_OR: u8 = 4;

impl BExpr {
    /// Serializes into the compact postfix byte format whose size
    /// [`WireSize::wire_size`] reports: operands are emitted before
    /// their operator, so decoding is a single stack pass. This is the
    /// concrete encoding of pushed equations (`dGPM`'s push operation)
    /// and `dGPMt`'s root vectors.
    pub fn encode_postfix(&self, out: &mut Vec<u8>) {
        match self {
            BExpr::Const(b) => out.push(if *b { TAG_TRUE } else { TAG_FALSE }),
            BExpr::Var(v) => {
                out.push(TAG_VAR);
                out.extend_from_slice(&v.q.to_le_bytes());
                out.extend_from_slice(&v.node.to_le_bytes());
            }
            BExpr::And(cs) | BExpr::Or(cs) => {
                for c in cs {
                    c.encode_postfix(out);
                }
                out.push(if matches!(self, BExpr::And(_)) {
                    TAG_AND
                } else {
                    TAG_OR
                });
                let arity = u16::try_from(cs.len()).expect("operator arity fits u16");
                out.extend_from_slice(&arity.to_le_bytes());
            }
        }
    }

    /// Decodes a postfix byte stream produced by
    /// [`BExpr::encode_postfix`].
    pub fn decode_postfix(bytes: &[u8]) -> Result<BExpr, DecodeError> {
        let mut stack: Vec<BExpr> = Vec::new();
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<usize, DecodeError> {
            let start = *i;
            *i += n;
            if *i > bytes.len() {
                Err(DecodeError::Truncated)
            } else {
                Ok(start)
            }
        };
        while i < bytes.len() {
            let tag = bytes[i];
            i += 1;
            match tag {
                TAG_FALSE => stack.push(BExpr::FALSE),
                TAG_TRUE => stack.push(BExpr::TRUE),
                TAG_VAR => {
                    let s = take(&mut i, 6)?;
                    let q = u16::from_le_bytes([bytes[s], bytes[s + 1]]);
                    let node = u32::from_le_bytes([
                        bytes[s + 2],
                        bytes[s + 3],
                        bytes[s + 4],
                        bytes[s + 5],
                    ]);
                    stack.push(BExpr::Var(Var { q, node }));
                }
                TAG_AND | TAG_OR => {
                    let s = take(&mut i, 2)?;
                    let arity = u16::from_le_bytes([bytes[s], bytes[s + 1]]) as usize;
                    if stack.len() < arity {
                        return Err(DecodeError::StackUnderflow);
                    }
                    let children = stack.split_off(stack.len() - arity);
                    stack.push(if tag == TAG_AND {
                        BExpr::And(children)
                    } else {
                        BExpr::Or(children)
                    });
                }
                other => return Err(DecodeError::BadTag(other)),
            }
        }
        if stack.len() != 1 {
            return Err(DecodeError::WrongArity(stack.len()));
        }
        Ok(stack.pop().unwrap())
    }
}

impl std::fmt::Display for BExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BExpr::Const(b) => write!(f, "{b}"),
            BExpr::Var(v) => write!(f, "{v}"),
            BExpr::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            BExpr::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A system of equations `var = expr` over monotone expressions.
///
/// The solver computes the **greatest fixpoint**: all defined variables
/// start `true` (the optimistic assumption of §4.1) and are repeatedly
/// re-evaluated downward until stable. Variables that appear in
/// right-hand sides without a defining equation are *free* and read
/// from a caller-supplied environment (default `true`).
#[derive(Clone, Debug, Default)]
pub struct EquationSystem {
    equations: HashMap<Var, BExpr>,
}

impl EquationSystem {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the equation `var = expr`.
    pub fn insert(&mut self, var: Var, expr: BExpr) {
        self.equations.insert(var, expr.normalize());
    }

    /// The defining expression of `var`, if any.
    pub fn get(&self, var: Var) -> Option<&BExpr> {
        self.equations.get(&var)
    }

    /// Number of equations.
    pub fn len(&self) -> usize {
        self.equations.len()
    }

    /// True iff the system has no equations.
    pub fn is_empty(&self) -> bool {
        self.equations.is_empty()
    }

    /// Solves for the greatest fixpoint. `free` supplies values for
    /// undefined variables (return `None` for "unknown", which is
    /// treated as the optimistic `true`). Returns the value of every
    /// defined variable plus the number of evaluation operations
    /// performed.
    pub fn solve_gfp(&self, free: impl Fn(Var) -> Option<bool>) -> (HashMap<Var, bool>, u64) {
        let mut values: HashMap<Var, bool> = self.equations.keys().map(|&v| (v, true)).collect();
        let mut ops: u64 = 0;
        loop {
            let mut changed = false;
            for (&var, expr) in &self.equations {
                if !values[&var] {
                    continue; // monotone: false stays false
                }
                ops += expr.size() as u64;
                let val = expr.eval(&|v| match values.get(&v) {
                    Some(&b) => b,
                    None => free(v).unwrap_or(true),
                });
                if !val {
                    values.insert(var, false);
                    changed = true;
                }
            }
            if !changed {
                return (values, ops);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(q: u16, n: u32) -> Var {
        Var { q, node: n }
    }

    #[test]
    fn normalize_folds_constants() {
        let e = BExpr::and(vec![BExpr::TRUE, BExpr::Var(v(0, 1)), BExpr::TRUE]);
        assert_eq!(e, BExpr::Var(v(0, 1)));
        let e = BExpr::and(vec![BExpr::FALSE, BExpr::Var(v(0, 1))]);
        assert_eq!(e, BExpr::FALSE);
        let e = BExpr::or(vec![BExpr::TRUE, BExpr::Var(v(0, 1))]);
        assert_eq!(e, BExpr::TRUE);
        let e = BExpr::or(vec![]);
        assert_eq!(e, BExpr::FALSE);
        let e = BExpr::and(vec![]);
        assert_eq!(e, BExpr::TRUE);
    }

    #[test]
    fn normalize_flattens_and_dedups() {
        let inner = BExpr::And(vec![BExpr::Var(v(0, 1)), BExpr::Var(v(0, 2))]);
        let e = BExpr::and(vec![inner, BExpr::Var(v(0, 1))]);
        assert_eq!(
            e,
            BExpr::And(vec![BExpr::Var(v(0, 1)), BExpr::Var(v(0, 2))])
        );
    }

    #[test]
    fn eval_and_or() {
        let e = BExpr::and(vec![
            BExpr::Var(v(0, 1)),
            BExpr::or(vec![BExpr::Var(v(0, 2)), BExpr::Var(v(0, 3))]),
        ]);
        let all_true = |_| true;
        assert!(e.eval(&all_true));
        let only_3 = |x: Var| x == v(0, 1) || x == v(0, 3);
        assert!(e.eval(&only_3));
        let only_1 = |x: Var| x == v(0, 1);
        assert!(!e.eval(&only_1));
    }

    #[test]
    fn substitute_partial() {
        let e = BExpr::and(vec![BExpr::Var(v(0, 1)), BExpr::Var(v(0, 2))]);
        let mut vals = HashMap::new();
        vals.insert(v(0, 1), true);
        assert_eq!(e.substitute(&vals), BExpr::Var(v(0, 2)));
        vals.insert(v(0, 2), false);
        assert_eq!(e.substitute(&vals), BExpr::FALSE);
    }

    #[test]
    fn size_and_vars() {
        let e = BExpr::and(vec![
            BExpr::Var(v(0, 1)),
            BExpr::or(vec![BExpr::Var(v(1, 2)), BExpr::Var(v(0, 1))]),
        ]);
        assert_eq!(e.size(), 5); // and + var + (or + 2 vars)
        let mut vars = e.vars();
        vars.sort_unstable();
        assert_eq!(vars, vec![v(0, 1), v(1, 2)]);
    }

    #[test]
    fn wire_size_counts_structure() {
        assert_eq!(BExpr::TRUE.wire_size(), 1);
        assert_eq!(BExpr::Var(v(0, 1)).wire_size(), 7);
        let e = BExpr::And(vec![BExpr::Var(v(0, 1)), BExpr::Var(v(0, 2))]);
        assert_eq!(e.wire_size(), 3 + 14);
    }

    #[test]
    fn gfp_simple_chain() {
        // X = Y, Y = Z, Z free.
        let mut sys = EquationSystem::new();
        sys.insert(v(0, 0), BExpr::Var(v(0, 1)));
        sys.insert(v(0, 1), BExpr::Var(v(0, 2)));
        let (vals, _) = sys.solve_gfp(|x| (x == v(0, 2)).then_some(true));
        assert!(vals[&v(0, 0)] && vals[&v(0, 1)]);
        let (vals, _) = sys.solve_gfp(|x| (x == v(0, 2)).then_some(false));
        assert!(!vals[&v(0, 0)] && !vals[&v(0, 1)]);
    }

    #[test]
    fn gfp_cycle_resolves_to_true() {
        // X = Y, Y = X: the *greatest* fixpoint is true/true (this is
        // exactly why the intact adversarial ring G0 matches Q0).
        let mut sys = EquationSystem::new();
        sys.insert(v(0, 0), BExpr::Var(v(0, 1)));
        sys.insert(v(0, 1), BExpr::Var(v(0, 0)));
        let (vals, _) = sys.solve_gfp(|_| None);
        assert!(vals[&v(0, 0)] && vals[&v(0, 1)]);
    }

    #[test]
    fn gfp_cycle_with_false_anchor() {
        // X = Y ∧ a, Y = X, a = false: everything collapses.
        let mut sys = EquationSystem::new();
        sys.insert(
            v(0, 0),
            BExpr::and(vec![BExpr::Var(v(0, 1)), BExpr::Var(v(1, 9))]),
        );
        sys.insert(v(0, 1), BExpr::Var(v(0, 0)));
        let (vals, _) = sys.solve_gfp(|x| (x == v(1, 9)).then_some(false));
        assert!(!vals[&v(0, 0)] && !vals[&v(0, 1)]);
    }

    #[test]
    fn gfp_matches_bruteforce_on_random_systems() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Brute force: enumerate all assignments to defined vars,
        // take the greatest one that is a fixpoint.
        for seed in 0..40u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let nv = rng.gen_range(2..5usize);
            let vars: Vec<Var> = (0..nv).map(|i| v(0, i as u32)).collect();
            let mut sys = EquationSystem::new();
            for &var in &vars {
                // Random 2-level expression over the variables.
                let mk_leaf = |rng: &mut SmallRng| {
                    if rng.gen_bool(0.15) {
                        BExpr::Const(rng.gen_bool(0.5))
                    } else {
                        BExpr::Var(v(0, rng.gen_range(0..nv) as u32))
                    }
                };
                let mut terms = Vec::new();
                for _ in 0..rng.gen_range(1..3) {
                    let leaves: Vec<BExpr> = (0..rng.gen_range(1..3))
                        .map(|_| mk_leaf(&mut rng))
                        .collect();
                    terms.push(BExpr::or(leaves));
                }
                sys.insert(var, BExpr::and(terms));
            }
            let (got, _) = sys.solve_gfp(|_| None);

            // Brute force greatest fixpoint.
            let mut best: Option<Vec<bool>> = None;
            for mask in 0..(1u32 << nv) {
                let assign: Vec<bool> = (0..nv).map(|i| mask >> i & 1 == 1).collect();
                let lookup = |x: Var| assign[x.node as usize];
                let is_fix = vars
                    .iter()
                    .all(|&var| sys.get(var).unwrap().eval(&lookup) == assign[var.node as usize]);
                if is_fix {
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            assign.iter().filter(|&&x| x).count()
                                >= b.iter().filter(|&&x| x).count()
                        }
                    };
                    // For monotone systems the set of fixpoints is a
                    // lattice; the max-cardinality one is the gfp.
                    if better {
                        best = Some(assign);
                    }
                }
            }
            let best = best.expect("monotone systems always have a fixpoint");
            for &var in &vars {
                assert_eq!(got[&var], best[var.node as usize], "seed {seed}, var {var}");
            }
        }
    }

    #[test]
    fn postfix_roundtrip() {
        let exprs = [
            BExpr::TRUE,
            BExpr::FALSE,
            BExpr::Var(v(3, 99)),
            BExpr::and(vec![
                BExpr::Var(v(0, 1)),
                BExpr::or(vec![BExpr::Var(v(1, 2)), BExpr::Var(v(2, 70000))]),
            ]),
            // Non-normalized structure must also round-trip verbatim.
            BExpr::And(vec![BExpr::Or(vec![]), BExpr::Const(true)]),
        ];
        for e in exprs {
            let mut bytes = Vec::new();
            e.encode_postfix(&mut bytes);
            assert_eq!(bytes.len(), e.wire_size(), "wire_size mismatch for {e}");
            assert_eq!(BExpr::decode_postfix(&bytes), Ok(e));
        }
    }

    #[test]
    fn postfix_roundtrip_random() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        fn random_expr(rng: &mut SmallRng, depth: usize) -> BExpr {
            if depth == 0 || rng.gen_bool(0.4) {
                if rng.gen_bool(0.2) {
                    BExpr::Const(rng.gen_bool(0.5))
                } else {
                    BExpr::Var(v(rng.gen_range(0..8), rng.gen_range(0..1000)))
                }
            } else {
                let children: Vec<BExpr> = (0..rng.gen_range(1..4))
                    .map(|_| random_expr(rng, depth - 1))
                    .collect();
                if rng.gen_bool(0.5) {
                    BExpr::And(children)
                } else {
                    BExpr::Or(children)
                }
            }
        }
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let e = random_expr(&mut rng, 4);
            let mut bytes = Vec::new();
            e.encode_postfix(&mut bytes);
            assert_eq!(bytes.len(), e.wire_size());
            assert_eq!(BExpr::decode_postfix(&bytes), Ok(e));
        }
    }

    #[test]
    fn postfix_decode_errors() {
        assert_eq!(BExpr::decode_postfix(&[]), Err(DecodeError::WrongArity(0)));
        assert_eq!(
            BExpr::decode_postfix(&[TAG_VAR, 1]),
            Err(DecodeError::Truncated)
        );
        assert_eq!(BExpr::decode_postfix(&[42]), Err(DecodeError::BadTag(42)));
        // AND of arity 2 with only one operand.
        assert_eq!(
            BExpr::decode_postfix(&[TAG_TRUE, TAG_AND, 2, 0]),
            Err(DecodeError::StackUnderflow)
        );
        // Two complete expressions without a joining operator.
        assert_eq!(
            BExpr::decode_postfix(&[TAG_TRUE, TAG_FALSE]),
            Err(DecodeError::WrongArity(2))
        );
    }

    #[test]
    fn display_renders_structure() {
        let e = BExpr::and(vec![
            BExpr::Var(v(0, 1)),
            BExpr::or(vec![BExpr::Var(v(1, 2)), BExpr::Var(v(2, 3))]),
        ]);
        let s = e.to_string();
        assert!(s.contains('∧') && s.contains('∨'));
    }
}
