//! `dGPMt`: two-round distributed simulation on trees (§5.2,
//! Corollary 4).
//!
//! When `G` is a tree and every fragment is a connected subtree, each
//! fragment has at most one in-node — its root — and every virtual
//! node is the root of a child fragment. The protocol needs only two
//! rounds of coordinator communication:
//!
//! 1. every site runs `lEval` and ships the Boolean *equations* of its
//!    root's vector (over its virtual variables) to the coordinator —
//!    total shipment `O(|Q||F|)`, independent of `|G|`: this is the
//!    parallel scalability in data shipment that Theorem 1 rules out
//!    for general graphs;
//! 2. the coordinator solves the equation system bottom-up over the
//!    fragment tree in `O(|Q||F|)` (the expressions are acyclic
//!    because tree edges only point to descendants) and returns the
//!    falsified virtual variables to each parent site; sites finish
//!    their local matching and the usual gather assembles `Q(G)`.
//!
//! The equation-size bound relies on the tree shape: the expansion of
//! `X(u, root)` visits each (query node, fragment node) pair at most
//! once (clean memoization, no cycles), and after normalization the
//! shipped vector references each child-fragment root at most once per
//! query node.

use crate::boolexpr::EquationSystem;
use crate::local_eval::LocalEval;
use crate::push::{Expander, PushedEq};
use crate::vars::{AnswerBuilder, MatchLists, Var};
use dgs_graph::Pattern;
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::MatchRelation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the `dGPMt` protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgpmtMsg {
    /// The root vector equations of one fragment (data; site → Sc).
    RootEquations(Vec<PushedEq>),
    /// Falsified virtual variables of the receiving site, as solved by
    /// the coordinator (data; Sc → site).
    SolvedFalse(Vec<Var>),
    /// Result collection request (control).
    GatherRequest,
    /// Local matches (result).
    LocalMatches(MatchLists),
}

impl WireSize for DgpmtMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DgpmtMsg::RootEquations(eqs) => 4 + eqs.iter().map(WireSize::wire_size).sum::<usize>(),
            DgpmtMsg::SolvedFalse(vars) => vars.wire_size(),
            DgpmtMsg::GatherRequest => 0,
            DgpmtMsg::LocalMatches(m) => m.wire_size(),
        }
    }
}

/// Site logic of `dGPMt`.
pub struct DgpmtSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
    eval: Option<LocalEval>,
}

impl DgpmtSite {
    /// Creates the site logic.
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>) -> Self {
        DgpmtSite {
            site,
            frag,
            q,
            eval: None,
        }
    }
}

impl dgs_net::RemoteSpec for DgpmtSite {
    /// Engine tag + the pattern; the worker rebuilds this site against
    /// its bootstrapped fragmentation (`dgs_core::remote`).
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Ok(crate::remote::spec_dgpmt(&self.q))
    }
}

impl SiteLogic<DgpmtMsg> for DgpmtSite {
    fn on_start(&mut self, out: &mut Outbox<DgpmtMsg>) {
        let (mut eval, _falsified) =
            LocalEval::new(Arc::clone(&self.frag), self.site, Arc::clone(&self.q));
        let f = self.frag.fragment(self.site);
        debug_assert!(
            f.in_nodes().len() <= 1,
            "dGPMt requires connected subtree fragments (≤1 in-node)"
        );
        if let Some(&root) = f.in_nodes().first() {
            // Expansion on a tree is cycle-free and fully memoized;
            // the budget is a safety net, not a tuning knob.
            let budget = 16 * self.q.size() * (f.size() + 4);
            let mut ex = Expander::new(&eval, budget);
            let mut eqs = Vec::with_capacity(self.q.node_count());
            for u in 0..self.q.node_count() as u16 {
                let expr = ex.extract(u, root).expect("tree expansion within budget");
                eqs.push(PushedEq {
                    var: Var {
                        q: u,
                        node: f.global_id(root).0,
                    },
                    expr,
                });
            }
            let spent = (budget as i64 - ex.budget_left()).max(0) as u64;
            eval.charge(spent);
            out.send(Endpoint::Coordinator, DgpmtMsg::RootEquations(eqs));
        }
        out.charge_ops(eval.take_ops());
        self.eval = Some(eval);
    }

    fn on_message(&mut self, _from: Endpoint, msg: DgpmtMsg, out: &mut Outbox<DgpmtMsg>) {
        match msg {
            DgpmtMsg::SolvedFalse(vars) => {
                let eval = self.eval.as_mut().expect("eval initialized");
                // No further routing: the coordinator's solution is
                // already global.
                let _ = eval.apply_virtual_falsifications(&vars);
                out.charge_ops(eval.take_ops());
            }
            DgpmtMsg::GatherRequest => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let lists = MatchLists(eval.local_match_lists());
                out.charge_ops(eval.take_ops());
                out.send_result(Endpoint::Coordinator, DgpmtMsg::LocalMatches(lists));
            }
            DgpmtMsg::RootEquations(_) | DgpmtMsg::LocalMatches(_) => {
                unreachable!("coordinator-only messages")
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Collecting,
    Distributing,
    Gathering,
    Done,
}

/// Coordinator logic of `dGPMt`: solves the root-vector equation
/// system and distributes the falsified assignments.
pub struct DgpmtCoordinator {
    frag: Arc<Fragmentation>,
    nq: usize,
    phase: Phase,
    system: EquationSystem,
    builder: Option<AnswerBuilder>,
    /// The assembled relation (after the run).
    pub answer: Option<MatchRelation>,
}

impl DgpmtCoordinator {
    /// Creates the coordinator.
    pub fn new(frag: Arc<Fragmentation>, nq: usize) -> Self {
        DgpmtCoordinator {
            frag,
            nq,
            phase: Phase::Collecting,
            system: EquationSystem::new(),
            builder: Some(AnswerBuilder::new(nq)),
            answer: None,
        }
    }
}

impl CoordinatorLogic<DgpmtMsg> for DgpmtCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DgpmtMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DgpmtMsg, out: &mut Outbox<DgpmtMsg>) {
        match msg {
            DgpmtMsg::RootEquations(eqs) => {
                out.charge_ops(eqs.iter().map(|e| e.expr.size() as u64).sum());
                for PushedEq { var, expr } in eqs {
                    self.system.insert(var, expr);
                }
            }
            DgpmtMsg::LocalMatches(lists) => {
                let ops = self
                    .builder
                    .as_mut()
                    .expect("gathering phase")
                    .merge(&lists);
                out.charge_ops(ops);
            }
            _ => unreachable!("site-only messages"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DgpmtMsg>) -> bool {
        match self.phase {
            Phase::Collecting => {
                if out.num_sites() == 0 {
                    self.answer = Some(self.builder.take().unwrap().finish());
                    self.phase = Phase::Done;
                    return true;
                }
                // Solve the Boolean equation system (all variables are
                // fragment-root variables; free variables default to
                // the optimistic true, which only arises for vacuous
                // references).
                let (values, ops) = self.system.solve_gfp(|_| None);
                out.charge_ops(ops);
                // Route each falsified root variable to the sites
                // holding that root as a virtual node (its parent
                // fragment).
                let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
                for (&var, &val) in &values {
                    if val {
                        continue;
                    }
                    let owner = self.frag.owner(var.node_id());
                    let f = self.frag.fragment(owner);
                    let idx = f.index_of(var.node_id()).expect("root is local to owner");
                    let pos = f.in_node_pos(idx).expect("root is an in-node");
                    for &s in f.in_node_subscribers(pos) {
                        per_site.entry(s).or_default().push(var);
                    }
                }
                if per_site.is_empty() {
                    // Nothing falsified (e.g. a single fragment, or an
                    // all-true system): skip straight to the gather
                    // round — returning false with an empty outbox
                    // would stall the executor.
                    for i in 0..out.num_sites() {
                        out.send_control(Endpoint::Site(i as u32), DgpmtMsg::GatherRequest);
                    }
                    self.phase = Phase::Gathering;
                    return false;
                }
                for (s, mut vars) in per_site {
                    vars.sort_unstable();
                    out.send(Endpoint::Site(s as u32), DgpmtMsg::SolvedFalse(vars));
                }
                self.phase = Phase::Distributing;
                false
            }
            Phase::Distributing => {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), DgpmtMsg::GatherRequest);
                }
                self.phase = Phase::Gathering;
                false
            }
            Phase::Gathering => {
                out.charge_ops((self.nq * out.num_sites()) as u64);
                self.answer = Some(self.builder.take().unwrap().finish());
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the full actor set for a `dGPMt` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (DgpmtCoordinator, Vec<DgpmtSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DgpmtSite::new(s, Arc::clone(frag), Arc::clone(q)))
        .collect();
    (
        DgpmtCoordinator::new(Arc::clone(frag), q.node_count()),
        sites,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{patterns, tree};
    use dgs_graph::Label;
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::tree_partition;
    use dgs_sim::hhk_simulation;

    fn run_tree(
        n: usize,
        k: usize,
        q: &Arc<Pattern>,
        seed: u64,
    ) -> (MatchRelation, dgs_net::RunMetrics) {
        let g = tree::random_tree_with_chain_bias(n, 4, 0.5, seed);
        let assign = tree_partition(&g, k);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        for f in frag.fragments() {
            assert!(f.in_nodes().len() <= 1);
        }
        let (coord, sites) = build(&frag, q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(q, &g).relation;
        assert_eq!(outcome.coordinator.answer.as_ref().unwrap(), &oracle);
        (outcome.coordinator.answer.unwrap(), outcome.metrics)
    }

    #[test]
    fn path_queries_on_trees_match_oracle() {
        for seed in 0..8 {
            let q = Arc::new(patterns::path_pattern(3, &[Label(0), Label(1), Label(2)]));
            let _ = run_tree(300, 6, &q, seed);
        }
    }

    #[test]
    fn dag_queries_on_trees_match_oracle() {
        for seed in 0..8 {
            let q = Arc::new(patterns::random_dag_with_depth(5, 7, 3, 4, seed + 30));
            let _ = run_tree(400, 8, &q, seed);
        }
    }

    #[test]
    fn cyclic_query_on_tree_is_empty() {
        let q = Arc::new(patterns::random_cyclic(4, 6, 4, 3));
        let (rel, _) = run_tree(200, 5, &q, 3);
        assert!(!rel.is_total());
    }

    #[test]
    fn shipment_is_o_q_f_not_o_g() {
        // Corollary 4: DS is O(|Q||F|). Growing |G| 8× with fixed |F|
        // must not grow data shipment proportionally.
        let q = Arc::new(patterns::path_pattern(2, &[Label(0), Label(1)]));
        let (_, small) = run_tree(250, 5, &q, 7);
        let (_, large) = run_tree(2_000, 5, &q, 7);
        assert!(
            (large.data_bytes as f64) < (small.data_bytes as f64) * 4.0,
            "DS grew with |G|: {} -> {}",
            small.data_bytes,
            large.data_bytes
        );
    }

    #[test]
    fn two_data_rounds_only() {
        let q = Arc::new(patterns::path_pattern(2, &[Label(0), Label(1)]));
        let g = tree::random_tree(300, 4, 11);
        let assign = tree_partition(&g, 6);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 6));
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        // Data messages: ≤ one RootEquations per non-root fragment +
        // ≤ one SolvedFalse per fragment.
        assert!(outcome.metrics.data_messages <= 2 * 6);
        // Quiescence rounds: collect, distribute, gather (+ final).
        assert!(outcome.metrics.quiescence_rounds <= 4);
    }

    #[test]
    fn threaded_agrees() {
        let q = Arc::new(patterns::random_dag_with_depth(4, 5, 2, 4, 1));
        let g = tree::random_tree(250, 4, 13);
        let assign = tree_partition(&g, 5);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 5));
        let run = |kind| {
            let (coord, sites) = build(&frag, &q);
            dgs_net::run(kind, &CostModel::default(), coord, sites)
                .coordinator
                .answer
                .unwrap()
        };
        assert_eq!(run(ExecutorKind::Virtual), run(ExecutorKind::Threaded));
    }
}
