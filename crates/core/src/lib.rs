//! # dgs-core
//!
//! The distributed graph simulation algorithms of Fan, Wang, Wu & Deng,
//! *"Distributed Graph Simulation: Impossibility and Possibility"*,
//! PVLDB 7(12), 2014 — plus the baselines the paper compares against.
//!
//! Given a pattern `Q` and a graph `G` fragmented over sites
//! (`dgs-partition`), these engines compute `Q(G)` with message passing
//! over the `dgs-net` runtime:
//!
//! | engine | paper | guarantee |
//! |--------|-------|-----------|
//! | [`dgpm`] (`dGPM`) | §4, Thm 2 | partition bounded: PT `O(|Vf||Vq|(|Vq|+|Vm|)(|Eq|+|Em|))`, DS `O(|Ef||Vq|)` |
//! | [`dgpm`] (`dGPMNOpt`) | §4.2 | dGPM without incremental evaluation / push |
//! | [`dgpmd`] (`dGPMd`) | §5.1, Thm 3 | DAG `Q` or `G`: PT `O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)`, DS `O(|Ef||Vq|)`; parallel scalable in PT for fixed `|F|` |
//! | [`dgpms`] (`dGPMs`) | extension | SCC-stratified batching for *cyclic* `Q`: `dGPMd`'s rank rounds over the condensation DAG with per-stratum changed-flag convergence; DS `O(|Ef||Vq|)`, ≤ 1 data message per site pair per round |
//! | [`dgpmt`] (`dGPMt`) | §5.2, Cor 4 | trees: PT `O(|Q||Fm| + |Q||F|)`, DS `O(|Q||F|)`; parallel scalable in DS |
//! | [`baselines::match_central`] (`Match`) | §3.1 | naive: ship everything, centralized HHK |
//! | [`baselines::dishhk`] (`disHHK`) | \[25\] | ship candidate subgraphs to one site |
//! | [`baselines::dmes`] (`dMes`) | §6 / \[14\] | vertex-centric supersteps (Pregel-style) |
//!
//! The one entry point most users want is [`api::DistributedSim`],
//! which pairs any engine with either `dgs-net` executor and returns
//! the answer plus PT/DS metrics.
//!
//! The building blocks are public too: [`local_eval::LocalEval`] is the
//! paper's `lEval` (optimistic counter-based local fixpoint with
//! incremental falsification), [`boolexpr`] is the Boolean
//! equation machinery behind partial answers, the push operation and
//! the tree algorithm, and [`vars::Var`] is the Boolean variable
//! `X(u,v)`.

pub mod api;
pub mod baselines;
pub mod boolexpr;
pub mod dgpm;
pub mod dgpmd;
pub mod dgpms;
pub mod dgpmt;
pub mod local_eval;
pub mod push;
pub mod vars;

pub use api::{Algorithm, DistributedSim, RunReport};
pub use vars::Var;
