//! # dgs-core
//!
//! The distributed graph simulation algorithms of Fan, Wang, Wu & Deng,
//! *"Distributed Graph Simulation: Impossibility and Possibility"*,
//! PVLDB 7(12), 2014 — plus the baselines the paper compares against.
//!
//! Given a pattern `Q` and a graph `G` fragmented over sites
//! (`dgs-partition`), these engines compute `Q(G)` with message passing
//! over the `dgs-net` runtime:
//!
//! | engine | paper | guarantee |
//! |--------|-------|-----------|
//! | [`dgpm`] (`dGPM`) | §4, Thm 2 | partition bounded: PT `O(|Vf||Vq|(|Vq|+|Vm|)(|Eq|+|Em|))`, DS `O(|Ef||Vq|)` |
//! | [`dgpm`] (`dGPMNOpt`) | §4.2 | dGPM without incremental evaluation / push |
//! | [`dgpmd`] (`dGPMd`) | §5.1, Thm 3 | DAG `Q` or `G`: PT `O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)`, DS `O(|Ef||Vq|)`; parallel scalable in PT for fixed `|F|` |
//! | [`dgpms`] (`dGPMs`) | extension | SCC-stratified batching for *cyclic* `Q`: `dGPMd`'s rank rounds over the condensation DAG with per-stratum changed-flag convergence; DS `O(|Ef||Vq|)`, ≤ 1 data message per site pair per round |
//! | [`dgpmt`] (`dGPMt`) | §5.2, Cor 4 | trees: PT `O(|Q||Fm| + |Q||F|)`, DS `O(|Q||F|)`; parallel scalable in DS |
//! | [`baselines::match_central`] (`Match`) | §3.1 | naive: ship everything, centralized HHK |
//! | [`baselines::dishhk`] (`disHHK`) | \[25\] | ship candidate subgraphs to one site |
//! | [`baselines::dmes`] (`dMes`) | §6 / \[14\] | vertex-centric supersteps (Pregel-style) |
//!
//! ## The session API
//!
//! The entry point is [`SimEngine`]: built **once** over a loaded
//! graph + fragmentation, it caches the structural facts the
//! [`plan::Planner`] needs (DAG-ness, rooted-tree check, fragment
//! connectivity, the SCC condensation) and then serves many queries.
//! [`Algorithm::Auto`] lets the planner pick the engine with the best
//! applicable bound, with the decision recorded in
//! [`RunReport::plan`]:
//!
//! ```
//! use dgs_core::SimEngine;
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//!
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! assert_eq!(report.answer().len(), 11);
//! ```
//!
//! Queries return [`Result<RunReport, DgsError>`](DgsError) — the
//! query path never panics — and [`SimEngine::query_batch`] amortizes
//! the per-query broadcast across a whole batch.
//!
//! Sessions are mutable: [`SimEngine::apply_delta`] absorbs batched
//! edge updates ([`delta::GraphDelta`]) with the fragmentation
//! maintained in place, cached answers kept current under deletions by
//! the distributed incremental update of [`delta`], and conservative
//! invalidation under insertions.
//!
//! The legacy one-shot runner lives on as [`api::DistributedSim`], a
//! deprecated shim over the engine.
//!
//! The building blocks are public too: [`local_eval::LocalEval`] is the
//! paper's `lEval` (optimistic counter-based local fixpoint with
//! incremental falsification), [`boolexpr`] is the Boolean
//! equation machinery behind partial answers, the push operation and
//! the tree algorithm, and [`vars::Var`] is the Boolean variable
//! `X(u,v)`.

pub mod api;
pub mod baselines;
pub mod boolexpr;
mod cache;
pub mod delta;
pub mod dgpm;
pub mod dgpmd;
pub mod dgpms;
pub mod dgpmt;
pub mod engine;
pub mod error;
pub mod local_eval;
/// Flat bitset candidate sets shared by the centralized and
/// distributed kernels (re-exported from `dgs-sim`, where the
/// centralized HHK kernel lives).
pub use dgs_sim::matchset;
pub mod plan;
pub mod push;
pub mod remote;
pub mod vars;

#[allow(deprecated)]
pub use api::DistributedSim;
pub use cache::CacheStats;
pub use delta::{DeltaReport, GraphDelta, UpdateMsg};
pub use engine::{
    Algorithm, BatchReport, BooleanReport, CompressionMethod, EngineStats, RunReport, SimEngine,
    SimEngineBuilder,
};
pub use error::DgsError;
pub use plan::{
    CompressedNote, CyclicFallback, EngineChoice, GraphFacts, IncrementalNote, PatternFacts,
    PlanExplanation, Planner,
};
pub use vars::Var;
