//! Boolean variables `X(u,v)` and shared wire types.

use dgs_graph::{NodeId, QNodeId};
use dgs_net::WireSize;

/// The Boolean variable `X(u,v)`: "does data node `v` match query node
/// `u`?" (§4.1). Variables refer to nodes by *global* id so they are
/// meaningful across sites.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var {
    /// The query node `u`.
    pub q: u16,
    /// The data node `v` (global id).
    pub node: u32,
}

impl Var {
    /// Builds a variable from typed ids.
    pub fn new(q: QNodeId, node: NodeId) -> Self {
        Var {
            q: q.0,
            node: node.0,
        }
    }

    /// The query node as a typed id.
    pub fn qnode(self) -> QNodeId {
        QNodeId(self.q)
    }

    /// The data node as a typed id.
    pub fn node_id(self) -> NodeId {
        NodeId(self.node)
    }
}

impl WireSize for Var {
    fn wire_size(&self) -> usize {
        2 + 4
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "X(u{},v{})", self.q, self.node)
    }
}

/// Per-query-node match lists shipped to the coordinator during result
/// collection (`Result`-class messages).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MatchLists(pub Vec<(u16, Vec<u32>)>);

impl WireSize for MatchLists {
    fn wire_size(&self) -> usize {
        4 + self
            .0
            .iter()
            .map(|(_, l)| 2 + 4 + 4 * l.len())
            .sum::<usize>()
    }
}

/// A shipped subgraph: `(node, label)` pairs plus edges over global
/// ids. Used by the `Match` and `disHHK` baselines.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WireSubgraph {
    /// Nodes as `(global id, label)`.
    pub nodes: Vec<(u32, u16)>,
    /// Edges over global ids.
    pub edges: Vec<(u32, u32)>,
}

impl WireSize for WireSubgraph {
    fn wire_size(&self) -> usize {
        8 + 6 * self.nodes.len() + 8 * self.edges.len()
    }
}

/// Accumulates per-site [`MatchLists`] into the final
/// [`dgs_sim::MatchRelation`]
/// at the coordinator (Phase 3 of the framework, Fig. 3).
#[derive(Clone, Debug)]
pub struct AnswerBuilder {
    lists: Vec<Vec<u32>>,
}

impl AnswerBuilder {
    /// Starts an empty answer over `nq` query nodes.
    pub fn new(nq: usize) -> Self {
        AnswerBuilder {
            lists: vec![Vec::new(); nq],
        }
    }

    /// Merges one site's local matches; returns the merge cost in
    /// basic operations.
    pub fn merge(&mut self, m: &MatchLists) -> u64 {
        let mut ops = 0;
        for (q, l) in &m.0 {
            ops += l.len() as u64 + 1;
            self.lists[*q as usize].extend_from_slice(l);
        }
        ops
    }

    /// Finalizes into the maximum match relation.
    pub fn finish(self) -> dgs_sim::MatchRelation {
        dgs_sim::MatchRelation::from_lists(
            self.lists
                .into_iter()
                .map(|l| l.into_iter().map(NodeId).collect())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_builder_merges_sites() {
        let mut b = AnswerBuilder::new(2);
        b.merge(&MatchLists(vec![(0, vec![1]), (1, vec![2, 3])]));
        b.merge(&MatchLists(vec![(0, vec![4]), (1, vec![])]));
        let r = b.finish();
        assert_eq!(r.matches_of(QNodeId(0)), &[NodeId(1), NodeId(4)]);
        assert_eq!(r.matches_of(QNodeId(1)), &[NodeId(2), NodeId(3)]);
        assert!(r.is_total());
    }

    #[test]
    fn var_roundtrip() {
        let v = Var::new(QNodeId(3), NodeId(42));
        assert_eq!(v.qnode(), QNodeId(3));
        assert_eq!(v.node_id(), NodeId(42));
        assert_eq!(v.wire_size(), 6);
        assert_eq!(v.to_string(), "X(u3,v42)");
    }

    #[test]
    fn match_lists_wire_size() {
        let m = MatchLists(vec![(0, vec![1, 2, 3]), (1, vec![])]);
        assert_eq!(m.wire_size(), 4 + (2 + 4 + 12) + (2 + 4));
    }

    #[test]
    fn subgraph_wire_size() {
        let s = WireSubgraph {
            nodes: vec![(0, 1), (1, 1)],
            edges: vec![(0, 1)],
        };
        assert_eq!(s.wire_size(), 8 + 12 + 8);
    }
}
