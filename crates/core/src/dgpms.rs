//! `dGPMs`: SCC-stratified scheduling — `dGPMd`'s batched shipping
//! generalized to **cyclic** patterns.
//!
//! `dGPMd` (§5.1) exploits that in a DAG pattern, `X(u,v)` depends
//! only on variables of strictly smaller topological rank, so
//! falsifications can ship in `d + 1` batched rounds. The paper stops
//! there; its related work notes that \[25\] evaluates queries per
//! strongly connected component. This module combines the two ideas,
//! an extension in the spirit of the paper's §7 "full treatment" call:
//!
//! * Condense `Q` into its SCC DAG (Tarjan) and rank the components
//!   (`0` for sink components, else `1 + max(child component rank)`).
//!   Variables `X(u,v)` with `u` in a rank-`r` component depend only
//!   on variables of components of rank `≤ r` — with *intra*-component
//!   (cyclic) dependencies confined to the same rank.
//! * Ship falsifications in **stratum rounds**: at stratum `r`, every
//!   site ships all buffered falsifications of rank `≤ r`, one batch
//!   per destination. Because a cyclic stratum can ping-pong
//!   falsifications around a cross-fragment cycle, a stratum *repeats*
//!   until a round ships nothing anywhere — the paper's changed-flag
//!   protocol, applied per stratum: each site reports a 1-byte
//!   `shipped` flag to `Sc` after each round.
//!
//! On a DAG pattern every component is a singleton, a stratum settles
//! in one shipping round, and `dGPMs` degenerates to `dGPMd` with one
//! extra (empty) confirmation round per rank. On a cyclic pattern it
//! trades the fully asynchronous flow of `dGPM` for per-round
//! batching: at most one data message per ordered site pair per round,
//! which on latency-bound networks (where per-message overhead
//! dominates) cuts the message count the way Example 10 does for DAGs.
//!
//! Bounds: data shipment stays `O(|Ef||Vq|)` (each in-node variable
//! still ships at most once per subscriber). Response time is
//! `O((d_c + ρ)(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)` where `d_c` is the
//! condensation diameter and `ρ` the total number of repeat rounds;
//! `ρ ≤ |Vf||Vq|` in the worst case (one falsification per round), so
//! the partition-bounded guarantee of Theorem 2 is preserved.

use crate::local_eval::LocalEval;
use crate::vars::{AnswerBuilder, MatchLists, Var};
use dgs_graph::algo::{strongly_connected_components, PatternView};
use dgs_graph::Pattern;
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::MatchRelation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-query-node stratum ranks from the SCC condensation of `q`.
/// Returns `(rank per query node, max rank)`.
pub fn scc_ranks(q: &Pattern) -> (Vec<u32>, u32) {
    let (comp_of, nc) = strongly_connected_components(&PatternView(q));
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for (u, c) in q.edges() {
        let (cu, cc) = (comp_of[u.index()], comp_of[c.index()]);
        if cu != cc {
            children[cu as usize].push(cc);
        }
    }
    // Memoized rank over the condensation DAG (iterative DFS).
    let mut rank = vec![u32::MAX; nc];
    for start in 0..nc as u32 {
        if rank[start as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        while let Some(&mut (comp, ref mut next)) = stack.last_mut() {
            if rank[comp as usize] != u32::MAX {
                stack.pop();
                continue;
            }
            if *next < children[comp as usize].len() {
                let child = children[comp as usize][*next];
                *next += 1;
                if rank[child as usize] == u32::MAX {
                    stack.push((child, 0));
                }
            } else {
                rank[comp as usize] = children[comp as usize]
                    .iter()
                    .map(|&c| rank[c as usize] + 1)
                    .max()
                    .unwrap_or(0);
                stack.pop();
            }
        }
    }
    let node_ranks: Vec<u32> = (0..q.node_count())
        .map(|u| rank[comp_of[u] as usize])
        .collect();
    let max = node_ranks.iter().copied().max().unwrap_or(0);
    (node_ranks, max)
}

/// Messages of the `dGPMs` protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgpmsMsg {
    /// Batched falsified in-node variables for one stratum round
    /// (data).
    Batch(Vec<Var>),
    /// Begin a shipping round at stratum `rank` (control).
    StartRound(u32),
    /// "A delivery just falsified in-node variables of the current
    /// stratum at my site" — the per-stratum changed flag (control;
    /// site → coordinator; at most one per site per round). The
    /// coordinator repeats the stratum iff it saw one.
    MoreWork,
    /// Result collection request (control).
    GatherRequest,
    /// Local matches (result).
    LocalMatches(MatchLists),
}

impl WireSize for DgpmsMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DgpmsMsg::Batch(vars) => vars.wire_size(),
            DgpmsMsg::StartRound(_) => 4,
            DgpmsMsg::MoreWork => 0,
            DgpmsMsg::GatherRequest => 0,
            DgpmsMsg::LocalMatches(m) => m.wire_size(),
        }
    }
}

/// Site logic of `dGPMs`.
pub struct DgpmsSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
    /// Stratum rank per query node.
    ranks: Vec<u32>,
    eval: Option<LocalEval>,
    /// Falsifications awaiting their stratum, keyed by rank.
    buffered: BTreeMap<u32, Vec<Var>>,
    /// The stratum of the last `StartRound` seen.
    current_stratum: u32,
    /// Whether a `MoreWork` flag was already sent this round.
    more_sent: bool,
}

impl DgpmsSite {
    /// Creates the site logic (any pattern, cyclic or not).
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>) -> Self {
        let (ranks, _) = scc_ranks(&q);
        DgpmsSite {
            site,
            frag,
            q,
            ranks,
            eval: None,
            buffered: BTreeMap::new(),
            current_stratum: 0,
            more_sent: false,
        }
    }

    /// Buffers falsifications by rank; flags the coordinator once per
    /// round when a delivery creates current-stratum work (which means
    /// the stratum has not converged).
    fn buffer(&mut self, vars: Vec<Var>, flag: Option<&mut Outbox<DgpmsMsg>>) {
        let mut more = false;
        for var in vars {
            let r = self.ranks[var.q as usize];
            more |= r <= self.current_stratum;
            self.buffered.entry(r).or_default().push(var);
        }
        if let Some(out) = flag {
            if more && !self.more_sent {
                self.more_sent = true;
                out.send_control(Endpoint::Coordinator, DgpmsMsg::MoreWork);
            }
        }
    }

    /// Ships buffered falsifications of rank ≤ `rank`, one batch per
    /// destination.
    fn ship_round(&mut self, rank: u32, out: &mut Outbox<DgpmsMsg>) {
        let f = self.frag.fragment(self.site);
        let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
        let released: Vec<u32> = self
            .buffered
            .keys()
            .copied()
            .filter(|&r| r <= rank)
            .collect();
        for r in released {
            for var in self.buffered.remove(&r).unwrap() {
                let idx = f.index_of(var.node_id()).expect("in-node var is local");
                let pos = f.in_node_pos(idx).expect("in-node var");
                for &s in f.in_node_subscribers(pos) {
                    per_site.entry(s).or_default().push(var);
                }
            }
        }
        for (s, vars) in per_site {
            out.send(Endpoint::Site(s as u32), DgpmsMsg::Batch(vars));
        }
    }
}

impl dgs_net::RemoteSpec for DgpmsSite {
    /// Engine tag + the pattern; the worker rebuilds this site against
    /// its bootstrapped fragmentation (`dgs_core::remote`).
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Ok(crate::remote::spec_dgpms(&self.q))
    }
}

impl SiteLogic<DgpmsMsg> for DgpmsSite {
    fn on_start(&mut self, out: &mut Outbox<DgpmsMsg>) {
        let (mut eval, falsified) =
            LocalEval::new(Arc::clone(&self.frag), self.site, Arc::clone(&self.q));
        out.charge_ops(eval.take_ops());
        self.eval = Some(eval);
        // Initial falsifications are shipped by the first round; no
        // flag needed (every stratum always gets at least one round).
        self.buffer(falsified, None);
    }

    fn on_message(&mut self, _from: Endpoint, msg: DgpmsMsg, out: &mut Outbox<DgpmsMsg>) {
        match msg {
            DgpmsMsg::StartRound(r) => {
                self.current_stratum = r;
                self.more_sent = false;
                self.ship_round(r, out);
            }
            DgpmsMsg::Batch(vars) => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let newly = eval.apply_virtual_falsifications(&vars);
                out.charge_ops(eval.take_ops());
                self.buffer(newly, Some(out));
            }
            DgpmsMsg::GatherRequest => {
                debug_assert!(
                    self.buffered.is_empty(),
                    "gather with unshipped falsifications"
                );
                let eval = self.eval.as_mut().expect("eval initialized");
                let lists = MatchLists(eval.local_match_lists());
                out.charge_ops(eval.take_ops());
                out.send_result(Endpoint::Coordinator, DgpmsMsg::LocalMatches(lists));
            }
            DgpmsMsg::MoreWork | DgpmsMsg::LocalMatches(_) => {
                unreachable!("coordinator-only messages")
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Running shipping rounds at this stratum.
    Stratum(u32),
    Gathering,
    Done,
}

/// Coordinator logic of `dGPMs`: drives stratum rounds, repeating each
/// stratum until a round ships nothing, then gathers.
pub struct DgpmsCoordinator {
    nq: usize,
    max_rank: u32,
    phase: Phase,
    any_shipped: bool,
    /// Shipping rounds run at the current stratum so far.
    rounds_in_stratum: u64,
    builder: Option<AnswerBuilder>,
    /// Total shipping rounds driven (analysis).
    pub rounds: u64,
    /// Repeat rounds beyond the first, per stratum (analysis: all
    /// zeros on a DAG pattern).
    pub repeats: Vec<u64>,
    /// The assembled relation (after the run).
    pub answer: Option<MatchRelation>,
}

impl DgpmsCoordinator {
    /// Creates the coordinator for pattern `q`.
    pub fn new(q: &Pattern) -> Self {
        let (_, max_rank) = scc_ranks(q);
        DgpmsCoordinator {
            nq: q.node_count(),
            max_rank,
            phase: Phase::Stratum(0),
            any_shipped: false,
            rounds_in_stratum: 0,
            builder: Some(AnswerBuilder::new(q.node_count())),
            rounds: 0,
            repeats: vec![0; max_rank as usize + 1],
            answer: None,
        }
    }
}

impl CoordinatorLogic<DgpmsMsg> for DgpmsCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DgpmsMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DgpmsMsg, out: &mut Outbox<DgpmsMsg>) {
        match msg {
            DgpmsMsg::MoreWork => {
                self.any_shipped = true;
            }
            DgpmsMsg::LocalMatches(lists) => {
                let ops = self
                    .builder
                    .as_mut()
                    .expect("gathering phase")
                    .merge(&lists);
                out.charge_ops(ops);
            }
            _ => unreachable!("site-only messages"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DgpmsMsg>) -> bool {
        if out.num_sites() == 0 {
            self.answer = Some(self.builder.take().unwrap().finish());
            self.phase = Phase::Done;
            return true;
        }
        match self.phase {
            Phase::Stratum(r) => {
                let more = std::mem::take(&mut self.any_shipped);
                if self.rounds_in_stratum > 0 && more {
                    // Some delivery of the completed round falsified
                    // current-stratum variables: they are buffered and
                    // must ship, so the stratum repeats.
                    self.repeats[r as usize] += 1;
                } else if self.rounds_in_stratum > 0 {
                    // Quiet round: the stratum has converged.
                    if r < self.max_rank {
                        self.phase = Phase::Stratum(r + 1);
                        self.rounds_in_stratum = 0;
                    } else {
                        self.phase = Phase::Gathering;
                        for i in 0..out.num_sites() {
                            out.send_control(Endpoint::Site(i as u32), DgpmsMsg::GatherRequest);
                        }
                        return false;
                    }
                }
                let r = match self.phase {
                    Phase::Stratum(r) => r,
                    _ => unreachable!(),
                };
                self.rounds += 1;
                self.rounds_in_stratum += 1;
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), DgpmsMsg::StartRound(r));
                }
                false
            }
            Phase::Gathering => {
                out.charge_ops((self.nq * out.num_sites()) as u64);
                self.answer = Some(self.builder.take().unwrap().finish());
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the full actor set for a `dGPMs` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (DgpmsCoordinator, Vec<DgpmsSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DgpmsSite::new(s, Arc::clone(frag), Arc::clone(q)))
        .collect();
    (DgpmsCoordinator::new(q), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{patterns, random, social};
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;
    use dgs_sim::hhk_simulation;

    fn run_case(
        g: &dgs_graph::Graph,
        q: &Arc<Pattern>,
        k: usize,
        seed: u64,
    ) -> (MatchRelation, dgs_net::RunMetrics, DgpmsCoordinator) {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        let (coord, sites) = build(&frag, q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let answer = outcome.coordinator.answer.clone().unwrap();
        (answer, outcome.metrics, outcome.coordinator)
    }

    #[test]
    fn scc_ranks_equal_topo_ranks_on_dags() {
        use dgs_graph::algo::pattern_topo_ranks;
        for seed in 0..10 {
            let q = patterns::random_dag_with_depth(6, 9, 4, 4, seed);
            let (scc, max) = scc_ranks(&q);
            let topo = pattern_topo_ranks(&q).unwrap();
            assert_eq!(scc, topo, "seed {seed}");
            assert_eq!(max, topo.iter().copied().max().unwrap());
        }
    }

    #[test]
    fn scc_ranks_collapse_cycles() {
        // YB -> {F, YF} with the cycle F -> SP -> YF -> F (Fig. 1):
        // the cycle is one rank-0 component, YB is rank 1.
        let w = social::fig1();
        let (ranks, max) = scc_ranks(&w.pattern);
        assert_eq!(max, 1);
        assert_eq!(ranks[w.qnode("YB").index()], 1);
        for name in ["F", "YF", "SP"] {
            assert_eq!(ranks[w.qnode(name).index()], 0, "{name}");
        }
    }

    #[test]
    fn cyclic_queries_match_oracle() {
        for seed in 0..10 {
            let g = random::uniform(250, 900, 4, seed);
            let q = Arc::new(patterns::random_cyclic(4, 8, 4, seed + 13));
            let (got, _, _) = run_case(&g, &q, 4, seed);
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(got, oracle, "seed {seed}");
        }
    }

    #[test]
    fn fig1_matches_oracle() {
        let w = social::fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
    }

    #[test]
    fn dag_patterns_never_repeat_strata() {
        let g = dgs_graph::generate::dag::citation_like(300, 900, 5, 2);
        let q = Arc::new(patterns::random_dag_with_depth(5, 8, 3, 5, 21));
        let (got, _, coord) = run_case(&g, &q, 4, 2);
        assert_eq!(got, hhk_simulation(&q, &g).relation);
        assert!(
            coord.repeats.iter().all(|&x| x == 0),
            "repeats {:?}",
            coord.repeats
        );
    }

    #[test]
    fn batching_bounds_messages_per_round() {
        let g = random::uniform(300, 1_100, 4, 5);
        let q = Arc::new(patterns::random_cyclic(4, 8, 4, 5));
        let k = 5;
        let (_, metrics, coord) = run_case(&g, &q, k, 5);
        // ≤ one data message per ordered site pair per shipping round.
        assert!(
            metrics.data_messages <= coord.rounds * (k * (k - 1)) as u64,
            "{} messages in {} rounds",
            metrics.data_messages,
            coord.rounds
        );
    }

    #[test]
    fn threaded_agrees_with_virtual() {
        let g = random::uniform(200, 700, 4, 3);
        let q = Arc::new(patterns::random_cyclic(4, 7, 4, 33));
        let assign = hash_partition(200, 3, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let run = |kind| {
            let (coord, sites) = build(&frag, &q);
            dgs_net::run(kind, &CostModel::default(), coord, sites)
                .coordinator
                .answer
                .clone()
                .unwrap()
        };
        assert_eq!(run(ExecutorKind::Virtual), run(ExecutorKind::Threaded));
    }

    #[test]
    fn shipment_stays_within_the_partition_bound() {
        // DS ≤ |Ef||Vq| variables (each 6 bytes on the wire) plus
        // 5-byte batch headers.
        let g = random::uniform(400, 1_500, 4, 9);
        let q = Arc::new(patterns::random_cyclic(5, 9, 4, 9));
        let k = 4;
        let assign = hash_partition(400, k, 9);
        let frag = Arc::new(Fragmentation::build(&g, &assign, k));
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let m = outcome.metrics;
        let shipped_vars = (m.data_bytes - 5 * m.data_messages) / 6;
        let bound = (frag.ef() * q.node_count()) as u64;
        assert!(
            shipped_vars <= bound,
            "{shipped_vars} variables > |Ef||Vq| = {bound}"
        );
    }
}
