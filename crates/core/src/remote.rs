//! Cross-process execution support for the engine protocols: message
//! codecs, per-site spec blobs, the session bootstrap, and the worker
//! host that `dgsd --worker` / `dgsq worker` run.
//!
//! The socket executor (`dgs_net::socket`) is protocol-agnostic; this
//! module is where the dGPM family plugs in:
//!
//! * [`SocketMsg`](dgs_net::SocketMsg) impls encode/decode
//!   `DgpmMsg`/`DgpmdMsg`/`DgpmsMsg`/`DgpmtMsg` with the shared
//!   [`dgs_net::wire`] primitives. The baselines (`Match`, `disHHK`,
//!   `dMes`) are **gated**: their shipped state (whole subgraphs,
//!   per-superstep vertex state) is not worth a wire format, so their
//!   specs refuse and the socket executor reports a typed
//!   `Unsupported` error before any frame is sent.
//! * Per-site **specs** carry what a worker needs to rebuild one
//!   site's logic for one run: engine tag, configuration, query mode
//!   and the pattern (binary `DGSB` format). The graph and the
//!   fragmentation are *not* per-run — they ship once, at cluster
//!   start, in the session [`encode_bootstrap`] blob.
//! * [`CoreWorkerHost`] is the worker-process brain: it absorbs the
//!   bootstrap (rebuilding the identical [`Fragmentation`] from the
//!   shipped assignment) and instantiates site logics from specs.

use crate::dgpm::{DgpmConfig, DgpmMsg, DgpmSite, QueryMode};
use crate::dgpmd::{DgpmdMsg, DgpmdSite};
use crate::dgpms::{DgpmsMsg, DgpmsSite};
use crate::dgpmt::{DgpmtMsg, DgpmtSite};
use crate::push::PushedEq;
use crate::vars::{MatchLists, Var};
use dgs_graph::{io as gio, Graph, Pattern};
use dgs_net::socket::{erase_site, serve_worker_listener, ErasedSite, WorkerHost};
use dgs_net::wire::{put_bytes, put_f64, put_u16, put_u8, put_varint, Reader};
use dgs_net::SocketMsg;
use dgs_partition::Fragmentation;
use std::sync::Arc;

// ---- spec tags ---------------------------------------------------------

const TAG_DGPM: u8 = 1;
const TAG_DGPMD: u8 = 2;
const TAG_DGPMS: u8 = 3;
const TAG_DGPMT: u8 = 4;

// ---- shared codec helpers ---------------------------------------------

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn put_var(buf: &mut Vec<u8>, v: &Var) {
    put_u16(buf, v.q);
    put_varint(buf, u64::from(v.node));
}

fn read_var(r: &mut Reader<'_>) -> Result<Var, String> {
    let q = r.u16("var query node").map_err(err)?;
    let node = r.varint("var data node").map_err(err)?;
    Ok(Var {
        q,
        node: u32::try_from(node).map_err(|_| "var data node overflows u32".to_owned())?,
    })
}

fn put_vars(buf: &mut Vec<u8>, vars: &[Var]) {
    put_varint(buf, vars.len() as u64);
    for v in vars {
        put_var(buf, v);
    }
}

fn read_vars(r: &mut Reader<'_>) -> Result<Vec<Var>, String> {
    let n = r.count("var count").map_err(err)?;
    let mut vars = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        vars.push(read_var(r)?);
    }
    Ok(vars)
}

fn put_match_lists(buf: &mut Vec<u8>, m: &MatchLists) {
    put_varint(buf, m.0.len() as u64);
    for (q, l) in &m.0 {
        put_u16(buf, *q);
        put_varint(buf, l.len() as u64);
        for v in l {
            put_varint(buf, u64::from(*v));
        }
    }
}

fn read_match_lists(r: &mut Reader<'_>) -> Result<MatchLists, String> {
    let n = r.count("match-list count").map_err(err)?;
    let mut lists = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let q = r.u16("match-list query node").map_err(err)?;
        let len = r.count("match count").map_err(err)?;
        let mut l = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let v = r.varint("match node").map_err(err)?;
            l.push(u32::try_from(v).map_err(|_| "match node overflows u32".to_owned())?);
        }
        lists.push((q, l));
    }
    Ok(MatchLists(lists))
}

fn put_eqs(buf: &mut Vec<u8>, eqs: &[PushedEq]) {
    put_varint(buf, eqs.len() as u64);
    for eq in eqs {
        put_var(buf, &eq.var);
        let mut expr = Vec::new();
        eq.expr.encode_postfix(&mut expr);
        put_bytes(buf, &expr);
    }
}

fn read_eqs(r: &mut Reader<'_>) -> Result<Vec<PushedEq>, String> {
    let n = r.count("equation count").map_err(err)?;
    let mut eqs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let var = read_var(r)?;
        let bytes = r.bytes("equation expression").map_err(err)?;
        let expr = crate::boolexpr::BExpr::decode_postfix(bytes)
            .map_err(|e| format!("bad pushed equation: {e:?}"))?;
        eqs.push(PushedEq { var, expr });
    }
    Ok(eqs)
}

// ---- message codecs ----------------------------------------------------

impl SocketMsg for DgpmMsg {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        match self {
            DgpmMsg::Falsified(vars) => {
                put_u8(buf, 0);
                put_vars(buf, vars);
            }
            DgpmMsg::PushEqs(eqs) => {
                put_u8(buf, 1);
                put_eqs(buf, eqs);
            }
            DgpmMsg::Subscribe { vars, forward_to } => {
                put_u8(buf, 2);
                put_vars(buf, vars);
                put_varint(buf, u64::from(*forward_to));
            }
            DgpmMsg::GatherRequest => put_u8(buf, 3),
            DgpmMsg::LocalMatches(m) => {
                put_u8(buf, 4);
                put_match_lists(buf, m);
            }
            DgpmMsg::Presence(bits) => {
                put_u8(buf, 5);
                put_varint(buf, *bits);
            }
        }
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
        Ok(match r.u8("dGPM message tag").map_err(err)? {
            0 => DgpmMsg::Falsified(read_vars(r)?),
            1 => DgpmMsg::PushEqs(read_eqs(r)?),
            2 => {
                let vars = read_vars(r)?;
                let forward_to = r.varint("forward-to site").map_err(err)? as u32;
                DgpmMsg::Subscribe { vars, forward_to }
            }
            3 => DgpmMsg::GatherRequest,
            4 => DgpmMsg::LocalMatches(read_match_lists(r)?),
            5 => DgpmMsg::Presence(r.varint("presence bits").map_err(err)?),
            other => return Err(format!("unknown dGPM message tag {other}")),
        })
    }
}

impl SocketMsg for DgpmdMsg {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        match self {
            DgpmdMsg::RankBatch { rank, vars } => {
                put_u8(buf, 0);
                put_varint(buf, u64::from(*rank));
                put_vars(buf, vars);
            }
            DgpmdMsg::StartRank(rank) => {
                put_u8(buf, 1);
                put_varint(buf, u64::from(*rank));
            }
            DgpmdMsg::GatherRequest => put_u8(buf, 2),
            DgpmdMsg::LocalMatches(m) => {
                put_u8(buf, 3);
                put_match_lists(buf, m);
            }
        }
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
        Ok(match r.u8("dGPMd message tag").map_err(err)? {
            0 => DgpmdMsg::RankBatch {
                rank: r.varint("rank").map_err(err)? as u32,
                vars: read_vars(r)?,
            },
            1 => DgpmdMsg::StartRank(r.varint("rank").map_err(err)? as u32),
            2 => DgpmdMsg::GatherRequest,
            3 => DgpmdMsg::LocalMatches(read_match_lists(r)?),
            other => return Err(format!("unknown dGPMd message tag {other}")),
        })
    }
}

impl SocketMsg for DgpmsMsg {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        match self {
            DgpmsMsg::Batch(vars) => {
                put_u8(buf, 0);
                put_vars(buf, vars);
            }
            DgpmsMsg::StartRound(rank) => {
                put_u8(buf, 1);
                put_varint(buf, u64::from(*rank));
            }
            DgpmsMsg::MoreWork => put_u8(buf, 2),
            DgpmsMsg::GatherRequest => put_u8(buf, 3),
            DgpmsMsg::LocalMatches(m) => {
                put_u8(buf, 4);
                put_match_lists(buf, m);
            }
        }
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
        Ok(match r.u8("dGPMs message tag").map_err(err)? {
            0 => DgpmsMsg::Batch(read_vars(r)?),
            1 => DgpmsMsg::StartRound(r.varint("round").map_err(err)? as u32),
            2 => DgpmsMsg::MoreWork,
            3 => DgpmsMsg::GatherRequest,
            4 => DgpmsMsg::LocalMatches(read_match_lists(r)?),
            other => return Err(format!("unknown dGPMs message tag {other}")),
        })
    }
}

impl SocketMsg for DgpmtMsg {
    fn encode(&self, buf: &mut Vec<u8>) -> Result<(), String> {
        match self {
            DgpmtMsg::RootEquations(eqs) => {
                put_u8(buf, 0);
                put_eqs(buf, eqs);
            }
            DgpmtMsg::SolvedFalse(vars) => {
                put_u8(buf, 1);
                put_vars(buf, vars);
            }
            DgpmtMsg::GatherRequest => put_u8(buf, 2),
            DgpmtMsg::LocalMatches(m) => {
                put_u8(buf, 3);
                put_match_lists(buf, m);
            }
        }
        Ok(())
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
        Ok(match r.u8("dGPMt message tag").map_err(err)? {
            0 => DgpmtMsg::RootEquations(read_eqs(r)?),
            1 => DgpmtMsg::SolvedFalse(read_vars(r)?),
            2 => DgpmtMsg::GatherRequest,
            3 => DgpmtMsg::LocalMatches(read_match_lists(r)?),
            other => return Err(format!("unknown dGPMt message tag {other}")),
        })
    }
}

/// The baselines ship whole subgraphs / per-superstep vertex state;
/// they stay in-process. Their messages still satisfy the executor's
/// bounds so the dispatch is uniform, but the spec gate fires first —
/// these codecs are unreachable in a correct run.
macro_rules! not_remotable_msg {
    ($ty:ty, $name:literal) => {
        impl SocketMsg for $ty {
            fn encode(&self, _buf: &mut Vec<u8>) -> Result<(), String> {
                Err(concat!($name, " messages are not socket-remotable").to_owned())
            }
            fn decode(_r: &mut Reader<'_>) -> Result<Self, String> {
                Err(concat!($name, " messages are not socket-remotable").to_owned())
            }
        }
    };
}

not_remotable_msg!(crate::baselines::match_central::MatchMsg, "Match");
not_remotable_msg!(crate::baselines::dishhk::DishhkMsg, "disHHK");
not_remotable_msg!(crate::baselines::dmes::DmesMsg, "dMes");

// ---- per-site specs ----------------------------------------------------

fn encode_pattern(q: &Pattern) -> Vec<u8> {
    let mut bytes = Vec::new();
    gio::write_pattern_binary(q, &mut bytes).expect("vec write cannot fail");
    bytes
}

pub(crate) fn spec_dgpm(q: &Pattern, cfg: &DgpmConfig, mode: QueryMode) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(&mut buf, TAG_DGPM);
    put_u8(&mut buf, matches!(mode, QueryMode::Boolean) as u8);
    put_u8(&mut buf, cfg.incremental as u8);
    put_u8(&mut buf, cfg.push_threshold.is_some() as u8);
    put_f64(&mut buf, cfg.push_threshold.unwrap_or(0.0));
    put_varint(&mut buf, cfg.push_size_cap as u64);
    put_bytes(&mut buf, &encode_pattern(q));
    buf
}

pub(crate) fn spec_plain(tag: u8, q: &Pattern) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u8(&mut buf, tag);
    put_bytes(&mut buf, &encode_pattern(q));
    buf
}

pub(crate) fn spec_dgpmd(q: &Pattern) -> Vec<u8> {
    spec_plain(TAG_DGPMD, q)
}
pub(crate) fn spec_dgpms(q: &Pattern) -> Vec<u8> {
    spec_plain(TAG_DGPMS, q)
}
pub(crate) fn spec_dgpmt(q: &Pattern) -> Vec<u8> {
    spec_plain(TAG_DGPMT, q)
}

/// Rebuilds one site's logic from its spec blob — the worker-side
/// half of [`dgs_net::RemoteSpec`].
pub fn build_site(
    frag: &Arc<Fragmentation>,
    site: u32,
    num_sites: usize,
    spec: &[u8],
) -> Result<Box<dyn ErasedSite>, String> {
    if frag.num_sites() != num_sites {
        return Err(format!(
            "run has {num_sites} sites but this worker's fragmentation has {}",
            frag.num_sites()
        ));
    }
    if site as usize >= num_sites {
        return Err(format!("site index {site} out of range"));
    }
    let mut r = Reader::new(spec);
    let tag = r.u8("spec tag").map_err(err)?;
    let build = |r: &mut Reader<'_>| -> Result<Arc<Pattern>, String> {
        let bytes = r.bytes("spec pattern").map_err(err)?;
        let q = gio::read_pattern_binary(bytes).map_err(|e| format!("bad spec pattern: {e}"))?;
        Ok(Arc::new(q))
    };
    match tag {
        TAG_DGPM => {
            let boolean = r.u8("spec mode").map_err(err)? != 0;
            let incremental = r.u8("spec incremental").map_err(err)? != 0;
            let has_push = r.u8("spec has-push").map_err(err)? != 0;
            let theta = r.f64("spec push threshold").map_err(err)?;
            let cap = r.varint("spec push size cap").map_err(err)? as usize;
            let q = build(&mut r)?;
            r.finish("dGPM spec").map_err(err)?;
            let cfg = DgpmConfig {
                incremental,
                push_threshold: has_push.then_some(theta),
                push_size_cap: cap,
            };
            let mode = if boolean {
                QueryMode::Boolean
            } else {
                QueryMode::DataSelecting
            };
            let logic = DgpmSite::with_mode(site as usize, Arc::clone(frag), q, cfg, mode);
            Ok(erase_site::<DgpmMsg, _>(logic, site, num_sites))
        }
        TAG_DGPMD => {
            let q = build(&mut r)?;
            r.finish("dGPMd spec").map_err(err)?;
            let logic = DgpmdSite::new(site as usize, Arc::clone(frag), q);
            Ok(erase_site::<DgpmdMsg, _>(logic, site, num_sites))
        }
        TAG_DGPMS => {
            let q = build(&mut r)?;
            r.finish("dGPMs spec").map_err(err)?;
            let logic = DgpmsSite::new(site as usize, Arc::clone(frag), q);
            Ok(erase_site::<DgpmsMsg, _>(logic, site, num_sites))
        }
        TAG_DGPMT => {
            let q = build(&mut r)?;
            r.finish("dGPMt spec").map_err(err)?;
            let logic = DgpmtSite::new(site as usize, Arc::clone(frag), q);
            Ok(erase_site::<DgpmtMsg, _>(logic, site, num_sites))
        }
        other => Err(format!("unknown site spec tag {other}")),
    }
}

// ---- the session bootstrap ---------------------------------------------

/// Encodes the session bootstrap a cluster ships to every worker once:
/// the graph (binary `DGSB` format) plus the node→site assignment,
/// from which the worker rebuilds the identical [`Fragmentation`].
pub fn encode_bootstrap(graph: &Graph, frag: &Fragmentation) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, frag.num_sites() as u64);
    let assignment = frag.assignment();
    put_varint(&mut buf, assignment.len() as u64);
    for &site in assignment {
        put_varint(&mut buf, site as u64);
    }
    let mut graph_bytes = Vec::new();
    gio::write_graph_binary(graph, &mut graph_bytes).expect("vec write cannot fail");
    put_bytes(&mut buf, &graph_bytes);
    buf
}

/// Decodes a session bootstrap into the worker's fragmentation.
pub fn decode_bootstrap(blob: &[u8]) -> Result<(Arc<Graph>, Arc<Fragmentation>), String> {
    let mut r = Reader::new(blob);
    let k = r.varint("bootstrap site count").map_err(err)? as usize;
    let n = r.count("bootstrap assignment length").map_err(err)?;
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        let site = r.varint("bootstrap assignment entry").map_err(err)? as usize;
        if site >= k.max(1) {
            return Err(format!(
                "assignment entry {site} out of range for {k} sites"
            ));
        }
        assignment.push(site);
    }
    let graph_bytes = r.bytes("bootstrap graph").map_err(err)?;
    r.finish("bootstrap").map_err(err)?;
    let graph =
        gio::read_graph_binary(graph_bytes).map_err(|e| format!("bad bootstrap graph: {e}"))?;
    if graph.node_count() != assignment.len() {
        return Err(format!(
            "bootstrap assignment covers {} nodes but the graph has {}",
            assignment.len(),
            graph.node_count()
        ));
    }
    let frag = Fragmentation::build(&graph, &assignment, k);
    Ok((Arc::new(graph), Arc::new(frag)))
}

// ---- the worker host ---------------------------------------------------

/// The worker-process brain behind `dgsd --worker` and `dgsq worker`:
/// absorbs the session bootstrap and builds engine site logics from
/// per-run specs.
#[derive(Default)]
pub struct CoreWorkerHost {
    frag: Option<Arc<Fragmentation>>,
}

impl CoreWorkerHost {
    /// An empty host (no session loaded yet).
    pub fn new() -> Self {
        CoreWorkerHost::default()
    }
}

impl WorkerHost for CoreWorkerHost {
    fn load(&mut self, blob: &[u8]) -> Result<(), String> {
        let (_graph, frag) = decode_bootstrap(blob)?;
        self.frag = Some(frag);
        Ok(())
    }

    fn build_site(
        &self,
        site: u32,
        num_sites: usize,
        spec: &[u8],
    ) -> Result<Box<dyn ErasedSite>, String> {
        let frag = self
            .frag
            .as_ref()
            .ok_or_else(|| "no session bootstrap loaded".to_owned())?;
        build_site(frag, site, num_sites, spec)
    }
}

/// The accept loop of a worker process: serves coordinators one at a
/// time (each connection gets a fresh host and its own bootstrap)
/// until one sends a shutdown. This is what `dgsd --worker`,
/// `dgsq worker` and `examples/multiprocess.rs` run; callers print
/// the [`dgs_net::socket::ANNOUNCE_MARKER`] line themselves before
/// calling in.
pub fn serve_worker(listener: &std::net::TcpListener) -> std::io::Result<()> {
    serve_worker_listener(listener, CoreWorkerHost::new)
}

/// The whole worker-process entry point shared by `dgsq worker`,
/// `dgsd --worker` and the examples: binds `listen` (a `HOST:PORT`,
/// optionally `tcp:`-prefixed for symmetry with the daemon's
/// `--listen`), prints the announce-line contract
/// (`{name}: listening on {addr}`, flushed — a piped stdout is
/// block-buffered), and serves coordinators until one sends a
/// shutdown. One implementation so the contract cannot drift between
/// the binaries.
pub fn run_worker_cli(name: &str, listen: &str) -> std::io::Result<()> {
    let listen = listen.strip_prefix("tcp:").unwrap_or(listen);
    let listener = std::net::TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    println!("{name}: {}{addr}", dgs_net::socket::ANNOUNCE_MARKER);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve_worker(&listener)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{patterns, random};
    use dgs_partition::hash_partition;

    fn roundtrip<M: SocketMsg + std::fmt::Debug + PartialEq>(msg: M) {
        let mut buf = Vec::new();
        msg.encode(&mut buf).unwrap();
        let mut r = Reader::new(&buf);
        let back = M::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "{msg:?} left bytes");
        assert_eq!(back, msg);
    }

    #[test]
    fn dgpm_messages_roundtrip() {
        let vars = vec![Var { q: 3, node: 41 }, Var { q: 0, node: 900 }];
        roundtrip(DgpmMsg::Falsified(vars.clone()));
        roundtrip(DgpmMsg::Subscribe {
            vars: vars.clone(),
            forward_to: 7,
        });
        roundtrip(DgpmMsg::GatherRequest);
        roundtrip(DgpmMsg::Presence(0b1011));
        roundtrip(DgpmMsg::LocalMatches(MatchLists(vec![
            (0, vec![1, 2, 300]),
            (4, vec![]),
        ])));
        use crate::boolexpr::BExpr;
        let eq = PushedEq {
            var: Var { q: 1, node: 5 },
            expr: BExpr::Or(vec![
                BExpr::Var(Var { q: 2, node: 9 }),
                BExpr::And(vec![BExpr::Const(true), BExpr::Var(Var { q: 0, node: 3 })]),
            ]),
        };
        roundtrip(DgpmMsg::PushEqs(vec![eq]));
    }

    #[test]
    fn family_messages_roundtrip() {
        let vars = vec![Var { q: 2, node: 17 }];
        roundtrip(DgpmdMsg::RankBatch {
            rank: 3,
            vars: vars.clone(),
        });
        roundtrip(DgpmdMsg::StartRank(9));
        roundtrip(DgpmsMsg::Batch(vars.clone()));
        roundtrip(DgpmsMsg::MoreWork);
        roundtrip(DgpmsMsg::StartRound(2));
        roundtrip(DgpmtMsg::SolvedFalse(vars));
        roundtrip(DgpmtMsg::GatherRequest);
    }

    #[test]
    fn corrupt_messages_are_typed_errors_not_panics() {
        let mut buf = Vec::new();
        DgpmMsg::Falsified(vec![Var { q: 1, node: 2 }])
            .encode(&mut buf)
            .unwrap();
        for len in 0..buf.len() {
            let mut r = Reader::new(&buf[..len]);
            let _ = DgpmMsg::decode(&mut r); // must not panic
        }
        let mut r = Reader::new(&[99u8]);
        assert!(DgpmMsg::decode(&mut r).is_err());
    }

    #[test]
    fn bootstrap_roundtrips_into_an_identical_fragmentation() {
        let g = random::uniform(60, 240, 4, 5);
        let assign = hash_partition(g.node_count(), 3, 5);
        let frag = Fragmentation::build(&g, &assign, 3);
        let blob = encode_bootstrap(&g, &frag);
        let (g2, frag2) = decode_bootstrap(&blob).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(frag2.num_sites(), 3);
        assert_eq!(frag2.assignment(), frag.assignment());
        assert_eq!(frag2.vf(), frag.vf());
        assert_eq!(frag2.ef(), frag.ef());
    }

    #[test]
    fn specs_rebuild_sites_and_reject_mismatches() {
        let g = random::uniform(40, 160, 4, 8);
        let assign = hash_partition(g.node_count(), 2, 8);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let q = patterns::random_cyclic(3, 5, 4, 8);
        let spec = spec_dgpms(&q);
        assert!(build_site(&frag, 0, 2, &spec).is_ok());
        assert!(build_site(&frag, 5, 2, &spec).is_err()); // site out of range
        assert!(build_site(&frag, 0, 3, &spec).is_err()); // wrong cluster shape
        assert!(build_site(&frag, 0, 2, &[42]).is_err()); // unknown tag
        let dgpm = spec_dgpm(&q, &DgpmConfig::optimized(), QueryMode::Boolean);
        assert!(build_site(&frag, 1, 2, &dgpm).is_ok());
    }
}
