//! `dGPMd`: rank-scheduled distributed simulation for DAG patterns or
//! DAG graphs (§5.1, Theorem 3).
//!
//! For a DAG pattern, the rank `r(u)` (0 for sinks, else
//! `1 + max r(child)`) stratifies the Boolean variables: `X(u,v)`
//! depends only on variables of strictly smaller rank. `dGPMd`
//! therefore proceeds in `d + 1` synchronized rounds: in round `r`
//! every site ships *one batched message per destination* containing
//! all falsified in-node variables of rank ≤ `r` not yet sent, so each
//! site pair exchanges at most `d + 1` messages total (Example 10's
//! 6-vs-12 message count). Falsifications are still computed eagerly
//! and incrementally — only the *shipping* is scheduled by rank, which
//! is sufficient because a rank-`r` variable is fully determined once
//! all rounds `< r` have been delivered.
//!
//! Response time: `d + 1` rounds of local evaluation +
//! `O(|Q||F|)` assembly = `O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)`; for
//! fixed `|F|` this is parallel scalable in response time. Data
//! shipment stays `O(|Ef||Vq|)`.
//!
//! When `G` is a DAG and `Q` is cyclic the answer is ∅ without any
//! distributed work (a cycle cannot simulate into a DAG); the
//! [`crate::api`] layer short-circuits that case.

use crate::local_eval::LocalEval;
use crate::vars::{AnswerBuilder, MatchLists, Var};
use dgs_graph::algo::pattern_topo_ranks;
use dgs_graph::Pattern;
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::MatchRelation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the `dGPMd` protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgpmdMsg {
    /// Batched falsified in-node variables for one rank round (data).
    RankBatch {
        /// The round that released this batch.
        rank: u32,
        /// The falsified variables.
        vars: Vec<Var>,
    },
    /// Begin rank round `r` (control; coordinator → sites).
    StartRank(u32),
    /// Result collection request (control).
    GatherRequest,
    /// Local matches (result).
    LocalMatches(MatchLists),
}

impl WireSize for DgpmdMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DgpmdMsg::RankBatch { vars, .. } => 4 + vars.wire_size(),
            DgpmdMsg::StartRank(_) => 4,
            DgpmdMsg::GatherRequest => 0,
            DgpmdMsg::LocalMatches(m) => m.wire_size(),
        }
    }
}

/// Site logic of `dGPMd`.
pub struct DgpmdSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
    /// `r(u)` per query node.
    ranks: Vec<u32>,
    eval: Option<LocalEval>,
    /// Outgoing falsifications awaiting their rank round, keyed by
    /// rank.
    buffered: BTreeMap<u32, Vec<Var>>,
}

impl DgpmdSite {
    /// Creates the site logic.
    ///
    /// # Panics
    /// Panics if the pattern is cyclic (use `dGPM`, or the api layer's
    /// DAG-graph short-circuit).
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>) -> Self {
        let ranks = pattern_topo_ranks(&q).expect("dGPMd requires a DAG pattern");
        DgpmdSite {
            site,
            frag,
            q,
            ranks,
            eval: None,
            buffered: BTreeMap::new(),
        }
    }

    fn buffer(&mut self, vars: Vec<Var>) {
        for var in vars {
            let r = self.ranks[var.q as usize];
            self.buffered.entry(r).or_default().push(var);
        }
    }

    /// Ships all buffered falsifications of rank ≤ `rank`, one batch
    /// per destination site.
    fn ship_up_to(&mut self, rank: u32, out: &mut Outbox<DgpmdMsg>) {
        let f = self.frag.fragment(self.site);
        let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
        let released: Vec<u32> = self
            .buffered
            .keys()
            .copied()
            .filter(|&r| r <= rank)
            .collect();
        for r in released {
            for var in self.buffered.remove(&r).unwrap() {
                let idx = f.index_of(var.node_id()).expect("in-node var is local");
                let pos = f.in_node_pos(idx).expect("in-node var");
                for &s in f.in_node_subscribers(pos) {
                    per_site.entry(s).or_default().push(var);
                }
            }
        }
        for (s, vars) in per_site {
            out.send(Endpoint::Site(s as u32), DgpmdMsg::RankBatch { rank, vars });
        }
    }
}

impl dgs_net::RemoteSpec for DgpmdSite {
    /// Engine tag + the pattern; the worker rebuilds this site against
    /// its bootstrapped fragmentation (`dgs_core::remote`).
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Ok(crate::remote::spec_dgpmd(&self.q))
    }
}

impl SiteLogic<DgpmdMsg> for DgpmdSite {
    fn on_start(&mut self, out: &mut Outbox<DgpmdMsg>) {
        let (mut eval, falsified) =
            LocalEval::new(Arc::clone(&self.frag), self.site, Arc::clone(&self.q));
        out.charge_ops(eval.take_ops());
        self.eval = Some(eval);
        self.buffer(falsified);
    }

    fn on_message(&mut self, _from: Endpoint, msg: DgpmdMsg, out: &mut Outbox<DgpmdMsg>) {
        match msg {
            DgpmdMsg::StartRank(r) => {
                self.ship_up_to(r, out);
            }
            DgpmdMsg::RankBatch { vars, .. } => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let newly = eval.apply_virtual_falsifications(&vars);
                out.charge_ops(eval.take_ops());
                self.buffer(newly);
            }
            DgpmdMsg::GatherRequest => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let lists = MatchLists(eval.local_match_lists());
                out.charge_ops(eval.take_ops());
                out.send_result(Endpoint::Coordinator, DgpmdMsg::LocalMatches(lists));
            }
            DgpmdMsg::LocalMatches(_) => unreachable!("sites never receive matches"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Ranks(u32),
    Gathering,
    Done,
}

/// Coordinator logic of `dGPMd`: drives the `d + 1` rank rounds, then
/// gathers.
pub struct DgpmdCoordinator {
    nq: usize,
    max_rank: u32,
    phase: Phase,
    builder: Option<AnswerBuilder>,
    /// Rank rounds driven (analysis).
    pub rounds: u64,
    /// The assembled relation (after the run).
    pub answer: Option<MatchRelation>,
}

impl DgpmdCoordinator {
    /// Creates the coordinator for pattern `q`.
    pub fn new(q: &Pattern) -> Self {
        let ranks = pattern_topo_ranks(q).expect("dGPMd requires a DAG pattern");
        DgpmdCoordinator {
            nq: q.node_count(),
            max_rank: ranks.into_iter().max().unwrap_or(0),
            phase: Phase::Ranks(0),
            builder: Some(AnswerBuilder::new(q.node_count())),
            rounds: 0,
            answer: None,
        }
    }
}

impl CoordinatorLogic<DgpmdMsg> for DgpmdCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DgpmdMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DgpmdMsg, out: &mut Outbox<DgpmdMsg>) {
        if let DgpmdMsg::LocalMatches(lists) = msg {
            let ops = self
                .builder
                .as_mut()
                .expect("gathering phase")
                .merge(&lists);
            out.charge_ops(ops);
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DgpmdMsg>) -> bool {
        if out.num_sites() == 0 {
            self.answer = Some(self.builder.take().unwrap().finish());
            self.phase = Phase::Done;
            return true;
        }
        match self.phase {
            Phase::Ranks(r) => {
                self.rounds += 1;
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), DgpmdMsg::StartRank(r));
                }
                self.phase = if r >= self.max_rank {
                    Phase::Gathering
                } else {
                    Phase::Ranks(r + 1)
                };
                false
            }
            Phase::Gathering => {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), DgpmdMsg::GatherRequest);
                }
                self.phase = Phase::Done;
                false
            }
            Phase::Done => {
                out.charge_ops((self.nq * out.num_sites()) as u64);
                if let Some(b) = self.builder.take() {
                    self.answer = Some(b.finish());
                }
                true
            }
        }
    }
}

/// Builds the full actor set for a `dGPMd` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (DgpmdCoordinator, Vec<DgpmdSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DgpmdSite::new(s, Arc::clone(frag), Arc::clone(q)))
        .collect();
    (DgpmdCoordinator::new(q), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{dag, patterns};
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;
    use dgs_sim::hhk_simulation;

    fn run_case(
        g: &dgs_graph::Graph,
        q: &Arc<Pattern>,
        k: usize,
        seed: u64,
    ) -> (MatchRelation, dgs_net::RunMetrics, u64) {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        let (coord, sites) = build(&frag, q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        (
            outcome.coordinator.answer.unwrap(),
            outcome.metrics,
            outcome.coordinator.rounds,
        )
    }

    #[test]
    fn dag_query_on_dag_graph_matches_oracle() {
        for seed in 0..10 {
            let g = dag::citation_like(300, 900, 5, seed);
            let q = Arc::new(patterns::random_dag_with_depth(5, 8, 3, 5, seed + 50));
            let (got, _, _) = run_case(&g, &q, 4, seed);
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(got, oracle, "seed {seed}");
        }
    }

    #[test]
    fn dag_query_on_cyclic_graph_matches_oracle() {
        use dgs_graph::generate::random;
        for seed in 0..10 {
            let g = random::uniform(250, 900, 5, seed);
            let q = Arc::new(patterns::random_dag_with_depth(5, 8, 4, 5, seed + 9));
            let (got, _, _) = run_case(&g, &q, 4, seed);
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(got, oracle, "seed {seed}");
        }
    }

    #[test]
    fn rounds_track_pattern_depth_not_graph() {
        let g = dag::citation_like(400, 1_200, 6, 3);
        for d in 2..=6 {
            let q = Arc::new(patterns::random_dag_with_depth(8, 12, d, 6, 77));
            let (_, _, rounds) = run_case(&g, &q, 4, 3);
            // d+1 rank rounds + gather + final.
            assert_eq!(rounds as usize, d + 1);
        }
    }

    #[test]
    fn at_most_one_batch_per_site_pair_per_rank() {
        let g = dag::citation_like(300, 900, 4, 1);
        let q = Arc::new(patterns::random_dag_with_depth(6, 9, 4, 4, 5));
        let k = 5;
        let (_, metrics, _) = run_case(&g, &q, k, 1);
        // 5 rank rounds × at most k(k-1) pairs.
        assert!(metrics.data_messages <= 5 * (k * (k - 1)) as u64);
    }

    #[test]
    fn threaded_agrees() {
        let g = dag::citation_like(200, 600, 4, 2);
        let q = Arc::new(patterns::random_dag_with_depth(5, 8, 3, 4, 2));
        let assign = hash_partition(200, 3, 2);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let run = |kind| {
            let (coord, sites) = build(&frag, &q);
            dgs_net::run(kind, &CostModel::default(), coord, sites)
                .coordinator
                .answer
                .unwrap()
        };
        assert_eq!(run(ExecutorKind::Virtual), run(ExecutorKind::Threaded));
    }

    #[test]
    #[should_panic(expected = "DAG pattern")]
    fn cyclic_pattern_rejected() {
        let q = patterns::random_cyclic(4, 8, 4, 0);
        let _ = DgpmdCoordinator::new(&q);
    }
}
