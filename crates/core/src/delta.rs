//! The graph-update subsystem: batched edge deltas with distributed
//! incremental maintenance.
//!
//! A serving session must absorb a stream of edge updates without
//! rebuilding the session, the fragmentation, or the pattern-result
//! cache from scratch. The asymmetry is fundamental under the
//! downward-monotone semantics of graph simulation:
//!
//! * **Deletions only shrink** the maximum relation (Fan, Wang & Wu,
//!   TODS'13 — the basis of the paper's incremental `lEval`, §4.2), so
//!   a cached answer can be **maintained** in `O(|AFF|)`: every site
//!   replays the HHK counter update on its own fragment and ships the
//!   in-node falsifications to its subscriber sites, exactly like dGPM
//!   data messages. No full re-evaluation happens.
//! * **Insertions can revive** candidates from above, so affected
//!   cached entries are conservatively invalidated and the next query
//!   re-plans against the updated structural facts.
//!
//! [`GraphDelta`] is the batch; `SimEngine::apply_delta` routes it.
//! This module owns the maintenance protocol: [`UpdateMsg`] is its
//! wire format (deletion ops and falsifications are **data** messages,
//! so fault injection covers them — both are idempotent),
//! [`DeltaSiteState`] is the per-site counter state reconstructed from
//! a cached relation, and [`build_maintenance`] assembles the actor
//! set for one maintenance run.

use crate::vars::Var;
use dgs_graph::{NodeId, Pattern};
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteDeltaMetrics, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A batch of edge updates against the loaded graph.
///
/// Inserted edges must not exist yet and deleted edges must exist;
/// ops that are already satisfied (an insert of a present edge, a
/// delete of an absent one) are skipped and reported, which makes
/// re-applying a delta a no-op. An edge may not appear in both lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges to insert.
    pub insert_edges: Vec<(NodeId, NodeId)>,
    /// Edges to delete.
    pub delete_edges: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// A deletion-only batch — the incrementally maintainable kind.
    pub fn deletions(ops: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        GraphDelta {
            insert_edges: Vec::new(),
            delete_edges: ops.into_iter().collect(),
        }
    }

    /// An insertion-only batch.
    pub fn insertions(ops: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        GraphDelta {
            insert_edges: ops.into_iter().collect(),
            delete_edges: Vec::new(),
        }
    }

    /// True iff the batch carries no ops at all.
    pub fn is_empty(&self) -> bool {
        self.insert_edges.is_empty() && self.delete_edges.is_empty()
    }

    /// Number of ops in the batch.
    pub fn op_count(&self) -> usize {
        self.insert_edges.len() + self.delete_edges.len()
    }
}

/// What one `SimEngine::apply_delta` call did.
#[derive(Clone, Debug)]
pub struct DeltaReport {
    /// Edges actually inserted.
    pub inserted: usize,
    /// Edges actually deleted.
    pub deleted: usize,
    /// Ops skipped because they were already satisfied.
    pub ignored: usize,
    /// Inserted edges that cross fragments.
    pub crossing_inserted: usize,
    /// Deleted edges that crossed fragments.
    pub crossing_deleted: usize,
    /// Virtual nodes created (or revived) at source sites.
    pub virtuals_created: usize,
    /// Virtual nodes retired at source sites.
    pub virtuals_retired: usize,
    /// Cached entries kept current by distributed incremental
    /// maintenance (deletion-only batches).
    pub maintained_entries: usize,
    /// Cached entries conservatively invalidated (batches with
    /// insertions).
    pub invalidated_entries: usize,
    /// Match pairs revoked across all maintained entries.
    pub revoked_pairs: u64,
    /// The engine's graph generation after this batch (fresh cache
    /// entries are keyed under it).
    pub generation: u64,
    /// Aggregate traffic/ops of the maintenance runs (deletion ops and
    /// falsifications are data messages; gathers are control/result).
    pub metrics: dgs_net::RunMetrics,
    /// Per-site maintenance accounting, aggregated over all maintained
    /// entries.
    pub per_site: Vec<SiteDeltaMetrics>,
}

/// Messages of the distributed maintenance protocol.
///
/// `Ops` and `Falsified` are **data** messages: they ride the same
/// accounting (and fault-injection) path as dGPM's falsification
/// traffic, and both are idempotent — a re-delivered deletion finds
/// the edge already gone and a re-delivered falsification finds the
/// variable already false, so at-least-once delivery cannot change
/// the maintained relation.
#[derive(Clone, Debug)]
pub enum UpdateMsg {
    /// Edge deletions routed to the site owning the source node
    /// (data; coordinator → site).
    Ops(Vec<(u32, u32)>),
    /// Falsified in-node variables (data; site → subscriber site) —
    /// exactly dGPM's `lMsg`.
    Falsified(Vec<Var>),
    /// Result collection request (control; coordinator → sites).
    GatherRequest,
    /// Local match pairs revoked by this site (result; site →
    /// coordinator).
    Revoked(Vec<Var>),
}

impl WireSize for UpdateMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            UpdateMsg::Ops(ops) => 4 + 8 * ops.len(),
            UpdateMsg::Falsified(vars) | UpdateMsg::Revoked(vars) => vars.wire_size(),
            UpdateMsg::GatherRequest => 0,
        }
    }
}

/// Persistent per-site counter state for one maintained pattern: the
/// HHK scheme restricted to the fragment (the state `lEval` would hold
/// at its fixpoint), plus the fragment's adjacency, which the state
/// owns and mutates so that deletions stay idempotent and `O(|AFF|)`
/// across batches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSiteState {
    n: usize,
    nq: usize,
    /// Fragment-local adjacency (shrinks as deletions are applied).
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
    /// Candidacy of `X(u, idx)`: `cand[idx * nq + u]`.
    cand: Vec<bool>,
    /// Support counters: `cnt[e * n + idx]`.
    cnt: Vec<u32>,
}

impl DeltaSiteState {
    /// Reconstructs the fixpoint state of `site` from a *converged*
    /// relation: candidacy is relation membership (for local and
    /// virtual nodes alike — falsifications were fully propagated when
    /// the relation was computed), and the counters are recounted from
    /// the fragment adjacency. `rows[u]` must be the sorted matches of
    /// canonical query node `u` over global node ids.
    pub fn from_relation(
        frag: &Fragmentation,
        site: SiteId,
        q: &Pattern,
        rows: &[Vec<NodeId>],
    ) -> Self {
        let f = frag.fragment(site);
        let n = f.n_total();
        let nq = q.node_count();
        let succ: Vec<Vec<u32>> = (0..n as u32).map(|i| f.successors(i).to_vec()).collect();
        let pred: Vec<Vec<u32>> = (0..n as u32).map(|i| f.predecessors(i).to_vec()).collect();
        let mut cand = vec![false; n * nq];
        for idx in 0..n {
            let gid = f.global_id(idx as u32);
            for (u, row) in rows.iter().enumerate() {
                cand[idx * nq + u] = row.binary_search(&gid).is_ok();
            }
        }
        let qedges: Vec<(u16, u16)> = q.edges().map(|(a, b)| (a.0, b.0)).collect();
        let mut cnt = vec![0u32; qedges.len() * n];
        for (idx, ss) in succ.iter().enumerate() {
            for &s in ss {
                for (e, &(_, uc)) in qedges.iter().enumerate() {
                    if cand[s as usize * nq + uc as usize] {
                        cnt[e * n + idx] += 1;
                    }
                }
            }
        }
        DeltaSiteState {
            n,
            nq,
            succ,
            pred,
            cand,
            cnt,
        }
    }

    /// Is `X(u, idx)` still a candidate? (`idx` is a fragment-local
    /// index.)
    pub fn is_candidate(&self, u: u16, idx: u32) -> bool {
        self.cand[idx as usize * self.nq + u as usize]
    }
}

/// Site logic of one maintenance run: owns the persistent state for
/// the duration and hands it back through [`Self::into_state`].
pub struct DeltaSiteLogic {
    site: SiteId,
    frag: Arc<Fragmentation>,
    qedges: Vec<(u16, u16)>,
    /// Per query node: `(edge index, parent)` pairs.
    parent_edges: Vec<Vec<(usize, u16)>>,
    st: DeltaSiteState,
    /// Local pairs falsified during this run (shipped at gather).
    revoked: Vec<Var>,
    stats: SiteDeltaMetrics,
    ops: u64,
}

impl DeltaSiteLogic {
    fn new(site: SiteId, frag: Arc<Fragmentation>, q: &Pattern, st: DeltaSiteState) -> Self {
        let qedges: Vec<(u16, u16)> = q.edges().map(|(a, b)| (a.0, b.0)).collect();
        let mut parent_edges: Vec<Vec<(usize, u16)>> = vec![Vec::new(); q.node_count()];
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            parent_edges[uc as usize].push((e, u));
        }
        DeltaSiteLogic {
            stats: SiteDeltaMetrics {
                site,
                ..SiteDeltaMetrics::default()
            },
            site,
            frag,
            qedges,
            parent_edges,
            st,
            revoked: Vec::new(),
            ops: 0,
        }
    }

    /// The persistent counter state, to be carried into the next
    /// batch.
    pub fn into_state(self) -> DeltaSiteState {
        self.st
    }

    /// This run's per-site accounting.
    pub fn stats(&self) -> &SiteDeltaMetrics {
        &self.stats
    }

    /// Applies one (possibly re-delivered) edge deletion. Returns the
    /// in-node variables it falsified.
    fn apply_deletion(&mut self, u: u32, v: u32) -> Vec<Var> {
        let f = self.frag.fragment(self.site);
        let (Some(ui), Some(vi)) = (f.index_of(NodeId(u)), f.index_of(NodeId(v))) else {
            return Vec::new();
        };
        let (ui, vi) = (ui as usize, vi as usize);
        // Idempotence: a duplicate delivery finds the edge already
        // removed from this state's own adjacency and is a no-op.
        let Ok(pos) = self.st.succ[ui].binary_search(&(vi as u32)) else {
            return Vec::new();
        };
        self.st.succ[ui].remove(pos);
        let ppos = self.st.pred[vi]
            .binary_search(&(ui as u32))
            .expect("reverse edge tracked");
        self.st.pred[vi].remove(ppos);
        self.stats.ops_applied += 1;

        // The deleted edge supported, per query edge (uq, uc), the
        // pair (uq, u) iff (uc, v) is still a candidate. Snapshot v's
        // candidacy row first: on a self-loop (u = v) an early
        // iteration can falsify a pair of v itself, and the counters
        // hold the *pre-deletion* support — the cascade for the
        // falsified pair is `propagate`'s job.
        let (n, nq) = (self.st.n, self.st.nq);
        let vcand: Vec<bool> = (0..nq).map(|uc| self.st.cand[vi * nq + uc]).collect();
        let mut worklist = Vec::new();
        for (e, &(uq, uc)) in self.qedges.iter().enumerate() {
            self.ops += 1;
            if vcand[uc as usize] {
                let c = &mut self.st.cnt[e * n + ui];
                debug_assert!(*c > 0, "support counter underflow");
                *c -= 1;
                if *c == 0 && self.st.cand[ui * nq + uq as usize] {
                    self.st.cand[ui * nq + uq as usize] = false;
                    worklist.push((uq, ui as u32));
                }
            }
        }
        self.propagate(worklist)
    }

    /// The downward worklist (the incremental `lEval` of §4.2 over
    /// this fragment): records revoked local pairs and returns the
    /// falsified in-node variables — what `lMsg` must ship.
    ///
    /// This is the fragment-local sibling of
    /// `dgs_sim::IncrementalSim::propagate` (global graph, transposed
    /// `cand` layout, no shipping) — a counter-scheme change there
    /// almost certainly applies here too.
    fn propagate(&mut self, mut worklist: Vec<(u16, u32)>) -> Vec<Var> {
        let f = self.frag.fragment(self.site);
        let st = &mut self.st;
        let (n, nq) = (st.n, st.nq);
        let n_local = f.n_local();
        let mut falsified_in_nodes = Vec::new();
        while let Some((uq, idx)) = worklist.pop() {
            if (idx as usize) < n_local {
                let var = Var {
                    q: uq,
                    node: f.global_id(idx).0,
                };
                self.revoked.push(var);
                self.stats.pairs_revoked += 1;
                if f.in_node_pos(idx).is_some() {
                    falsified_in_nodes.push(var);
                }
            }
            for &(e, up) in &self.parent_edges[uq as usize] {
                for i in 0..st.pred[idx as usize].len() {
                    let vp = st.pred[idx as usize][i] as usize;
                    self.ops += 1;
                    let c = &mut st.cnt[e * n + vp];
                    debug_assert!(*c > 0, "support counter underflow");
                    *c -= 1;
                    if *c == 0 && st.cand[vp * nq + up as usize] {
                        st.cand[vp * nq + up as usize] = false;
                        worklist.push((up, vp as u32));
                    }
                }
            }
        }
        falsified_in_nodes
    }

    /// Ships in-node falsifications to their subscriber sites (read
    /// from the *current* fragmentation, so dropped subscriptions ship
    /// nothing), batched per destination.
    fn route_falsifications(&mut self, vars: Vec<Var>, out: &mut Outbox<UpdateMsg>) {
        if vars.is_empty() {
            return;
        }
        let f = self.frag.fragment(self.site);
        let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
        for var in vars {
            let idx = f.index_of(var.node_id()).expect("in-node var is local");
            let pos = f.in_node_pos(idx).expect("falsified var is an in-node");
            for &s in f.in_node_subscribers(pos) {
                per_site.entry(s).or_default().push(var);
            }
        }
        for (s, vars) in per_site {
            self.stats.falsifications_shipped += vars.len() as u64;
            out.send(Endpoint::Site(s as u32), UpdateMsg::Falsified(vars));
        }
    }

    fn charge(&mut self, out: &mut Outbox<UpdateMsg>) {
        out.charge_ops(std::mem::take(&mut self.ops));
    }
}

impl SiteLogic<UpdateMsg> for DeltaSiteLogic {
    fn on_start(&mut self, _out: &mut Outbox<UpdateMsg>) {
        // Sites idle until the coordinator routes them ops.
    }

    fn on_message(&mut self, from: Endpoint, msg: UpdateMsg, out: &mut Outbox<UpdateMsg>) {
        match msg {
            UpdateMsg::Ops(pairs) => {
                let mut falsified = Vec::new();
                for (u, v) in pairs {
                    falsified.extend(self.apply_deletion(u, v));
                }
                self.route_falsifications(falsified, out);
            }
            UpdateMsg::Falsified(vars) => {
                let f = Arc::clone(&self.frag);
                let f = f.fragment(self.site);
                let nq = self.st.nq;
                let mut worklist = Vec::new();
                for var in vars {
                    self.ops += 1;
                    let Some(idx) = f.index_of(var.node_id()) else {
                        continue;
                    };
                    debug_assert!(f.is_virtual(idx), "falsification targets a virtual node");
                    let slot = idx as usize * nq + var.q as usize;
                    // Idempotence: an already-false variable is a no-op.
                    if self.st.cand[slot] {
                        self.st.cand[slot] = false;
                        worklist.push((var.q, idx));
                    }
                }
                let falsified = self.propagate(worklist);
                self.route_falsifications(falsified, out);
            }
            UpdateMsg::GatherRequest => {
                debug_assert_eq!(from, Endpoint::Coordinator);
                out.send_result(
                    Endpoint::Coordinator,
                    UpdateMsg::Revoked(std::mem::take(&mut self.revoked)),
                );
            }
            UpdateMsg::Revoked(_) => unreachable!("sites never receive results"),
        }
        self.charge(out);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Updating,
    Gathering,
    Done,
}

/// Coordinator of one maintenance run: routes the deletion batch,
/// idles through the falsification fixpoint, then collects the
/// revoked pairs.
pub struct DeltaCoordinator {
    ops_by_site: Vec<Vec<(u32, u32)>>,
    phase: Phase,
    /// Match pairs revoked across all sites (query nodes in the
    /// maintained pattern's numbering, data nodes global).
    pub revoked: Vec<Var>,
}

impl CoordinatorLogic<UpdateMsg> for DeltaCoordinator {
    fn on_start(&mut self, out: &mut Outbox<UpdateMsg>) {
        for (s, ops) in self.ops_by_site.iter_mut().enumerate() {
            if !ops.is_empty() {
                out.send(
                    Endpoint::Site(s as u32),
                    UpdateMsg::Ops(std::mem::take(ops)),
                );
            }
        }
    }

    fn on_message(&mut self, _from: Endpoint, msg: UpdateMsg, out: &mut Outbox<UpdateMsg>) {
        match msg {
            UpdateMsg::Revoked(vars) => {
                out.charge_ops(vars.len() as u64 + 1);
                self.revoked.extend(vars);
            }
            _ => unreachable!("coordinator only receives results"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<UpdateMsg>) -> bool {
        match self.phase {
            Phase::Updating => {
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), UpdateMsg::GatherRequest);
                }
                self.phase = Phase::Gathering;
                if out.num_sites() == 0 {
                    self.phase = Phase::Done;
                    return true;
                }
                false
            }
            Phase::Gathering => {
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the actor set for one distributed maintenance run over
/// `deletions`: one [`DeltaSiteLogic`] per site wrapping its
/// persistent [`DeltaSiteState`], plus the routing coordinator. Each
/// deletion is routed to the site owning its source node.
///
/// # Panics
/// Panics if `states.len() != frag.num_sites()`.
pub fn build_maintenance(
    frag: &Arc<Fragmentation>,
    q: &Pattern,
    states: Vec<DeltaSiteState>,
    deletions: &[(NodeId, NodeId)],
) -> (DeltaCoordinator, Vec<DeltaSiteLogic>) {
    assert_eq!(
        states.len(),
        frag.num_sites(),
        "one state per site required"
    );
    let mut ops_by_site: Vec<Vec<(u32, u32)>> = vec![Vec::new(); frag.num_sites()];
    for &(u, v) in deletions {
        ops_by_site[frag.owner(u)].push((u.0, v.0));
    }
    let sites = states
        .into_iter()
        .enumerate()
        .map(|(s, st)| DeltaSiteLogic::new(s, Arc::clone(frag), q, st))
        .collect();
    (
        DeltaCoordinator {
            ops_by_site,
            phase: Phase::Updating,
            revoked: Vec::new(),
        },
        sites,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::GraphBuilder;
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;
    use dgs_sim::hhk_simulation;

    fn rows_of(q: &Pattern, g: &dgs_graph::Graph) -> Vec<Vec<NodeId>> {
        let rel = hhk_simulation(q, g).relation;
        q.nodes().map(|u| rel.matches_of(u).to_vec()).collect()
    }

    fn graph_without(g: &dgs_graph::Graph, deleted: &[(NodeId, NodeId)]) -> dgs_graph::Graph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deleted.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn maintenance_run_matches_recomputation() {
        for seed in 0..6 {
            let n = 80;
            let g = random::uniform(n, 320, 4, seed);
            let q = patterns::random_cyclic(4, 7, 4, seed + 3);
            let assign = hash_partition(n, 3, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
            let rows = rows_of(&q, &g);

            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(12).collect();
            let states: Vec<DeltaSiteState> = (0..3)
                .map(|s| DeltaSiteState::from_relation(&frag, s, &q, &rows))
                .collect();

            // The fragmentation absorbs the delta first (as the engine
            // does), then the maintenance protocol runs.
            let mut frag2 = (*frag).clone();
            frag2.apply_delta(
                &deletions
                    .iter()
                    .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v))
                    .collect::<Vec<_>>(),
            );
            let frag2 = Arc::new(frag2);
            let (coord, sites) = build_maintenance(&frag2, &q, states, &deletions);
            let o = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);

            // Revoking the reported pairs from the old relation yields
            // the oracle relation on the mutated graph.
            let g2 = graph_without(&g, &deletions);
            let oracle = hhk_simulation(&q, &g2).relation;
            let mut rows2 = rows.clone();
            for var in &o.coordinator.revoked {
                let row = &mut rows2[var.q as usize];
                let pos = row
                    .binary_search(&var.node_id())
                    .expect("revoked pair was in the relation");
                row.remove(pos);
            }
            let maintained = dgs_sim::MatchRelation::from_lists(rows2);
            assert_eq!(maintained, oracle, "seed {seed}");
        }
    }

    #[test]
    fn redelivered_deletions_and_falsifications_are_idempotent() {
        use dgs_net::{FaultPlan, VirtualExecutor};
        for seed in 0..4 {
            let n = 70;
            let g = random::uniform(n, 280, 4, seed + 50);
            let q = patterns::random_cyclic(4, 7, 4, seed + 53);
            let assign = hash_partition(n, 4, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
            let rows = rows_of(&q, &g);
            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(10).collect();

            let mut frag2 = (*frag).clone();
            frag2.apply_delta(
                &deletions
                    .iter()
                    .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v))
                    .collect::<Vec<_>>(),
            );
            let frag2 = Arc::new(frag2);

            let run = |faults: Option<FaultPlan>| {
                let states: Vec<DeltaSiteState> = (0..4)
                    .map(|s| DeltaSiteState::from_relation(&frag, s, &q, &rows))
                    .collect();
                let (coord, sites) = build_maintenance(&frag2, &q, states, &deletions);
                let mut exec = VirtualExecutor::new(CostModel::default());
                if let Some(f) = faults {
                    exec = exec.with_faults(f);
                }
                let o = exec.run(coord, sites);
                let mut revoked = o.coordinator.revoked.clone();
                revoked.sort_unstable();
                let states: Vec<DeltaSiteState> = o
                    .sites
                    .into_iter()
                    .map(DeltaSiteLogic::into_state)
                    .collect();
                (revoked, states, o.metrics)
            };

            let (clean_revoked, clean_states, _) = run(None);
            let (faulty_revoked, faulty_states, m) =
                run(Some(FaultPlan::duplicating(1.0, seed ^ 0xA5)));
            // Every data message (ops batches and falsifications) was
            // re-delivered...
            if m.data_messages > 0 {
                assert_eq!(m.duplicated_messages * 2, m.data_messages, "seed {seed}");
            }
            // ...and neither the revoked set nor any site's counter
            // state changed: deletions and falsifications are
            // idempotent.
            assert_eq!(faulty_revoked, clean_revoked, "seed {seed}");
            assert_eq!(faulty_states, clean_states, "seed {seed}");
        }
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(UpdateMsg::GatherRequest.wire_size(), 1);
        assert_eq!(UpdateMsg::Ops(vec![(1, 2), (3, 4)]).wire_size(), 1 + 4 + 16);
        let v = vec![Var { q: 0, node: 7 }];
        assert_eq!(UpdateMsg::Falsified(v.clone()).wire_size(), 1 + 4 + 6);
        assert_eq!(UpdateMsg::Revoked(v).wire_size(), 1 + 4 + 6);
    }

    #[test]
    fn delta_helpers() {
        let d = GraphDelta::deletions([(NodeId(0), NodeId(1))]);
        assert!(d.insert_edges.is_empty());
        assert_eq!(d.op_count(), 1);
        assert!(!d.is_empty());
        let i = GraphDelta::insertions([(NodeId(1), NodeId(0))]);
        assert!(i.delete_edges.is_empty());
        assert!(GraphDelta::default().is_empty());
    }
}
