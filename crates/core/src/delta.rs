//! The graph-update subsystem: batched edge deltas with distributed
//! incremental maintenance.
//!
//! A serving session must absorb a stream of edge updates without
//! rebuilding the session, the fragmentation, or the pattern-result
//! cache from scratch. The asymmetry is fundamental under the
//! downward-monotone semantics of graph simulation:
//!
//! * **Deletions only shrink** the maximum relation (Fan, Wang & Wu,
//!   TODS'13 — the basis of the paper's incremental `lEval`, §4.2), so
//!   a cached answer can be **maintained** in `O(|AFF|)`: every site
//!   replays the HHK counter update on its own fragment and ships the
//!   in-node falsifications to its subscriber sites, exactly like dGPM
//!   data messages. No full re-evaluation happens.
//! * **Insertions only grow** the relation, and are repaired by a
//!   bounded distributed re-refinement (the protocol analogue of
//!   `dgs_sim::IncrementalSim::insert_edges`). Each site computes its
//!   slice of the affected area `AFF` — the backward closure of the
//!   inserted edges' source nodes — with [`UpdateMsg::Affected`]
//!   carrying the closure across fragment boundaries whenever a marked
//!   in-node's candidacy may change at a subscriber. Affected pairs
//!   are optimistically revived to label compatibility, their counters
//!   rebuilt, and the standard downward refinement re-run with
//!   non-affected candidacy frozen; resurrections flow back at gather,
//!   symmetric to the falsification path.
//!
//! Every batch shape is maintained: deletions run first (on the
//! pre-insertion adjacency — the engine rejects an edge appearing in
//! both lists, so the two sub-batches commute), then the insertion
//! phases; an insertion-only batch simply quiesces straight through
//! the (empty) deletion phase. Nothing is conservatively invalidated
//! anymore.
//!
//! [`GraphDelta`] is the batch; `SimEngine::apply_delta` routes it.
//! This module owns the maintenance protocol: [`UpdateMsg`] is its
//! wire format (ops, falsifications, affected marks, and candidacy
//! rows are **data** messages, so fault injection covers them — all
//! are idempotent), [`DeltaSiteState`] is the per-site counter state
//! reconstructed from a cached relation, and [`build_maintenance`]
//! assembles the actor set for one maintenance run.
//!
//! The run is phased by coordinator quiescence barriers —
//! `Deleting → Marking → Refining → Gathering` — because marking must
//! see the post-deletion candidacy and refinement must see the
//! complete marked set. One cross-channel race needs care: a fast
//! site can finish refining and ship a falsification before a slow
//! site has seen its own `Refine`, so sites buffer falsifications
//! that arrive mid-marking and replay them after revival.

use crate::vars::Var;
use dgs_graph::{NodeId, Pattern};
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteDeltaMetrics, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A batch of edge updates against the loaded graph.
///
/// Inserted edges must not exist yet and deleted edges must exist;
/// ops that are already satisfied (an insert of a present edge, a
/// delete of an absent one) are skipped and reported, which makes
/// re-applying a delta a no-op. An edge may not appear in both lists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges to insert.
    pub insert_edges: Vec<(NodeId, NodeId)>,
    /// Edges to delete.
    pub delete_edges: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// A deletion-only batch — the incrementally maintainable kind.
    pub fn deletions(ops: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        GraphDelta {
            insert_edges: Vec::new(),
            delete_edges: ops.into_iter().collect(),
        }
    }

    /// An insertion-only batch.
    pub fn insertions(ops: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        GraphDelta {
            insert_edges: ops.into_iter().collect(),
            delete_edges: Vec::new(),
        }
    }

    /// True iff the batch carries no ops at all.
    pub fn is_empty(&self) -> bool {
        self.insert_edges.is_empty() && self.delete_edges.is_empty()
    }

    /// Number of ops in the batch.
    pub fn op_count(&self) -> usize {
        self.insert_edges.len() + self.delete_edges.len()
    }
}

/// What one `SimEngine::apply_delta` call did.
#[derive(Clone, Debug)]
pub struct DeltaReport {
    /// Edges actually inserted.
    pub inserted: usize,
    /// Edges actually deleted.
    pub deleted: usize,
    /// Ops skipped because they were already satisfied.
    pub ignored: usize,
    /// Inserted edges that cross fragments.
    pub crossing_inserted: usize,
    /// Deleted edges that crossed fragments.
    pub crossing_deleted: usize,
    /// Virtual nodes created (or revived) at source sites.
    pub virtuals_created: usize,
    /// Virtual nodes retired at source sites.
    pub virtuals_retired: usize,
    /// Cached entries kept current by distributed incremental
    /// maintenance. Every non-empty batch shape takes this path —
    /// deletion-only, insertion-only, and mixed alike.
    pub maintained_entries: usize,
    /// Cached entries dropped without maintenance. Since insertion-side
    /// maintenance landed, the only entries counted here are
    /// `trivial-∅` short-circuits whose pattern has nodes that cannot
    /// reach a cycle of `Q`: their stored `∅` rows are the answer
    /// convention rather than the maximum fixpoint, so an insertion
    /// batch has no valid baseline to repair from and the entry is
    /// dropped instead (the next query re-evaluates fresh).
    pub invalidated_entries: usize,
    /// Match pairs revoked across all maintained entries (deletion
    /// side of the batch).
    pub revoked_pairs: u64,
    /// Match pairs resurrected across all maintained entries
    /// (insertion side of the batch).
    pub resurrected_pairs: u64,
    /// The engine's graph generation after this batch (fresh cache
    /// entries are keyed under it).
    pub generation: u64,
    /// The generation this batch was applied *against*. Generations
    /// come from a shared allocator and are strictly increasing but
    /// not necessarily contiguous, so consumers chaining per-batch
    /// diffs (live subscriptions) key on `prev_generation →
    /// generation` edges instead of assuming `+1`.
    pub prev_generation: u64,
    /// Aggregate traffic/ops of the maintenance runs (deletion ops and
    /// falsifications are data messages; gathers are control/result).
    pub metrics: dgs_net::RunMetrics,
    /// Per-site maintenance accounting, aggregated over all maintained
    /// entries.
    pub per_site: Vec<SiteDeltaMetrics>,
    /// Exact per-entry match-set diffs produced by maintenance — what
    /// a live subscription on the pattern must push. One element per
    /// maintained entry; not serialized in the wire summary.
    pub maintained_diffs: Vec<MaintainedDiff>,
}

/// The exact diff one delta batch applied to one maintained cache
/// entry: which pairs left the match set and which (re)entered it.
/// This is the "diff for free" a maintained entry yields — the
/// subscription layer forwards it without re-running the query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintainedDiff {
    /// Canonical pattern key of the maintained entry (the suffix of
    /// its cache key, stable across generations).
    pub canon_key: Vec<u32>,
    /// Pairs revoked from the match set, in canonical query-node
    /// numbering.
    pub revoked: Vec<Var>,
    /// Pairs resurrected into the match set.
    pub resurrected: Vec<Var>,
}

/// Messages of the distributed maintenance protocol.
///
/// `Ops`, `InsOps`, `Falsified`, `Affected`, and `CandRow` are
/// **data** messages: they ride the same accounting (and
/// fault-injection) path as dGPM's falsification traffic, and all are
/// idempotent — a re-delivered deletion finds the edge already gone, a
/// re-delivered insertion finds it already present, a re-delivered
/// falsification finds the variable already false, a re-delivered mark
/// finds the node already marked, and a re-delivered candidacy row
/// overwrites with the same values — so at-least-once delivery cannot
/// change the maintained relation. `ShipCand`, `Refine`, and
/// `GatherRequest` are control; `Revoked` and `Resurrected` are
/// results.
#[derive(Clone, Debug)]
pub enum UpdateMsg {
    /// Edge deletions routed to the site owning the source node
    /// (data; coordinator → site).
    Ops(Vec<(u32, u32)>),
    /// Edge insertions routed to the site owning the source node
    /// (data; coordinator → site, marking phase).
    InsOps(Vec<(u32, u32)>),
    /// Falsified in-node variables (data; site → subscriber site) —
    /// exactly dGPM's `lMsg`.
    Falsified(Vec<Var>),
    /// Global ids of in-nodes that entered the affected area at their
    /// owner (data; owner → subscriber sites, marking phase). The
    /// subscriber marks its virtual copy and continues the backward
    /// closure locally — this is how `AFF` crosses fragment borders.
    Affected(Vec<u32>),
    /// Current candidacy of in-nodes that a new crossing insertion
    /// targets: `(global id, query nodes it matches)` (data; owner →
    /// the inserting site, marking phase). Seeds fresh or revived
    /// virtual slots, whose local state is blank or stale.
    CandRow(Vec<(u32, Vec<u16>)>),
    /// Instructs the owner of each listed in-node to ship its
    /// [`UpdateMsg::CandRow`] to the given destination site, as
    /// `(dest site, global id)` (control; coordinator → owner).
    ShipCand(Vec<(u32, u32)>),
    /// Marking is globally quiescent: revive affected pairs, rebuild
    /// their counters, and re-run refinement (control; coordinator →
    /// all sites).
    Refine,
    /// Result collection request (control; coordinator → sites).
    GatherRequest,
    /// Local match pairs revoked by this site (result; site →
    /// coordinator).
    Revoked(Vec<Var>),
    /// Local match pairs resurrected by this site (result; site →
    /// coordinator).
    Resurrected(Vec<Var>),
}

impl WireSize for UpdateMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            UpdateMsg::Ops(ops) | UpdateMsg::InsOps(ops) | UpdateMsg::ShipCand(ops) => {
                4 + 8 * ops.len()
            }
            UpdateMsg::Falsified(vars)
            | UpdateMsg::Revoked(vars)
            | UpdateMsg::Resurrected(vars) => vars.wire_size(),
            UpdateMsg::Affected(gids) => 4 + 4 * gids.len(),
            UpdateMsg::CandRow(rows) => {
                4 + rows
                    .iter()
                    .map(|(_, qs)| 4 + 2 + 2 * qs.len())
                    .sum::<usize>()
            }
            UpdateMsg::Refine | UpdateMsg::GatherRequest => 0,
        }
    }
}

/// Persistent per-site counter state for one maintained pattern: the
/// HHK scheme restricted to the fragment (the state `lEval` would hold
/// at its fixpoint), plus the fragment's adjacency, which the state
/// owns and mutates so that deletions stay idempotent and `O(|AFF|)`
/// across batches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSiteState {
    n: usize,
    nq: usize,
    /// Fragment-local adjacency (shrinks as deletions are applied).
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
    /// Candidacy of `X(u, idx)`: `cand[idx * nq + u]`.
    cand: Vec<bool>,
    /// Support counters: `cnt[e * n + idx]`.
    cnt: Vec<u32>,
}

impl DeltaSiteState {
    /// Reconstructs the fixpoint state of `site` from a *converged*
    /// relation: candidacy is relation membership (for local and
    /// virtual nodes alike — falsifications were fully propagated when
    /// the relation was computed), and the counters are recounted from
    /// the fragment adjacency. `rows[u]` must be the sorted matches of
    /// canonical query node `u` over global node ids.
    pub fn from_relation(
        frag: &Fragmentation,
        site: SiteId,
        q: &Pattern,
        rows: &[Vec<NodeId>],
    ) -> Self {
        let f = frag.fragment(site);
        let n = f.n_total();
        let nq = q.node_count();
        let succ: Vec<Vec<u32>> = (0..n as u32).map(|i| f.successors(i).to_vec()).collect();
        let pred: Vec<Vec<u32>> = (0..n as u32).map(|i| f.predecessors(i).to_vec()).collect();
        let mut cand = vec![false; n * nq];
        for idx in 0..n {
            let gid = f.global_id(idx as u32);
            for (u, row) in rows.iter().enumerate() {
                cand[idx * nq + u] = row.binary_search(&gid).is_ok();
            }
        }
        let qedges: Vec<(u16, u16)> = q.edges().map(|(a, b)| (a.0, b.0)).collect();
        let mut cnt = vec![0u32; qedges.len() * n];
        for (idx, ss) in succ.iter().enumerate() {
            for &s in ss {
                for (e, &(_, uc)) in qedges.iter().enumerate() {
                    if cand[s as usize * nq + uc as usize] {
                        cnt[e * n + idx] += 1;
                    }
                }
            }
        }
        DeltaSiteState {
            n,
            nq,
            succ,
            pred,
            cand,
            cnt,
        }
    }

    /// Is `X(u, idx)` still a candidate? (`idx` is a fragment-local
    /// index.)
    pub fn is_candidate(&self, u: u16, idx: u32) -> bool {
        self.cand[idx as usize * self.nq + u as usize]
    }
}

/// A site's view of the run's phase progression. Advanced by the
/// messages themselves: any marking-phase message moves a site out of
/// `Deleting`, and only the coordinator's `Refine` (sent at global
/// marking quiescence) moves it into `Refining`. A deletion-only run
/// never leaves `Deleting`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SitePhase {
    Deleting,
    Marking,
    Refining,
}

/// Site logic of one maintenance run: owns the persistent state for
/// the duration and hands it back through [`Self::into_state`].
pub struct DeltaSiteLogic {
    site: SiteId,
    frag: Arc<Fragmentation>,
    qedges: Vec<(u16, u16)>,
    /// Per query node: `(edge index, parent)` pairs.
    parent_edges: Vec<Vec<(usize, u16)>>,
    /// Per query node: indices of its out-edges (refinement seeding).
    out_edges: Vec<Vec<usize>>,
    /// Pattern node labels, for optimistic revival of affected pairs.
    qlabels: Vec<dgs_graph::Label>,
    st: DeltaSiteState,
    phase: SitePhase,
    /// Nodes in this site's slice of `AFF` (sized with the state once
    /// marking starts).
    marked: Vec<bool>,
    /// Falsifications that arrived from an already-refining site while
    /// this one was still marking; replayed right after revival.
    pending_falsified: Vec<Var>,
    /// Candidacy snapshot taken at `Refine`, before revival — the
    /// reference for computing resurrections.
    pre_refine: Vec<bool>,
    /// Local pairs falsified during the deletion phase (filtered
    /// against the final candidacy and shipped at gather).
    revoked: Vec<Var>,
    /// In refine mode, `propagate` kills optimistically-revived pairs;
    /// those are refinement, not revocations, and stay unrecorded.
    in_refine: bool,
    stats: SiteDeltaMetrics,
    ops: u64,
}

impl DeltaSiteLogic {
    fn new(site: SiteId, frag: Arc<Fragmentation>, q: &Pattern, st: DeltaSiteState) -> Self {
        let qedges: Vec<(u16, u16)> = q.edges().map(|(a, b)| (a.0, b.0)).collect();
        let mut parent_edges: Vec<Vec<(usize, u16)>> = vec![Vec::new(); q.node_count()];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); q.node_count()];
        for (e, &(u, uc)) in qedges.iter().enumerate() {
            parent_edges[uc as usize].push((e, u));
            out_edges[u as usize].push(e);
        }
        DeltaSiteLogic {
            stats: SiteDeltaMetrics {
                site,
                ..SiteDeltaMetrics::default()
            },
            site,
            frag,
            qedges,
            parent_edges,
            out_edges,
            qlabels: q.nodes().map(|u| q.label(u)).collect(),
            st,
            phase: SitePhase::Deleting,
            marked: Vec::new(),
            pending_falsified: Vec::new(),
            pre_refine: Vec::new(),
            revoked: Vec::new(),
            in_refine: false,
            ops: 0,
        }
    }

    /// The persistent counter state, to be carried into the next
    /// batch.
    pub fn into_state(self) -> DeltaSiteState {
        self.st
    }

    /// This run's per-site accounting.
    pub fn stats(&self) -> &SiteDeltaMetrics {
        &self.stats
    }

    /// Applies one (possibly re-delivered) edge deletion. Returns the
    /// in-node variables it falsified.
    fn apply_deletion(&mut self, u: u32, v: u32) -> Vec<Var> {
        let f = self.frag.fragment(self.site);
        let (Some(ui), Some(vi)) = (f.index_of(NodeId(u)), f.index_of(NodeId(v))) else {
            return Vec::new();
        };
        let (ui, vi) = (ui as usize, vi as usize);
        // Idempotence: a duplicate delivery finds the edge already
        // removed from this state's own adjacency and is a no-op.
        let Ok(pos) = self.st.succ[ui].binary_search(&(vi as u32)) else {
            return Vec::new();
        };
        self.st.succ[ui].remove(pos);
        let ppos = self.st.pred[vi]
            .binary_search(&(ui as u32))
            .expect("reverse edge tracked");
        self.st.pred[vi].remove(ppos);
        self.stats.ops_applied += 1;

        // The deleted edge supported, per query edge (uq, uc), the
        // pair (uq, u) iff (uc, v) is still a candidate. Snapshot v's
        // candidacy row first: on a self-loop (u = v) an early
        // iteration can falsify a pair of v itself, and the counters
        // hold the *pre-deletion* support — the cascade for the
        // falsified pair is `propagate`'s job.
        let (n, nq) = (self.st.n, self.st.nq);
        let vcand: Vec<bool> = (0..nq).map(|uc| self.st.cand[vi * nq + uc]).collect();
        let mut worklist = Vec::new();
        for (e, &(uq, uc)) in self.qedges.iter().enumerate() {
            self.ops += 1;
            if vcand[uc as usize] {
                let c = &mut self.st.cnt[e * n + ui];
                debug_assert!(*c > 0, "support counter underflow");
                *c -= 1;
                if *c == 0 && self.st.cand[ui * nq + uq as usize] {
                    self.st.cand[ui * nq + uq as usize] = false;
                    worklist.push((uq, ui as u32));
                }
            }
        }
        self.propagate(worklist)
    }

    /// The downward worklist (the incremental `lEval` of §4.2 over
    /// this fragment): records revoked local pairs and returns the
    /// falsified in-node variables — what `lMsg` must ship.
    ///
    /// This is the fragment-local sibling of
    /// `dgs_sim::IncrementalSim::propagate` (global graph, transposed
    /// `cand` layout, no shipping) — a counter-scheme change there
    /// almost certainly applies here too.
    fn propagate(&mut self, mut worklist: Vec<(u16, u32)>) -> Vec<Var> {
        let f = self.frag.fragment(self.site);
        let st = &mut self.st;
        let (n, nq) = (st.n, st.nq);
        let n_local = f.n_local();
        let mut falsified_in_nodes = Vec::new();
        while let Some((uq, idx)) = worklist.pop() {
            if (idx as usize) < n_local {
                let var = Var {
                    q: uq,
                    node: f.global_id(idx).0,
                };
                if !self.in_refine {
                    self.revoked.push(var);
                    self.stats.pairs_revoked += 1;
                }
                if f.in_node_pos(idx).is_some() {
                    falsified_in_nodes.push(var);
                }
            }
            for &(e, up) in &self.parent_edges[uq as usize] {
                for i in 0..st.pred[idx as usize].len() {
                    let vp = st.pred[idx as usize][i] as usize;
                    self.ops += 1;
                    let c = &mut st.cnt[e * n + vp];
                    debug_assert!(*c > 0, "support counter underflow");
                    *c -= 1;
                    if *c == 0 && st.cand[vp * nq + up as usize] {
                        st.cand[vp * nq + up as usize] = false;
                        worklist.push((up, vp as u32));
                    }
                }
            }
        }
        falsified_in_nodes
    }

    /// Ships in-node falsifications to their subscriber sites (read
    /// from the *current* fragmentation, so dropped subscriptions ship
    /// nothing), batched per destination.
    fn route_falsifications(&mut self, vars: Vec<Var>, out: &mut Outbox<UpdateMsg>) {
        if vars.is_empty() {
            return;
        }
        let f = self.frag.fragment(self.site);
        let mut per_site: BTreeMap<SiteId, Vec<Var>> = BTreeMap::new();
        for var in vars {
            let idx = f.index_of(var.node_id()).expect("in-node var is local");
            let pos = f.in_node_pos(idx).expect("falsified var is an in-node");
            for &s in f.in_node_subscribers(pos) {
                per_site.entry(s).or_default().push(var);
            }
        }
        for (s, vars) in per_site {
            self.stats.falsifications_shipped += vars.len() as u64;
            out.send(Endpoint::Site(s as u32), UpdateMsg::Falsified(vars));
        }
    }

    /// Enters the marking phase on first contact: grows the state to
    /// the post-delta fragment (crossing insertions can append or
    /// revive virtual slots) and sizes the mark set. Idempotent.
    fn enter_marking(&mut self) {
        if self.phase != SitePhase::Deleting {
            return;
        }
        self.phase = SitePhase::Marking;
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let new_n = f.n_total();
        let st = &mut self.st;
        if new_n > st.n {
            st.succ.resize(new_n, Vec::new());
            st.pred.resize(new_n, Vec::new());
            // `cand` is index-major, so existing rows keep their
            // offsets; `cnt` is edge-major over `n` and must be
            // re-laid-out.
            st.cand.resize(new_n * st.nq, false);
            let ne = self.qedges.len();
            let mut cnt = vec![0u32; ne * new_n];
            for e in 0..ne {
                cnt[e * new_n..e * new_n + st.n].copy_from_slice(&st.cnt[e * st.n..(e + 1) * st.n]);
            }
            st.cnt = cnt;
            st.n = new_n;
        }
        self.marked = vec![false; st.n];
    }

    /// Marks `seeds` and closes backward over this fragment's
    /// predecessors (always local indices — virtual nodes have no
    /// out-edges). Whenever a *local in-node* enters the affected
    /// area, its subscribers are told via [`UpdateMsg::Affected`] so
    /// the closure continues across the border.
    fn mark_from(&mut self, seeds: Vec<u32>, out: &mut Outbox<UpdateMsg>) {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let mut per_site: BTreeMap<SiteId, Vec<u32>> = BTreeMap::new();
        let mut stack = Vec::new();
        let mut visit = |idx: u32, marked: &mut Vec<bool>, stack: &mut Vec<u32>| {
            if marked[idx as usize] {
                return;
            }
            marked[idx as usize] = true;
            stack.push(idx);
            if !f.is_virtual(idx) {
                if let Some(pos) = f.in_node_pos(idx) {
                    for &s in f.in_node_subscribers(pos) {
                        per_site.entry(s).or_default().push(f.global_id(idx).0);
                    }
                }
            }
        };
        for idx in seeds {
            visit(idx, &mut self.marked, &mut stack);
        }
        while let Some(idx) = stack.pop() {
            for i in 0..self.st.pred[idx as usize].len() {
                let p = self.st.pred[idx as usize][i];
                self.ops += 1;
                visit(p, &mut self.marked, &mut stack);
            }
        }
        for (s, gids) in per_site {
            out.send(Endpoint::Site(s as u32), UpdateMsg::Affected(gids));
        }
    }

    /// Applies one routed insertion batch (marking phase): edges enter
    /// this state's own adjacency (idempotently, so re-delivery is a
    /// no-op) and their source nodes seed the affected-area closure.
    /// Counters are *not* touched here — every marked node's counters
    /// are rebuilt wholesale at `Refine`.
    fn apply_insertions(&mut self, pairs: Vec<(u32, u32)>, out: &mut Outbox<UpdateMsg>) {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let mut seeds = Vec::new();
        for (u, v) in pairs {
            let ui = f
                .index_of(NodeId(u))
                .expect("insertion routed to owner of source");
            let vi = f
                .index_of(NodeId(v))
                .expect("insertion target present in post-delta fragment");
            let Err(pos) = self.st.succ[ui as usize].binary_search(&vi) else {
                continue;
            };
            self.st.succ[ui as usize].insert(pos, vi);
            let ppos = self.st.pred[vi as usize]
                .binary_search(&ui)
                .expect_err("reverse edge tracked symmetrically");
            self.st.pred[vi as usize].insert(ppos, ui);
            self.stats.ops_applied += 1;
            seeds.push(ui);
        }
        self.mark_from(seeds, out);
    }

    /// Applies a falsification batch to this fragment's virtual copies
    /// and cascades. Shared by the deletion phase, the refining phase,
    /// and the replay of buffered falsifications.
    fn apply_falsified(&mut self, vars: Vec<Var>) -> Vec<Var> {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let nq = self.st.nq;
        let mut worklist = Vec::new();
        for var in vars {
            self.ops += 1;
            let Some(idx) = f.index_of(var.node_id()) else {
                continue;
            };
            debug_assert!(f.is_virtual(idx), "falsification targets a virtual node");
            if (idx as usize) >= self.st.n {
                // A slot this site only subscribes to as of this batch
                // (the owner reads the post-delta subscriber list).
                // Not sized yet mid-deletion; its row arrives later
                // via `CandRow`, already reflecting the falsification.
                debug_assert_eq!(self.phase, SitePhase::Deleting);
                continue;
            }
            let slot = idx as usize * nq + var.q as usize;
            // Idempotence: an already-false variable is a no-op.
            if self.st.cand[slot] {
                self.st.cand[slot] = false;
                worklist.push((var.q, idx));
            }
        }
        self.propagate(worklist)
    }

    /// Marking is globally quiescent: optimistically revive every
    /// affected pair, rebuild affected counters, and re-run the
    /// downward refinement with non-affected candidacy frozen as the
    /// boundary. Buffered out-of-phase falsifications replay after
    /// revival so they cannot be lost.
    fn refine(&mut self, out: &mut Outbox<UpdateMsg>) {
        if self.phase == SitePhase::Refining {
            return;
        }
        self.enter_marking();
        self.phase = SitePhase::Refining;
        self.pre_refine = self.st.cand.clone();
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let (n, nq) = (self.st.n, self.st.nq);
        for idx in 0..n {
            if !self.marked[idx] {
                continue;
            }
            self.ops += 1;
            let lbl = f.label(idx as u32);
            for (u, &ql) in self.qlabels.iter().enumerate() {
                self.st.cand[idx * nq + u] = ql == lbl;
            }
        }
        for idx in 0..n {
            if !self.marked[idx] {
                continue;
            }
            for (e, &(_, uc)) in self.qedges.iter().enumerate() {
                self.ops += 1;
                self.st.cnt[e * n + idx] = self.st.succ[idx]
                    .iter()
                    .filter(|&&w| self.st.cand[w as usize * nq + uc as usize])
                    .count() as u32;
            }
        }
        // Seed from affected *local* pairs that lack support. Virtual
        // slots are never seeded locally: their support lives at the
        // owner, which ships falsifications if they die.
        let mut worklist = Vec::new();
        for idx in 0..f.n_local() {
            if !self.marked[idx] {
                continue;
            }
            for u in 0..nq {
                if self.st.cand[idx * nq + u]
                    && self.out_edges[u]
                        .iter()
                        .any(|&e| self.st.cnt[e * n + idx] == 0)
                {
                    self.st.cand[idx * nq + u] = false;
                    worklist.push((u as u16, idx as u32));
                }
            }
        }
        self.in_refine = true;
        let mut falsified = self.propagate(worklist);
        let pending = std::mem::take(&mut self.pending_falsified);
        falsified.extend(self.apply_falsified(pending));
        self.route_falsifications(falsified, out);
    }

    /// Reconciles this run's result against the final candidacy:
    /// deletion-phase revocations that refinement resurrected cancel
    /// out, and resurrections are pairs that are in the relation now
    /// but were not before the batch.
    fn gather(&mut self, out: &mut Outbox<UpdateMsg>) {
        let frag = Arc::clone(&self.frag);
        let f = frag.fragment(self.site);
        let nq = self.st.nq;
        let taken = std::mem::take(&mut self.revoked);
        let was_revoked: std::collections::HashSet<Var> = taken.iter().copied().collect();
        let before = taken.len() as u64;
        let revoked: Vec<Var> = taken
            .into_iter()
            .filter(|var| {
                let idx = f.index_of(var.node_id()).expect("revoked var is local") as usize;
                !self.st.cand[idx * nq + var.q as usize]
            })
            .collect();
        self.stats.pairs_revoked -= before - revoked.len() as u64;
        let mut resurrected = Vec::new();
        if self.phase == SitePhase::Refining {
            for idx in 0..f.n_local() {
                if !self.marked[idx] {
                    continue;
                }
                for u in 0..nq {
                    let slot = idx * nq + u;
                    debug_assert!(
                        self.st.cand[slot] || !self.pre_refine[slot],
                        "refinement falsified a previously-true pair"
                    );
                    if self.st.cand[slot] && !self.pre_refine[slot] {
                        let var = Var {
                            q: u as u16,
                            node: f.global_id(idx as u32).0,
                        };
                        // A pair revoked by this batch's deletions and
                        // revived by its insertions nets out: it never
                        // left the relation.
                        if !was_revoked.contains(&var) {
                            resurrected.push(var);
                        }
                    }
                }
            }
        }
        self.stats.pairs_resurrected += resurrected.len() as u64;
        out.send_result(Endpoint::Coordinator, UpdateMsg::Revoked(revoked));
        if !resurrected.is_empty() {
            out.send_result(Endpoint::Coordinator, UpdateMsg::Resurrected(resurrected));
        }
    }

    fn charge(&mut self, out: &mut Outbox<UpdateMsg>) {
        out.charge_ops(std::mem::take(&mut self.ops));
    }
}

impl SiteLogic<UpdateMsg> for DeltaSiteLogic {
    fn on_start(&mut self, _out: &mut Outbox<UpdateMsg>) {
        // Sites idle until the coordinator routes them ops.
    }

    fn on_message(&mut self, from: Endpoint, msg: UpdateMsg, out: &mut Outbox<UpdateMsg>) {
        match msg {
            UpdateMsg::Ops(pairs) => {
                let mut falsified = Vec::new();
                for (u, v) in pairs {
                    falsified.extend(self.apply_deletion(u, v));
                }
                self.route_falsifications(falsified, out);
            }
            UpdateMsg::Falsified(vars) => {
                if self.phase == SitePhase::Marking {
                    // From a site that is already refining (there is
                    // no cross-channel ordering with the coordinator's
                    // `Refine`). Applying now would be undone by
                    // revival — hold until this site revives too.
                    self.pending_falsified.extend(vars);
                } else {
                    let falsified = self.apply_falsified(vars);
                    self.route_falsifications(falsified, out);
                }
            }
            UpdateMsg::InsOps(pairs) => {
                self.enter_marking();
                self.apply_insertions(pairs, out);
            }
            UpdateMsg::Affected(gids) => {
                self.enter_marking();
                let frag = Arc::clone(&self.frag);
                let f = frag.fragment(self.site);
                let seeds = gids
                    .into_iter()
                    .map(|gid| {
                        f.index_of(NodeId(gid))
                            .expect("affected in-node has a subscribed slot here")
                    })
                    .collect();
                self.mark_from(seeds, out);
            }
            UpdateMsg::CandRow(rows) => {
                self.enter_marking();
                let frag = Arc::clone(&self.frag);
                let f = frag.fragment(self.site);
                let nq = self.st.nq;
                for (gid, qs) in rows {
                    self.ops += 1;
                    let idx = f
                        .index_of(NodeId(gid))
                        .expect("candidacy row targets a subscribed slot")
                        as usize;
                    for u in 0..nq {
                        self.st.cand[idx * nq + u] = false;
                    }
                    for q in qs {
                        self.st.cand[idx * nq + q as usize] = true;
                    }
                }
            }
            UpdateMsg::ShipCand(requests) => {
                debug_assert_eq!(from, Endpoint::Coordinator);
                self.enter_marking();
                let frag = Arc::clone(&self.frag);
                let f = frag.fragment(self.site);
                let nq = self.st.nq;
                let mut per_site: BTreeMap<SiteId, Vec<(u32, Vec<u16>)>> = BTreeMap::new();
                for (dest, gid) in requests {
                    let idx = f.index_of(NodeId(gid)).expect("shipped in-node is local") as usize;
                    let qs: Vec<u16> = (0..nq)
                        .filter(|&u| self.st.cand[idx * nq + u])
                        .map(|u| u as u16)
                        .collect();
                    per_site.entry(dest as usize).or_default().push((gid, qs));
                }
                for (s, rows) in per_site {
                    out.send(Endpoint::Site(s as u32), UpdateMsg::CandRow(rows));
                }
            }
            UpdateMsg::Refine => {
                debug_assert_eq!(from, Endpoint::Coordinator);
                self.refine(out);
            }
            UpdateMsg::GatherRequest => {
                debug_assert_eq!(from, Endpoint::Coordinator);
                self.gather(out);
            }
            UpdateMsg::Revoked(_) | UpdateMsg::Resurrected(_) => {
                unreachable!("sites never receive results")
            }
        }
        self.charge(out);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Deleting,
    Marking,
    Refining,
    Gathering,
    Done,
}

/// Coordinator of one maintenance run: routes the deletion batch,
/// idles through the falsification fixpoint, then (when the batch has
/// insertions) drives marking and refinement through two more
/// quiescence barriers, and finally collects the revoked and
/// resurrected pairs. Insertion-only batches sail through the empty
/// deletion phase; deletion-only batches skip marking and refinement
/// entirely, so their runs cost exactly what they did before
/// insertions were maintainable.
pub struct DeltaCoordinator {
    ops_by_site: Vec<Vec<(u32, u32)>>,
    ins_by_site: Vec<Vec<(u32, u32)>>,
    /// Per owner site: `(dest site, in-node global id)` candidacy
    /// shipments for crossing insertions.
    ship_by_site: Vec<Vec<(u32, u32)>>,
    has_insertions: bool,
    phase: Phase,
    /// Match pairs revoked across all sites (query nodes in the
    /// maintained pattern's numbering, data nodes global).
    pub revoked: Vec<Var>,
    /// Match pairs resurrected across all sites.
    pub resurrected: Vec<Var>,
}

impl DeltaCoordinator {
    fn begin_gather(&mut self, out: &mut Outbox<UpdateMsg>) -> bool {
        for i in 0..out.num_sites() {
            out.send_control(Endpoint::Site(i as u32), UpdateMsg::GatherRequest);
        }
        self.phase = Phase::Gathering;
        if out.num_sites() == 0 {
            self.phase = Phase::Done;
            return true;
        }
        false
    }
}

impl CoordinatorLogic<UpdateMsg> for DeltaCoordinator {
    fn on_start(&mut self, out: &mut Outbox<UpdateMsg>) {
        for (s, ops) in self.ops_by_site.iter_mut().enumerate() {
            if !ops.is_empty() {
                out.send(
                    Endpoint::Site(s as u32),
                    UpdateMsg::Ops(std::mem::take(ops)),
                );
            }
        }
    }

    fn on_message(&mut self, _from: Endpoint, msg: UpdateMsg, out: &mut Outbox<UpdateMsg>) {
        match msg {
            UpdateMsg::Revoked(vars) => {
                out.charge_ops(vars.len() as u64 + 1);
                self.revoked.extend(vars);
            }
            UpdateMsg::Resurrected(vars) => {
                out.charge_ops(vars.len() as u64 + 1);
                self.resurrected.extend(vars);
            }
            _ => unreachable!("coordinator only receives results"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<UpdateMsg>) -> bool {
        match self.phase {
            Phase::Deleting => {
                if !self.has_insertions {
                    return self.begin_gather(out);
                }
                for (s, ops) in self.ins_by_site.iter_mut().enumerate() {
                    if !ops.is_empty() {
                        out.send(
                            Endpoint::Site(s as u32),
                            UpdateMsg::InsOps(std::mem::take(ops)),
                        );
                    }
                }
                for (s, ships) in self.ship_by_site.iter_mut().enumerate() {
                    if !ships.is_empty() {
                        out.send_control(
                            Endpoint::Site(s as u32),
                            UpdateMsg::ShipCand(std::mem::take(ships)),
                        );
                    }
                }
                self.phase = Phase::Marking;
                false
            }
            Phase::Marking => {
                // Every site gets `Refine`: marks spread through
                // `Affected` cascades, so any site may hold part of
                // `AFF` by now.
                for i in 0..out.num_sites() {
                    out.send_control(Endpoint::Site(i as u32), UpdateMsg::Refine);
                }
                self.phase = Phase::Refining;
                false
            }
            Phase::Refining => self.begin_gather(out),
            Phase::Gathering => {
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the actor set for one distributed maintenance run over a
/// batch of `deletions` and `insertions` (either may be empty; the
/// engine guarantees they are disjoint): one [`DeltaSiteLogic`] per
/// site wrapping its persistent [`DeltaSiteState`], plus the routing
/// coordinator. Each op is routed to the site owning its source node;
/// for every *crossing* insertion the coordinator also schedules a
/// [`UpdateMsg::ShipCand`] so the inserting site's fresh (or revived)
/// virtual slot starts from the owner's current candidacy. `frag`
/// must already have the delta applied.
///
/// # Panics
/// Panics if `states.len() != frag.num_sites()`.
pub fn build_maintenance(
    frag: &Arc<Fragmentation>,
    q: &Pattern,
    states: Vec<DeltaSiteState>,
    deletions: &[(NodeId, NodeId)],
    insertions: &[(NodeId, NodeId)],
) -> (DeltaCoordinator, Vec<DeltaSiteLogic>) {
    assert_eq!(
        states.len(),
        frag.num_sites(),
        "one state per site required"
    );
    let mut ops_by_site: Vec<Vec<(u32, u32)>> = vec![Vec::new(); frag.num_sites()];
    for &(u, v) in deletions {
        ops_by_site[frag.owner(u)].push((u.0, v.0));
    }
    let mut ins_by_site: Vec<Vec<(u32, u32)>> = vec![Vec::new(); frag.num_sites()];
    let mut ship_by_site: Vec<Vec<(u32, u32)>> = vec![Vec::new(); frag.num_sites()];
    for &(u, v) in insertions {
        let src = frag.owner(u);
        ins_by_site[src].push((u.0, v.0));
        let dst = frag.owner(v);
        if dst != src {
            ship_by_site[dst].push((src as u32, v.0));
        }
    }
    for ships in &mut ship_by_site {
        ships.sort_unstable();
        ships.dedup();
    }
    let sites = states
        .into_iter()
        .enumerate()
        .map(|(s, st)| DeltaSiteLogic::new(s, Arc::clone(frag), q, st))
        .collect();
    (
        DeltaCoordinator {
            ops_by_site,
            ins_by_site,
            ship_by_site,
            has_insertions: !insertions.is_empty(),
            phase: Phase::Deleting,
            revoked: Vec::new(),
            resurrected: Vec::new(),
        },
        sites,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::GraphBuilder;
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;
    use dgs_sim::hhk_simulation;

    fn rows_of(q: &Pattern, g: &dgs_graph::Graph) -> Vec<Vec<NodeId>> {
        let rel = hhk_simulation(q, g).relation;
        q.nodes().map(|u| rel.matches_of(u).to_vec()).collect()
    }

    fn graph_without(g: &dgs_graph::Graph, deleted: &[(NodeId, NodeId)]) -> dgs_graph::Graph {
        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deleted.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn maintenance_run_matches_recomputation() {
        for seed in 0..6 {
            let n = 80;
            let g = random::uniform(n, 320, 4, seed);
            let q = patterns::random_cyclic(4, 7, 4, seed + 3);
            let assign = hash_partition(n, 3, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
            let rows = rows_of(&q, &g);

            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(12).collect();
            let states: Vec<DeltaSiteState> = (0..3)
                .map(|s| DeltaSiteState::from_relation(&frag, s, &q, &rows))
                .collect();

            // The fragmentation absorbs the delta first (as the engine
            // does), then the maintenance protocol runs.
            let mut frag2 = (*frag).clone();
            frag2.apply_delta(
                &deletions
                    .iter()
                    .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v))
                    .collect::<Vec<_>>(),
            );
            let frag2 = Arc::new(frag2);
            let (coord, sites) = build_maintenance(&frag2, &q, states, &deletions, &[]);
            let o = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);

            // Revoking the reported pairs from the old relation yields
            // the oracle relation on the mutated graph.
            let g2 = graph_without(&g, &deletions);
            let oracle = hhk_simulation(&q, &g2).relation;
            assert!(o.coordinator.resurrected.is_empty());
            let mut rows2 = rows.clone();
            for var in &o.coordinator.revoked {
                let row = &mut rows2[var.q as usize];
                let pos = row
                    .binary_search(&var.node_id())
                    .expect("revoked pair was in the relation");
                row.remove(pos);
            }
            let maintained = dgs_sim::MatchRelation::from_lists(rows2);
            assert_eq!(maintained, oracle, "seed {seed}");
        }
    }

    #[test]
    fn redelivered_deletions_and_falsifications_are_idempotent() {
        use dgs_net::{FaultPlan, VirtualExecutor};
        for seed in 0..4 {
            let n = 70;
            let g = random::uniform(n, 280, 4, seed + 50);
            let q = patterns::random_cyclic(4, 7, 4, seed + 53);
            let assign = hash_partition(n, 4, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
            let rows = rows_of(&q, &g);
            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(10).collect();

            let mut frag2 = (*frag).clone();
            frag2.apply_delta(
                &deletions
                    .iter()
                    .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v))
                    .collect::<Vec<_>>(),
            );
            let frag2 = Arc::new(frag2);

            let run = |faults: Option<FaultPlan>| {
                let states: Vec<DeltaSiteState> = (0..4)
                    .map(|s| DeltaSiteState::from_relation(&frag, s, &q, &rows))
                    .collect();
                let (coord, sites) = build_maintenance(&frag2, &q, states, &deletions, &[]);
                let mut exec = VirtualExecutor::new(CostModel::default());
                if let Some(f) = faults {
                    exec = exec.with_faults(f);
                }
                let o = exec.run(coord, sites);
                let mut revoked = o.coordinator.revoked.clone();
                revoked.sort_unstable();
                let states: Vec<DeltaSiteState> = o
                    .sites
                    .into_iter()
                    .map(DeltaSiteLogic::into_state)
                    .collect();
                (revoked, states, o.metrics)
            };

            let (clean_revoked, clean_states, _) = run(None);
            let (faulty_revoked, faulty_states, m) =
                run(Some(FaultPlan::duplicating(1.0, seed ^ 0xA5)));
            // Every data message (ops batches and falsifications) was
            // re-delivered...
            if m.data_messages > 0 {
                assert_eq!(m.duplicated_messages * 2, m.data_messages, "seed {seed}");
            }
            // ...and neither the revoked set nor any site's counter
            // state changed: deletions and falsifications are
            // idempotent.
            assert_eq!(faulty_revoked, clean_revoked, "seed {seed}");
            assert_eq!(faulty_states, clean_states, "seed {seed}");
        }
    }

    /// Applies a mixed batch via the distributed protocol and checks
    /// the patched rows against the cold oracle on the mutated graph.
    fn check_mixed_maintenance(
        seed: u64,
        n: usize,
        sites: usize,
        deletions: &[(NodeId, NodeId)],
        insertions: &[(NodeId, NodeId)],
        g: &dgs_graph::Graph,
        q: &Pattern,
    ) {
        let assign = hash_partition(n, sites, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, sites));
        let rows = rows_of(q, g);
        let states: Vec<DeltaSiteState> = (0..sites)
            .map(|s| DeltaSiteState::from_relation(&frag, s, q, &rows))
            .collect();

        let mut ops: Vec<dgs_partition::EdgeOp> = insertions
            .iter()
            .map(|&(u, v)| dgs_partition::EdgeOp::Insert(u, v))
            .collect();
        ops.extend(
            deletions
                .iter()
                .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v)),
        );
        let mut frag2 = (*frag).clone();
        frag2.apply_delta(&ops);
        let frag2 = Arc::new(frag2);
        let (coord, site_logic) = build_maintenance(&frag2, q, states, deletions, insertions);
        let o = dgs_net::run(
            ExecutorKind::Virtual,
            &CostModel::default(),
            coord,
            site_logic,
        );

        let mut b = GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deletions.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in insertions {
            b.add_edge(u, v);
        }
        let oracle = hhk_simulation(q, &b.build()).relation;

        let mut rows2 = rows.clone();
        for var in &o.coordinator.revoked {
            let row = &mut rows2[var.q as usize];
            let pos = row
                .binary_search(&var.node_id())
                .expect("revoked pair was in the relation");
            row.remove(pos);
        }
        for var in &o.coordinator.resurrected {
            let row = &mut rows2[var.q as usize];
            let pos = row
                .binary_search(&var.node_id())
                .expect_err("resurrected pair was not in the relation");
            row.insert(pos, var.node_id());
        }
        let maintained = dgs_sim::MatchRelation::from_lists(rows2);
        assert_eq!(maintained, oracle, "seed {seed}");
    }

    #[test]
    fn insertion_only_run_matches_recomputation() {
        for seed in 0..6 {
            let n = 60;
            let g = random::uniform(n, 180, 4, seed + 20);
            let q = patterns::random_cyclic(4, 7, 4, seed + 23);
            let present: std::collections::HashSet<(NodeId, NodeId)> = g.edges().collect();
            let mut insertions = Vec::new();
            'outer: for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let e = (NodeId(u), NodeId((v * 7 + u) % n as u32));
                    if e.0 != e.1 && !present.contains(&e) && !insertions.contains(&e) {
                        insertions.push(e);
                        if insertions.len() == 12 {
                            break 'outer;
                        }
                    }
                }
            }
            check_mixed_maintenance(seed, n, 3, &[], &insertions, &g, &q);
        }
    }

    #[test]
    fn mixed_run_matches_recomputation() {
        for seed in 0..6 {
            let n = 60;
            let g = random::uniform(n, 200, 4, seed + 40);
            let q = patterns::random_cyclic(4, 7, 4, seed + 43);
            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(8).collect();
            let present: std::collections::HashSet<(NodeId, NodeId)> = g.edges().collect();
            let mut insertions = Vec::new();
            'outer: for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let e = (NodeId((u * 13 + 5) % n as u32), NodeId(v));
                    if e.0 != e.1 && !present.contains(&e) && !insertions.contains(&e) {
                        insertions.push(e);
                        if insertions.len() == 8 {
                            break 'outer;
                        }
                    }
                }
            }
            check_mixed_maintenance(seed, n, 4, &deletions, &insertions, &g, &q);
        }
    }

    #[test]
    fn ring_mend_resurrects_across_sites() {
        // Distributed sibling of the centralized ring-mend test: the
        // adversarial cycle spans sites round-robin, the closing edge
        // is deleted (killing every pair) and re-inserted in a later
        // batch — the refinement must revive the mutually-supporting
        // pairs through cross-site Affected/Falsified traffic.
        use dgs_graph::generate::adversarial;
        let n = 12;
        let q = adversarial::q0();
        let g = adversarial::cycle_graph(n);
        let closing = (adversarial::b_node(n), adversarial::a_node(1));
        let g2 = graph_without(&g, &[closing]);
        check_mixed_maintenance(7, g.node_count(), 3, &[], &[closing], &g2, &q);
    }

    #[test]
    fn redelivered_insertion_traffic_is_idempotent() {
        use dgs_net::{FaultPlan, VirtualExecutor};
        for seed in 0..4 {
            let n = 50;
            let g = random::uniform(n, 160, 4, seed + 70);
            let q = patterns::random_cyclic(4, 7, 4, seed + 73);
            let assign = hash_partition(n, 4, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
            let rows = rows_of(&q, &g);
            let deletions: Vec<(NodeId, NodeId)> = g.edges().take(6).collect();
            let present: std::collections::HashSet<(NodeId, NodeId)> = g.edges().collect();
            let mut insertions = Vec::new();
            'outer: for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let e = (NodeId(u), NodeId(v));
                    if u != v
                        && !present.contains(&e)
                        && !insertions.contains(&e)
                        && frag.owner(e.0) != frag.owner(e.1)
                    {
                        insertions.push(e);
                        if insertions.len() == 6 {
                            break 'outer;
                        }
                    }
                }
            }

            let mut ops: Vec<dgs_partition::EdgeOp> = insertions
                .iter()
                .map(|&(u, v)| dgs_partition::EdgeOp::Insert(u, v))
                .collect();
            ops.extend(
                deletions
                    .iter()
                    .map(|&(u, v)| dgs_partition::EdgeOp::Delete(u, v)),
            );
            let mut frag2 = (*frag).clone();
            frag2.apply_delta(&ops);
            let frag2 = Arc::new(frag2);

            let run = |faults: Option<FaultPlan>| {
                let states: Vec<DeltaSiteState> = (0..4)
                    .map(|s| DeltaSiteState::from_relation(&frag, s, &q, &rows))
                    .collect();
                let (coord, sites) = build_maintenance(&frag2, &q, states, &deletions, &insertions);
                let mut exec = VirtualExecutor::new(CostModel::default());
                if let Some(f) = faults {
                    exec = exec.with_faults(f);
                }
                let o = exec.run(coord, sites);
                let mut revoked = o.coordinator.revoked.clone();
                revoked.sort_unstable();
                let mut resurrected = o.coordinator.resurrected.clone();
                resurrected.sort_unstable();
                let states: Vec<DeltaSiteState> = o
                    .sites
                    .into_iter()
                    .map(DeltaSiteLogic::into_state)
                    .collect();
                (revoked, resurrected, states, o.metrics)
            };

            let (clean_rev, clean_res, clean_states, _) = run(None);
            let (faulty_rev, faulty_res, faulty_states, m) =
                run(Some(FaultPlan::duplicating(1.0, seed ^ 0x5A)));
            // Every data message (ops, insertions, falsifications,
            // marks, and candidacy rows) was re-delivered...
            if m.data_messages > 0 {
                assert_eq!(m.duplicated_messages * 2, m.data_messages, "seed {seed}");
            }
            // ...and nothing observable changed: the whole insertion
            // path is idempotent.
            assert_eq!(faulty_rev, clean_rev, "seed {seed}");
            assert_eq!(faulty_res, clean_res, "seed {seed}");
            assert_eq!(faulty_states, clean_states, "seed {seed}");
        }
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(UpdateMsg::GatherRequest.wire_size(), 1);
        assert_eq!(UpdateMsg::Refine.wire_size(), 1);
        assert_eq!(UpdateMsg::Ops(vec![(1, 2), (3, 4)]).wire_size(), 1 + 4 + 16);
        assert_eq!(UpdateMsg::InsOps(vec![(1, 2)]).wire_size(), 1 + 4 + 8);
        assert_eq!(UpdateMsg::ShipCand(vec![(0, 9)]).wire_size(), 1 + 4 + 8);
        assert_eq!(UpdateMsg::Affected(vec![1, 2, 3]).wire_size(), 1 + 4 + 12);
        assert_eq!(
            UpdateMsg::CandRow(vec![(4, vec![0, 2])]).wire_size(),
            1 + 4 + (4 + 2 + 4)
        );
        let v = vec![Var { q: 0, node: 7 }];
        assert_eq!(UpdateMsg::Falsified(v.clone()).wire_size(), 1 + 4 + 6);
        assert_eq!(UpdateMsg::Revoked(v.clone()).wire_size(), 1 + 4 + 6);
        assert_eq!(UpdateMsg::Resurrected(v).wire_size(), 1 + 4 + 6);
    }

    #[test]
    fn delta_helpers() {
        let d = GraphDelta::deletions([(NodeId(0), NodeId(1))]);
        assert!(d.insert_edges.is_empty());
        assert_eq!(d.op_count(), 1);
        assert!(!d.is_empty());
        let i = GraphDelta::insertions([(NodeId(1), NodeId(0))]);
        assert!(i.delete_edges.is_empty());
        assert!(GraphDelta::default().is_empty());
    }
}
