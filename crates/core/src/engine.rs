//! `SimEngine`: the session-oriented query API.
//!
//! The old [`crate::api::DistributedSim`] rebuilt every structural
//! check per call and panicked on inapplicable engines. A `SimEngine`
//! is instead **built once** over a loaded graph + fragmentation —
//! paying for the planner's structural facts (DAG-ness, rooted-tree
//! check, fragment connectivity, SCC condensation) a single time —
//! and then serves many queries:
//!
//! ```
//! use dgs_core::{Algorithm, SimEngine};
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//!
//! // The planner picks an applicable engine and explains itself.
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! assert_eq!(report.answer().len(), 11);
//! println!("plan: {}", report.plan);
//! ```
//!
//! Queries return `Result<_, DgsError>` — the query path never
//! panics. Batches ([`SimEngine::query_batch`]) amortize the query
//! broadcast: one posting of the whole batch to each site instead of
//! one per query.

use crate::dgpm::{self, DgpmConfig, QueryMode};
use crate::error::DgsError;
use crate::plan::{EngineChoice, GraphFacts, PatternFacts, PlanExplanation, Planner};
use crate::{baselines, dgpmd, dgpms, dgpmt};
use dgs_graph::{Graph, Pattern};
use dgs_net::{CostModel, ExecutorKind, RunMetrics};
use dgs_partition::Fragmentation;
use dgs_sim::MatchRelation;
use std::sync::Arc;

/// Which engine to run.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// Let the planner pick from the cached structural facts.
    Auto,
    /// `dGPM` with the given configuration (§4).
    Dgpm(DgpmConfig),
    /// `dGPMd` for DAG patterns or DAG graphs (§5.1).
    Dgpmd,
    /// `dGPMs`: SCC-stratified batched shipping for arbitrary
    /// (cyclic) patterns — this repository's extension of `dGPMd`.
    Dgpms,
    /// `dGPMt` for trees with connected fragments (§5.2).
    Dgpmt,
    /// `Match`: ship everything to one site (§3.1).
    MatchCentral,
    /// `disHHK` \[25\].
    DisHhk,
    /// `dMes`: vertex-centric supersteps (§6 / \[14\]).
    DMes,
}

impl Algorithm {
    /// The paper's `dGPM` (incremental + push, θ = 0.2).
    pub fn dgpm() -> Self {
        Algorithm::Dgpm(DgpmConfig::optimized())
    }

    /// The paper's `dGPMNOpt`.
    pub fn dgpm_nopt() -> Self {
        Algorithm::Dgpm(DgpmConfig::no_opt())
    }

    /// `dGPM` with incremental evaluation but no push (ablation).
    pub fn dgpm_incremental_only() -> Self {
        Algorithm::Dgpm(DgpmConfig::incremental_only())
    }

    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "Auto",
            Algorithm::Dgpm(cfg) => dgpm_display_name(cfg),
            Algorithm::Dgpmd => EngineChoice::Dgpmd.name(),
            Algorithm::Dgpms => EngineChoice::Dgpms.name(),
            Algorithm::Dgpmt => EngineChoice::Dgpmt.name(),
            Algorithm::MatchCentral => "Match",
            Algorithm::DisHhk => "disHHK",
            Algorithm::DMes => "dMes",
        }
    }
}

/// The one display-name table for `dGPM` configuration variants,
/// shared by [`Algorithm::name`] and the resolved-engine names.
fn dgpm_display_name(cfg: &DgpmConfig) -> &'static str {
    if !cfg.incremental {
        "dGPMNOpt"
    } else if cfg.push_threshold.is_none() {
        "dGPM-nopush"
    } else {
        "dGPM"
    }
}

/// Result of one data-selecting query.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The maximum relation under the child condition.
    pub relation: MatchRelation,
    /// The Boolean query answer (`relation.is_total()`).
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
    /// `∅`-of-`|Vq|` storage for [`answer`](Self::answer) when the
    /// query does not match; `None` when `answer` can alias
    /// `relation`.
    empty: Option<MatchRelation>,
}

impl RunReport {
    pub(crate) fn assemble(
        relation: MatchRelation,
        metrics: RunMetrics,
        algorithm: &'static str,
        plan: PlanExplanation,
    ) -> Self {
        let is_match = relation.is_total();
        let empty = if is_match || relation.is_empty() {
            None
        } else {
            Some(MatchRelation::empty(relation.query_nodes()))
        };
        RunReport {
            relation,
            is_match,
            metrics,
            algorithm,
            plan,
            empty,
        }
    }

    /// `Q(G)` with the paper's convention: the full relation on a
    /// match, `∅` when some query node has no match. A borrow — the
    /// relation is never cloned.
    pub fn answer(&self) -> &MatchRelation {
        self.empty.as_ref().unwrap_or(&self.relation)
    }
}

/// Result of one Boolean query (§2.1).
#[derive(Clone, Debug)]
pub struct BooleanReport {
    /// Whether `G` matches `Q`.
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
}

/// Result of a [`SimEngine::query_batch`] run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in input order. Each successful report
    /// carries its own engine-run metrics (without the broadcast,
    /// which the batch amortizes).
    pub reports: Vec<Result<RunReport, DgsError>>,
    /// Aggregate metrics: the sum of all per-query runs plus **one**
    /// batched query broadcast (`|F|` control messages carrying every
    /// pattern), instead of one broadcast per query.
    pub total: RunMetrics,
}

impl BatchReport {
    /// Number of queries that were answered.
    pub fn succeeded(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }
}

/// Builder for [`SimEngine`]; see [`SimEngine::builder`].
pub struct SimEngineBuilder<'g> {
    graph: &'g Graph,
    frag: Arc<Fragmentation>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
}

impl SimEngineBuilder<'_> {
    /// Which executor drives the protocols (default: deterministic
    /// virtual time).
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The virtual-time cost model (default: EC2-like).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the planner (e.g. to change the cyclic fallback).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Computes the structural facts and finalizes the engine. This is
    /// the once-per-session cost: `O(|V| + |E|)` for DAG-ness, the
    /// rooted-tree check, fragment connectivity and the SCC
    /// condensation.
    pub fn build(self) -> SimEngine {
        let facts = GraphFacts::compute(self.graph, &self.frag);
        SimEngine {
            frag: self.frag,
            executor: self.executor,
            cost: self.cost,
            planner: self.planner,
            facts,
        }
    }
}

/// An engine the planner resolved a query to (explicit choices
/// included, so the run path is uniform).
enum Resolved {
    Dgpm(DgpmConfig),
    Dgpmd,
    Dgpms,
    Dgpmt,
    MatchCentral,
    DisHhk,
    DMes,
    /// Answer `∅` with no distributed work (§5.1's cyclic-pattern
    /// short-circuit).
    TriviallyEmpty,
}

impl Resolved {
    fn name(&self) -> &'static str {
        match self {
            Resolved::Dgpm(cfg) => dgpm_display_name(cfg),
            Resolved::Dgpmd => EngineChoice::Dgpmd.name(),
            Resolved::Dgpms => EngineChoice::Dgpms.name(),
            Resolved::Dgpmt => EngineChoice::Dgpmt.name(),
            Resolved::MatchCentral => Algorithm::MatchCentral.name(),
            Resolved::DisHhk => Algorithm::DisHhk.name(),
            Resolved::DMes => Algorithm::DMes.name(),
            Resolved::TriviallyEmpty => EngineChoice::TriviallyEmpty.name(),
        }
    }
}

/// A session over one fragmented graph: build once, query many times.
#[derive(Clone, Debug)]
pub struct SimEngine {
    frag: Arc<Fragmentation>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
    facts: GraphFacts,
}

impl SimEngine {
    /// Starts building an engine over `graph` fragmented as `frag`.
    /// The graph is only read during [`SimEngineBuilder::build`] (for
    /// the structural facts); the engine itself holds the
    /// fragmentation.
    pub fn builder(graph: &Graph, frag: Arc<Fragmentation>) -> SimEngineBuilder<'_> {
        SimEngineBuilder {
            graph,
            frag,
            executor: ExecutorKind::Virtual,
            cost: CostModel::default(),
            planner: Planner::default(),
        }
    }

    /// The cached structural facts the planner uses.
    pub fn facts(&self) -> &GraphFacts {
        &self.facts
    }

    /// The fragmentation this engine serves.
    pub fn fragmentation(&self) -> &Arc<Fragmentation> {
        &self.frag
    }

    /// Plans `q` without running it: which engine would serve it, and
    /// why.
    pub fn plan(&self, q: &Pattern) -> Result<PlanExplanation, DgsError> {
        let qf = PatternFacts::compute(q);
        self.planner.plan(&self.facts, &qf).map(|(_, plan)| plan)
    }

    /// Runs `q` with the planner-chosen engine.
    pub fn query(&self, q: &Pattern) -> Result<RunReport, DgsError> {
        self.query_with(&Algorithm::Auto, q)
    }

    /// Runs `q` with an explicit engine (checked, not asserted).
    pub fn query_with(&self, algorithm: &Algorithm, q: &Pattern) -> Result<RunReport, DgsError> {
        let (resolved, plan) = self.resolve(algorithm, q)?;
        let qa = Arc::new(q.clone());
        let (relation, mut metrics) = self.run_resolved(&resolved, &qa)?;
        Self::charge_broadcast(&mut metrics, &self.frag, std::iter::once(q));
        Ok(RunReport::assemble(
            relation,
            metrics,
            resolved.name(),
            plan,
        ))
    }

    /// Runs a Boolean query (§2.1) with the planner-chosen engine.
    ///
    /// For the `dGPM` family this uses the dedicated Boolean gather
    /// path (`O(|F|)` bytes of result traffic, §4.1); other engines
    /// run normally and reduce their relation.
    pub fn query_boolean(&self, q: &Pattern) -> Result<BooleanReport, DgsError> {
        self.query_boolean_with(&Algorithm::Auto, q)
    }

    /// Boolean query with an explicit engine.
    pub fn query_boolean_with(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<BooleanReport, DgsError> {
        let (resolved, plan) = self.resolve(algorithm, q)?;
        let qa = Arc::new(q.clone());
        let (is_match, mut metrics) = match &resolved {
            Resolved::TriviallyEmpty => (false, RunMetrics::default()),
            Resolved::Dgpm(cfg) => {
                let (coord, sites) =
                    dgpm::build_with_mode(&self.frag, &qa, cfg.clone(), QueryMode::Boolean);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                let b = o
                    .coordinator
                    .boolean
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without a Boolean verdict".into(),
                    })?;
                (b, o.metrics)
            }
            other => {
                let (relation, metrics) = self.run_resolved(other, &qa)?;
                (relation.is_total(), metrics)
            }
        };
        // Same uniform accounting as `query` — the Boolean path used
        // to skip the query broadcast.
        Self::charge_broadcast(&mut metrics, &self.frag, std::iter::once(q));
        Ok(BooleanReport {
            is_match,
            metrics,
            algorithm: resolved.name(),
            plan,
        })
    }

    /// Runs many queries against the session, amortizing the query
    /// broadcast: the whole batch is posted to each site once (`|F|`
    /// control messages total), instead of `|F|` per query. Per-query
    /// reports keep their own engine-run metrics; `total` adds the
    /// batched broadcast.
    pub fn query_batch(&self, patterns: &[Pattern]) -> BatchReport {
        self.query_batch_with(&Algorithm::Auto, patterns)
    }

    /// Batched run with an explicit engine.
    pub fn query_batch_with(&self, algorithm: &Algorithm, patterns: &[Pattern]) -> BatchReport {
        let mut total = RunMetrics::default();
        let mut reports = Vec::with_capacity(patterns.len());
        for q in patterns {
            let report = self.resolve(algorithm, q).and_then(|(resolved, plan)| {
                let qa = Arc::new(q.clone());
                let (relation, metrics) = self.run_resolved(&resolved, &qa)?;
                Ok(RunReport::assemble(
                    relation,
                    metrics,
                    resolved.name(),
                    plan,
                ))
            });
            if let Ok(r) = &report {
                total.merge(&r.metrics);
            }
            reports.push(report);
        }
        // Only the patterns that actually ran are posted to the sites.
        let posted: Vec<&Pattern> = patterns
            .iter()
            .zip(&reports)
            .filter(|(_, r)| r.is_ok())
            .map(|(q, _)| q)
            .collect();
        if !posted.is_empty() {
            Self::charge_broadcast(&mut total, &self.frag, posted.iter().copied());
        }
        BatchReport { reports, total }
    }

    /// Resolves `algorithm` for `q`: the planner decides for
    /// [`Algorithm::Auto`]; explicit requests are checked against the
    /// cached facts (the old API `assert!`ed these).
    fn resolve(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<(Resolved, PlanExplanation), DgsError> {
        let qf = PatternFacts::compute(q);
        match algorithm {
            Algorithm::Auto => {
                let (choice, plan) = self.planner.plan(&self.facts, &qf)?;
                let resolved = match choice {
                    EngineChoice::Dgpmt => Resolved::Dgpmt,
                    EngineChoice::Dgpmd => Resolved::Dgpmd,
                    EngineChoice::Dgpms => Resolved::Dgpms,
                    EngineChoice::Dgpm => Resolved::Dgpm(DgpmConfig::optimized()),
                    EngineChoice::TriviallyEmpty => Resolved::TriviallyEmpty,
                };
                Ok((resolved, plan))
            }
            Algorithm::Dgpm(cfg) => {
                self.planner.validate_pattern(&qf)?;
                let r = Resolved::Dgpm(cfg.clone());
                let plan = PlanExplanation::forced(r.name());
                Ok((r, plan))
            }
            Algorithm::Dgpmd => {
                if !qf.is_dag && self.facts.is_dag {
                    // §5.1: a cyclic pattern on a DAG graph can never
                    // match — no distributed work needed.
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons.push(
                        "dGPMd requested with a cyclic pattern on an acyclic graph: Q(G) = ∅"
                            .into(),
                    );
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                self.planner
                    .check_explicit(EngineChoice::Dgpmd, &self.facts, &qf)?;
                Ok((Resolved::Dgpmd, PlanExplanation::forced("dGPMd")))
            }
            Algorithm::Dgpms => {
                self.planner
                    .check_explicit(EngineChoice::Dgpms, &self.facts, &qf)?;
                Ok((Resolved::Dgpms, PlanExplanation::forced("dGPMs")))
            }
            Algorithm::Dgpmt => {
                self.planner
                    .check_explicit(EngineChoice::Dgpmt, &self.facts, &qf)?;
                if !qf.is_dag {
                    // Tree graphs are acyclic, so a cyclic pattern is
                    // trivially unmatched (and the tree protocol only
                    // schedules DAG patterns).
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons
                        .push("dGPMt requested with a cyclic pattern on a tree: Q(G) = ∅".into());
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                Ok((Resolved::Dgpmt, PlanExplanation::forced("dGPMt")))
            }
            Algorithm::MatchCentral => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::MatchCentral, PlanExplanation::forced("Match")))
            }
            Algorithm::DisHhk => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DisHhk, PlanExplanation::forced("disHHK")))
            }
            Algorithm::DMes => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DMes, PlanExplanation::forced("dMes")))
            }
        }
    }

    /// Runs a resolved engine and returns `(relation, metrics)`.
    fn run_resolved(
        &self,
        resolved: &Resolved,
        q: &Arc<Pattern>,
    ) -> Result<(MatchRelation, RunMetrics), DgsError> {
        // One shape per engine: build the actors, run them, take the
        // coordinator's answer.
        macro_rules! drive {
            ($build:expr) => {{
                let (coord, sites) = $build;
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                let answer = o
                    .coordinator
                    .answer
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without an answer".into(),
                    })?;
                Ok((answer, o.metrics))
            }};
        }
        match resolved {
            Resolved::TriviallyEmpty => {
                Ok((MatchRelation::empty(q.node_count()), RunMetrics::default()))
            }
            Resolved::Dgpm(cfg) => drive!(dgpm::build(&self.frag, q, cfg.clone())),
            Resolved::Dgpmd => drive!(dgpmd::build(&self.frag, q)),
            Resolved::Dgpms => drive!(dgpms::build(&self.frag, q)),
            Resolved::Dgpmt => drive!(dgpmt::build(&self.frag, q)),
            Resolved::MatchCentral => drive!(baselines::match_central::build(&self.frag, q)),
            Resolved::DisHhk => drive!(baselines::dishhk::build(&self.frag, q)),
            Resolved::DMes => drive!(baselines::dmes::build(&self.frag, q)),
        }
    }

    /// Accounts the query broadcast (Sc posts the patterns to each
    /// site): `|F|` control messages of `Σ ~|Qi|` bytes each. Applied
    /// uniformly to **every** query path — data-selecting, Boolean,
    /// and trivially-empty runs alike (the old API skipped it on the
    /// latter two).
    fn charge_broadcast<'a>(
        metrics: &mut RunMetrics,
        frag: &Fragmentation,
        patterns: impl IntoIterator<Item = &'a Pattern>,
    ) {
        let q_bytes: usize = patterns
            .into_iter()
            .map(|q| 8 + 3 * q.node_count() + 4 * q.edge_count())
            .sum();
        metrics.control_messages += frag.num_sites() as u64;
        metrics.control_bytes += (frag.num_sites() * q_bytes) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{dag, patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};
    use dgs_sim::hhk_simulation;

    fn engine_for(g: &Graph, k: usize, seed: u64) -> SimEngine {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        SimEngine::builder(g, frag).build()
    }

    #[test]
    fn auto_picks_dgpmt_on_trees_and_agrees_with_oracle() {
        let g = tree::random_tree(200, 4, 4);
        let assign = tree_partition(&g, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMt");
        assert!(report.plan.auto);
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_picks_dgpmd_on_dags_and_agrees_with_oracle() {
        let g = dag::citation_like(300, 700, 5, 7);
        let engine = engine_for(&g, 3, 7);
        let q = patterns::random_dag_with_depth(4, 6, 2, 5, 7);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMd");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_handles_cyclic_workloads_and_agrees_with_oracle() {
        let g = random::uniform(120, 500, 4, 8);
        let engine = engine_for(&g, 3, 8);
        let q = patterns::random_cyclic(3, 6, 4, 8);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMs");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_short_circuits_cyclic_pattern_on_dag() {
        let g = dag::citation_like(100, 250, 4, 1);
        let engine = engine_for(&g, 3, 1);
        let q = patterns::random_cyclic(3, 5, 4, 1);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "trivial-∅");
        assert!(!report.is_match);
        assert!(report.answer().is_empty());
        assert_eq!(report.metrics.data_bytes, 0);
        // The uniform broadcast accounting still posts Q to the sites.
        assert_eq!(report.metrics.control_messages, 3);
    }

    #[test]
    fn explicit_engines_error_instead_of_panicking() {
        let g = random::uniform(50, 200, 4, 2);
        let engine = engine_for(&g, 2, 2);
        let q = patterns::random_cyclic(3, 5, 4, 2);
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmd, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMd",
                ..
            })
        ));
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmt, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMt",
                ..
            })
        ));
        // The engine session stays usable after a bad query.
        assert!(engine.query(&q).is_ok());
    }

    #[test]
    fn answer_borrows_instead_of_cloning() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
        // On a match the answer aliases the relation.
        assert!(std::ptr::eq(report.answer(), &report.relation));
        assert_eq!(report.answer().len(), 11);
    }

    #[test]
    fn boolean_charges_broadcast_uniformly() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let q = &w.pattern;
        let b = engine
            .query_boolean_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(b.is_match);
        // The Boolean path used to skip the |F|-message broadcast the
        // data-selecting path charges; both paths now include it.
        let broadcast_bytes = (3 * (8 + 3 * q.node_count() + 4 * q.edge_count())) as u64;
        assert!(b.metrics.control_messages >= 3);
        assert!(b.metrics.control_bytes >= broadcast_bytes);
        let full = engine
            .query_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(full.metrics.control_messages >= 3);
        assert!(full.metrics.control_bytes >= broadcast_bytes);
    }

    #[test]
    fn batch_amortizes_the_broadcast() {
        let g = random::uniform(150, 600, 4, 9);
        let engine = engine_for(&g, 5, 9);
        let patterns: Vec<Pattern> = (0..10)
            .map(|i| patterns::random_cyclic(3, 6, 4, 100 + i))
            .collect();
        let batch = engine.query_batch(&patterns);
        assert_eq!(batch.reports.len(), 10);
        assert_eq!(batch.succeeded(), 10);
        for r in &batch.reports {
            let r = r.as_ref().unwrap();
            // Per-query metrics are present and broadcast-free.
            assert!(r.metrics.total_ops > 0);
        }
        // One broadcast for the whole batch...
        let singles: u64 = patterns
            .iter()
            .map(|q| engine.query(q).unwrap().metrics.control_messages)
            .sum();
        // ... so total control messages are |F| * (B - 1) lower than
        // B separate queries.
        assert_eq!(
            batch.total.control_messages,
            singles - 5 * (patterns.len() as u64 - 1)
        );
        // Same answers either way.
        for (r, q) in batch.reports.iter().zip(&patterns) {
            assert_eq!(
                r.as_ref().unwrap().relation,
                engine.query(q).unwrap().relation
            );
        }
    }

    #[test]
    fn batch_isolates_failures() {
        let g = random::uniform(60, 240, 4, 10);
        let engine = engine_for(&g, 2, 10);
        let good = patterns::random_cyclic(3, 5, 4, 10);
        let bad = dgs_graph::PatternBuilder::new().build();
        let batch = engine.query_batch_with(&Algorithm::Auto, &[good.clone(), bad, good]);
        assert_eq!(batch.succeeded(), 2);
        assert!(matches!(
            batch.reports[1],
            Err(DgsError::InvalidPattern { .. })
        ));
    }

    #[test]
    fn threaded_executor_through_the_builder() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag)
            .executor(ExecutorKind::Threaded)
            .build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
    }

    #[test]
    fn plan_is_a_dry_run() {
        let g = tree::random_tree(80, 3, 11);
        let assign = tree_partition(&g, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.algorithm, "dGPMt");
        assert!(plan.to_string().contains("auto"));
    }
}
