//! `SimEngine`: the session-oriented query API.
//!
//! The old [`crate::api::DistributedSim`] rebuilt every structural
//! check per call and panicked on inapplicable engines. A `SimEngine`
//! is instead **built once** over a loaded graph + fragmentation —
//! paying for the planner's structural facts (DAG-ness, rooted-tree
//! check, fragment connectivity, SCC condensation) a single time —
//! and then serves many queries:
//!
//! ```
//! use dgs_core::{Algorithm, SimEngine};
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//!
//! // The planner picks an applicable engine and explains itself.
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! assert_eq!(report.answer().len(), 11);
//! println!("plan: {}", report.plan);
//! ```
//!
//! Queries return `Result<_, DgsError>` — the query path never
//! panics. Batches ([`SimEngine::query_batch`]) amortize the query
//! broadcast: one posting of the whole batch to each site instead of
//! one per query.
//!
//! ## Serving mode
//!
//! `SimEngine` is `Send + Sync`: one engine can be shared across
//! threads (or cloned — clones share the same cache) and serve
//! concurrent traffic. Three serving features stack on the session:
//!
//! * **Parallel batches** — [`SimEngine::query_batch`] fans the batch
//!   out over a scoped worker pool (`min(cores, batch_len)` workers by
//!   default, [`SimEngineBuilder::batch_workers`] to override) and
//!   merges per-query metrics in input order, so batch reports are
//!   identical regardless of scheduling.
//! * **Pattern-result cache** — [`Algorithm::Auto`] answers are cached
//!   under a canonical pattern form (label-preserving renumbering, so
//!   isomorphic re-submissions hit). A hit records
//!   `metrics.cache_hits = 1` and **zero** messages. See
//!   [`SimEngineBuilder::cache`] / [`SimEngineBuilder::cache_capacity`].
//! * **Compression-backed plans** — [`SimEngineBuilder::compress`]
//!   builds the query-preserving quotient `Gc` (Fan et al., SIGMOD'12)
//!   at session build time; when its ratio clears
//!   [`SimEngineBuilder::compression_threshold`], `Auto` queries run on
//!   `Gc` and the relation is decompressed back to `G`'s node ids,
//!   with the leg recorded in [`PlanExplanation::compressed`].

use crate::cache::{self, CacheStats, CachedResult, CanonicalPattern, PatternCache};
use crate::dgpm::{self, DgpmConfig, QueryMode};
use crate::error::DgsError;
use crate::plan::{
    CompressedNote, EngineChoice, GraphFacts, PatternFacts, PlanExplanation, Planner,
};
use crate::{baselines, dgpmd, dgpms, dgpmt};
use dgs_graph::{Graph, Pattern};
use dgs_net::{CostModel, ExecutorKind, RunMetrics};
use dgs_partition::Fragmentation;
use dgs_sim::{compress_bisim, compress_simeq, CompressedGraph, MatchRelation};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which engine to run.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// Let the planner pick from the cached structural facts.
    Auto,
    /// `dGPM` with the given configuration (§4).
    Dgpm(DgpmConfig),
    /// `dGPMd` for DAG patterns or DAG graphs (§5.1).
    Dgpmd,
    /// `dGPMs`: SCC-stratified batched shipping for arbitrary
    /// (cyclic) patterns — this repository's extension of `dGPMd`.
    Dgpms,
    /// `dGPMt` for trees with connected fragments (§5.2).
    Dgpmt,
    /// `Match`: ship everything to one site (§3.1).
    MatchCentral,
    /// `disHHK` \[25\].
    DisHhk,
    /// `dMes`: vertex-centric supersteps (§6 / \[14\]).
    DMes,
}

impl Algorithm {
    /// The paper's `dGPM` (incremental + push, θ = 0.2).
    pub fn dgpm() -> Self {
        Algorithm::Dgpm(DgpmConfig::optimized())
    }

    /// The paper's `dGPMNOpt`.
    pub fn dgpm_nopt() -> Self {
        Algorithm::Dgpm(DgpmConfig::no_opt())
    }

    /// `dGPM` with incremental evaluation but no push (ablation).
    pub fn dgpm_incremental_only() -> Self {
        Algorithm::Dgpm(DgpmConfig::incremental_only())
    }

    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "Auto",
            Algorithm::Dgpm(cfg) => dgpm_display_name(cfg),
            Algorithm::Dgpmd => EngineChoice::Dgpmd.name(),
            Algorithm::Dgpms => EngineChoice::Dgpms.name(),
            Algorithm::Dgpmt => EngineChoice::Dgpmt.name(),
            Algorithm::MatchCentral => "Match",
            Algorithm::DisHhk => "disHHK",
            Algorithm::DMes => "dMes",
        }
    }
}

/// The one display-name table for `dGPM` configuration variants,
/// shared by [`Algorithm::name`] and the resolved-engine names.
fn dgpm_display_name(cfg: &DgpmConfig) -> &'static str {
    if !cfg.incremental {
        "dGPMNOpt"
    } else if cfg.push_threshold.is_none() {
        "dGPM-nopush"
    } else {
        "dGPM"
    }
}

/// Result of one data-selecting query.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The maximum relation under the child condition.
    pub relation: MatchRelation,
    /// The Boolean query answer (`relation.is_total()`).
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
    /// `∅`-of-`|Vq|` storage for [`answer`](Self::answer) when the
    /// query does not match; `None` when `answer` can alias
    /// `relation`.
    empty: Option<MatchRelation>,
}

impl RunReport {
    pub(crate) fn assemble(
        relation: MatchRelation,
        metrics: RunMetrics,
        algorithm: &'static str,
        plan: PlanExplanation,
    ) -> Self {
        let is_match = relation.is_total();
        let empty = if is_match || relation.is_empty() {
            None
        } else {
            Some(MatchRelation::empty(relation.query_nodes()))
        };
        RunReport {
            relation,
            is_match,
            metrics,
            algorithm,
            plan,
            empty,
        }
    }

    /// `Q(G)` with the paper's convention: the full relation on a
    /// match, `∅` when some query node has no match. A borrow — the
    /// relation is never cloned.
    pub fn answer(&self) -> &MatchRelation {
        self.empty.as_ref().unwrap_or(&self.relation)
    }
}

/// Result of one Boolean query (§2.1).
#[derive(Clone, Debug)]
pub struct BooleanReport {
    /// Whether `G` matches `Q`.
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
}

/// Result of a [`SimEngine::query_batch`] run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in input order. Each successful report
    /// carries its own engine-run metrics (without the broadcast,
    /// which the batch amortizes).
    pub reports: Vec<Result<RunReport, DgsError>>,
    /// Aggregate metrics: the sum of all per-query runs plus **one**
    /// batched query broadcast (`|F|` control messages carrying every
    /// pattern), instead of one broadcast per query.
    pub total: RunMetrics,
}

impl BatchReport {
    /// Number of queries that were answered.
    pub fn succeeded(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }
}

/// Which node equivalence backs the compressed leg of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressionMethod {
    /// Simulation equivalence — maximal merging, exact for every
    /// simulation pattern, but `O(|V||E|)` time and `O(|V|²)` space to
    /// build (see `dgs_sim::preorder`). The right choice for graphs up
    /// to a few tens of thousands of nodes.
    SimEq,
    /// Bisimulation — near-linear build, merges a subset of what
    /// simulation equivalence merges; the practical preprocessing for
    /// big graphs.
    Bisim,
}

impl CompressionMethod {
    /// Short display name (`simeq` / `bisim`).
    pub fn name(self) -> &'static str {
        match self {
            CompressionMethod::SimEq => "simeq",
            CompressionMethod::Bisim => "bisim",
        }
    }
}

/// Default capacity of the pattern-result cache.
const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Builder for [`SimEngine`]; see [`SimEngine::builder`].
pub struct SimEngineBuilder<'g> {
    graph: &'g Graph,
    frag: Arc<Fragmentation>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
    cache_capacity: usize,
    batch_workers: usize,
    compression: Option<CompressionMethod>,
    compression_threshold: f64,
}

impl SimEngineBuilder<'_> {
    /// Which executor drives the protocols (default: deterministic
    /// virtual time).
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The virtual-time cost model (default: EC2-like).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the planner (e.g. to change the cyclic fallback).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Kill-switch for the pattern-result cache (default: **on** with
    /// capacity 128). With the cache off, every query runs the
    /// distributed protocol, which is what metric-sensitive
    /// experiments want.
    pub fn cache(mut self, enabled: bool) -> Self {
        if enabled {
            if self.cache_capacity == 0 {
                self.cache_capacity = DEFAULT_CACHE_CAPACITY;
            }
        } else {
            self.cache_capacity = 0;
        }
        self
    }

    /// Capacity of the pattern-result cache in entries (LRU;
    /// `0` disables the cache entirely).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Worker threads used by [`SimEngine::query_batch`]
    /// (`0` = auto: one per available core, capped at the batch
    /// length). `1` forces the sequential path; results are identical
    /// either way, batches are merely wall-clock faster with more
    /// workers.
    pub fn batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = workers;
        self
    }

    /// Builds the query-preserving compressed graph `Gc` at session
    /// build time (default: off). [`Algorithm::Auto`] queries then run
    /// on `Gc` whenever its compression ratio clears
    /// [`Self::compression_threshold`], and the relation is
    /// decompressed back to `G`'s node ids — exact for every
    /// simulation pattern (see `dgs_sim::compress`).
    pub fn compress(mut self, method: CompressionMethod) -> Self {
        self.compression = Some(method);
        self
    }

    /// Maximum `|Gc| / |G|` ratio at which the planner answers on the
    /// compressed graph (default `0.5`); above it the leg is kept for
    /// inspection but queries run on `G`. Set to `1.0` to always use
    /// `Gc` when compression is enabled.
    pub fn compression_threshold(mut self, threshold: f64) -> Self {
        self.compression_threshold = threshold;
        self
    }

    /// Computes the structural facts and finalizes the engine. This is
    /// the once-per-session cost: `O(|V| + |E|)` for DAG-ness, the
    /// rooted-tree check, fragment connectivity and the SCC
    /// condensation — plus, when [`Self::compress`] is on, the quotient
    /// graph `Gc` and its fragmentation.
    pub fn build(self) -> SimEngine {
        let facts = GraphFacts::compute(self.graph, &self.frag);
        let compressed = self.compression.map(|method| {
            let c = match method {
                CompressionMethod::SimEq => compress_simeq(self.graph),
                CompressionMethod::Bisim => compress_bisim(self.graph),
            };
            let ratio = c.ratio(self.graph.size());
            // Each class lives at the site owning its first member, so
            // the quotient keeps the original placement's locality and
            // the same number of sites.
            let assign: Vec<usize> = c.members.iter().map(|m| self.frag.owner(m[0])).collect();
            let cfrag = Arc::new(Fragmentation::build(
                &c.graph,
                &assign,
                self.frag.num_sites(),
            ));
            let cfacts = GraphFacts::compute(&c.graph, &cfrag);
            Arc::new(CompressedLeg {
                active: ratio <= self.compression_threshold,
                graph: c,
                frag: cfrag,
                facts: cfacts,
                ratio,
                threshold: self.compression_threshold,
                method,
            })
        });
        SimEngine {
            frag: self.frag,
            executor: self.executor,
            cost: self.cost,
            planner: self.planner,
            facts,
            cache: (self.cache_capacity > 0)
                .then(|| Arc::new(Mutex::new(PatternCache::new(self.cache_capacity)))),
            batch_workers: self.batch_workers,
            compressed,
        }
    }
}

/// The compressed leg of a session: `Gc`, its fragmentation and the
/// structural facts the planner needs to pick an engine on it.
#[derive(Debug)]
struct CompressedLeg {
    graph: CompressedGraph,
    frag: Arc<Fragmentation>,
    facts: GraphFacts,
    ratio: f64,
    threshold: f64,
    method: CompressionMethod,
    /// `ratio <= threshold`: whether `Auto` queries answer on `Gc`.
    active: bool,
}

impl CompressedLeg {
    fn note(&self) -> CompressedNote {
        CompressedNote {
            ratio: self.ratio,
            classes: self.graph.class_count(),
            method: self.method.name(),
        }
    }
}

/// An engine the planner resolved a query to (explicit choices
/// included, so the run path is uniform).
enum Resolved {
    Dgpm(DgpmConfig),
    Dgpmd,
    Dgpms,
    Dgpmt,
    MatchCentral,
    DisHhk,
    DMes,
    /// Answer `∅` with no distributed work (§5.1's cyclic-pattern
    /// short-circuit).
    TriviallyEmpty,
}

impl Resolved {
    fn name(&self) -> &'static str {
        match self {
            Resolved::Dgpm(cfg) => dgpm_display_name(cfg),
            Resolved::Dgpmd => EngineChoice::Dgpmd.name(),
            Resolved::Dgpms => EngineChoice::Dgpms.name(),
            Resolved::Dgpmt => EngineChoice::Dgpmt.name(),
            Resolved::MatchCentral => Algorithm::MatchCentral.name(),
            Resolved::DisHhk => Algorithm::DisHhk.name(),
            Resolved::DMes => Algorithm::DMes.name(),
            Resolved::TriviallyEmpty => EngineChoice::TriviallyEmpty.name(),
        }
    }
}

/// A session over one fragmented graph: build once, query many times,
/// from many threads — `SimEngine` is `Send + Sync`, and clones share
/// the same pattern-result cache.
#[derive(Clone, Debug)]
pub struct SimEngine {
    frag: Arc<Fragmentation>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
    facts: GraphFacts,
    cache: Option<Arc<Mutex<PatternCache>>>,
    /// `0` = auto (one worker per available core).
    batch_workers: usize,
    compressed: Option<Arc<CompressedLeg>>,
}

/// Compile-time proof that the session engine can be shared across
/// serving threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimEngine>();
};

impl SimEngine {
    /// Starts building an engine over `graph` fragmented as `frag`.
    /// The graph is only read during [`SimEngineBuilder::build`] (for
    /// the structural facts); the engine itself holds the
    /// fragmentation.
    pub fn builder(graph: &Graph, frag: Arc<Fragmentation>) -> SimEngineBuilder<'_> {
        SimEngineBuilder {
            graph,
            frag,
            executor: ExecutorKind::Virtual,
            cost: CostModel::default(),
            planner: Planner::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            batch_workers: 0,
            compression: None,
            compression_threshold: 0.5,
        }
    }

    /// The cached structural facts the planner uses.
    pub fn facts(&self) -> &GraphFacts {
        &self.facts
    }

    /// The fragmentation this engine serves.
    pub fn fragmentation(&self) -> &Arc<Fragmentation> {
        &self.frag
    }

    /// Counters of the pattern-result cache; `None` when the cache is
    /// disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.lock().stats())
    }

    /// The compressed leg built at session time, if any.
    pub fn compression_note(&self) -> Option<CompressedNote> {
        self.compressed.as_ref().map(|leg| leg.note())
    }

    /// Whether [`Algorithm::Auto`] queries currently answer on `Gc`
    /// (a leg was built and its ratio cleared the threshold).
    pub fn compression_active(&self) -> bool {
        self.compressed.as_ref().is_some_and(|leg| leg.active)
    }

    /// Plans `q` without running it: which engine would serve it, and
    /// why.
    pub fn plan(&self, q: &Pattern) -> Result<PlanExplanation, DgsError> {
        let qf = PatternFacts::compute(q);
        self.planner.plan(&self.facts, &qf).map(|(_, plan)| plan)
    }

    /// Runs `q` with the planner-chosen engine.
    pub fn query(&self, q: &Pattern) -> Result<RunReport, DgsError> {
        self.query_with(&Algorithm::Auto, q)
    }

    /// Runs `q` with an explicit engine (checked, not asserted).
    ///
    /// [`Algorithm::Auto`] queries consult the pattern-result cache
    /// first: a hit is served without any protocol run
    /// (`metrics.cache_hits = 1`, zero messages). Explicit engine
    /// requests always run — callers asking for a specific engine are
    /// measuring it.
    pub fn query_with(&self, algorithm: &Algorithm, q: &Pattern) -> Result<RunReport, DgsError> {
        let (canon, hit) = self.cache_lookup(algorithm, q);
        if let (Some(canon), Some(cached)) = (&canon, hit) {
            return Ok(Self::report_from_cache(q, canon, &cached));
        }
        let mut report = self.run_one(algorithm, q)?;
        Self::charge_broadcast(&mut report.metrics, &self.frag, std::iter::once(q));
        if let Some(canon) = canon {
            self.cache_store(canon, &report);
        }
        Ok(report)
    }

    /// Runs a Boolean query (§2.1) with the planner-chosen engine.
    ///
    /// For the `dGPM` family this uses the dedicated Boolean gather
    /// path (`O(|F|)` bytes of result traffic, §4.1); other engines
    /// run normally and reduce their relation.
    pub fn query_boolean(&self, q: &Pattern) -> Result<BooleanReport, DgsError> {
        self.query_boolean_with(&Algorithm::Auto, q)
    }

    /// Boolean query with an explicit engine.
    ///
    /// [`Algorithm::Auto`] consults the pattern-result cache. The
    /// plain Boolean gather path doesn't materialize a relation, so it
    /// reads the cache without storing; the compressed-leg path runs
    /// data-selecting on `Gc` anyway, so its relation **is** stored —
    /// follow-up queries of either kind become hits.
    pub fn query_boolean_with(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<BooleanReport, DgsError> {
        let (canon, hit) = self.cache_lookup(algorithm, q);
        if let (Some(canon), Some(cached)) = (&canon, hit) {
            let report = Self::report_from_cache(q, canon, &cached);
            return Ok(BooleanReport {
                is_match: report.is_match,
                metrics: report.metrics,
                algorithm: report.algorithm,
                plan: report.plan,
            });
        }
        if self.uses_compressed(algorithm) {
            let mut report = self.run_one(algorithm, q)?;
            Self::charge_broadcast(&mut report.metrics, &self.frag, std::iter::once(q));
            if let Some(canon) = canon {
                self.cache_store(canon, &report);
            }
            return Ok(BooleanReport {
                is_match: report.is_match,
                metrics: report.metrics,
                algorithm: report.algorithm,
                plan: report.plan,
            });
        }
        let (resolved, plan) = self.resolve(algorithm, q)?;
        let qa = Arc::new(q.clone());
        let (is_match, mut metrics) = match &resolved {
            Resolved::TriviallyEmpty => (false, RunMetrics::default()),
            Resolved::Dgpm(cfg) => {
                let (coord, sites) =
                    dgpm::build_with_mode(&self.frag, &qa, cfg.clone(), QueryMode::Boolean);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                let b = o
                    .coordinator
                    .boolean
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without a Boolean verdict".into(),
                    })?;
                (b, o.metrics)
            }
            other => {
                let (relation, metrics) = self.run_resolved(&self.frag, other, &qa)?;
                (relation.is_total(), metrics)
            }
        };
        // Same uniform accounting as `query` — the Boolean path used
        // to skip the query broadcast.
        Self::charge_broadcast(&mut metrics, &self.frag, std::iter::once(q));
        Ok(BooleanReport {
            is_match,
            metrics,
            algorithm: resolved.name(),
            plan,
        })
    }

    /// Runs many queries against the session, amortizing the query
    /// broadcast: the whole batch is posted to each site once (`|F|`
    /// control messages total), instead of `|F|` per query. Per-query
    /// reports keep their own engine-run metrics; `total` adds the
    /// batched broadcast.
    ///
    /// The batch executes across a scoped worker pool
    /// (`min(available cores, batch length)` workers unless
    /// [`SimEngineBuilder::batch_workers`] overrides it). Results are
    /// **scheduling-independent**: the cache is probed sequentially up
    /// front against the batch-start state, each virtual-time run is
    /// deterministic in itself, and metrics are merged in input order
    /// — so a 1-worker and an N-worker run of the same batch report
    /// the same answers, plans and shipment metrics.
    pub fn query_batch(&self, patterns: &[Pattern]) -> BatchReport {
        self.query_batch_with(&Algorithm::Auto, patterns)
    }

    /// Batched run with an explicit engine; see [`Self::query_batch`].
    pub fn query_batch_with(&self, algorithm: &Algorithm, patterns: &[Pattern]) -> BatchReport {
        let n = patterns.len();
        let mut slots: Vec<Option<Result<RunReport, DgsError>>> = (0..n).map(|_| None).collect();

        // Phase 1 — sequential cache probe against the batch-start
        // cache state (deterministic regardless of worker count).
        // Duplicate patterns within one batch all miss together and
        // all run: hits are defined by the state when the batch
        // arrived, not by intra-batch scheduling.
        let mut canons: Vec<Option<CanonicalPattern>> = Vec::with_capacity(n);
        for (i, q) in patterns.iter().enumerate() {
            let (canon, hit) = self.cache_lookup(algorithm, q);
            if let (Some(canon), Some(cached)) = (&canon, hit) {
                slots[i] = Some(Ok(Self::report_from_cache(q, canon, &cached)));
            }
            canons.push(canon);
        }

        // Phase 2 — run the misses on the worker pool.
        let worklist: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        let workers = self.effective_workers(worklist.len());
        if workers <= 1 {
            for &i in &worklist {
                slots[i] = Some(self.run_one(algorithm, &patterns[i]));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = crossbeam::channel::unbounded();
            let worklist_ref = &worklist;
            let next_ref = &next;
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move |_| loop {
                        let slot = next_ref.fetch_add(1, Ordering::Relaxed);
                        if slot >= worklist_ref.len() {
                            break;
                        }
                        let i = worklist_ref[slot];
                        let report = self.run_one(algorithm, &patterns[i]);
                        if tx.send((i, report)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                while let Ok((i, report)) = rx.recv() {
                    slots[i] = Some(report);
                }
            })
            .expect("batch worker pool");
        }

        // Phase 3 — populate the cache in input order (identical to
        // what a single worker would have inserted).
        for &i in &worklist {
            if let (Some(Some(Ok(report))), Some(canon)) = (slots.get(i), canons[i].take()) {
                self.cache_store(canon, report);
            }
        }

        // Phase 4 — order-stable aggregation: per-query metrics merge
        // in input order, then one broadcast posting exactly the
        // patterns that ran a protocol (cache hits ship nothing).
        let reports: Vec<Result<RunReport, DgsError>> = slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
        let mut total = RunMetrics::default();
        for r in reports.iter().flatten() {
            total.merge(&r.metrics);
        }
        let posted: Vec<&Pattern> = worklist
            .iter()
            .filter(|&&i| reports[i].is_ok())
            .map(|&i| &patterns[i])
            .collect();
        if !posted.is_empty() {
            Self::charge_broadcast(&mut total, &self.frag, posted);
        }
        BatchReport { reports, total }
    }

    /// Resolves the batch worker count: the builder override, or one
    /// worker per available core, never more than there is work.
    fn effective_workers(&self, work: usize) -> usize {
        let configured = if self.batch_workers > 0 {
            self.batch_workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        };
        configured.min(work).max(1)
    }

    /// Resolves `algorithm` for `q`: the planner decides for
    /// [`Algorithm::Auto`]; explicit requests are checked against the
    /// cached facts (the old API `assert!`ed these).
    fn resolve(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<(Resolved, PlanExplanation), DgsError> {
        let qf = PatternFacts::compute(q);
        match algorithm {
            Algorithm::Auto => {
                let (choice, plan) = self.planner.plan(&self.facts, &qf)?;
                Ok((Self::resolved_from_choice(choice), plan))
            }
            Algorithm::Dgpm(cfg) => {
                self.planner.validate_pattern(&qf)?;
                let r = Resolved::Dgpm(cfg.clone());
                let plan = PlanExplanation::forced(r.name());
                Ok((r, plan))
            }
            Algorithm::Dgpmd => {
                if !qf.is_dag && self.facts.is_dag {
                    // §5.1: a cyclic pattern on a DAG graph can never
                    // match — no distributed work needed.
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons.push(
                        "dGPMd requested with a cyclic pattern on an acyclic graph: Q(G) = ∅"
                            .into(),
                    );
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                self.planner
                    .check_explicit(EngineChoice::Dgpmd, &self.facts, &qf)?;
                Ok((Resolved::Dgpmd, PlanExplanation::forced("dGPMd")))
            }
            Algorithm::Dgpms => {
                self.planner
                    .check_explicit(EngineChoice::Dgpms, &self.facts, &qf)?;
                Ok((Resolved::Dgpms, PlanExplanation::forced("dGPMs")))
            }
            Algorithm::Dgpmt => {
                self.planner
                    .check_explicit(EngineChoice::Dgpmt, &self.facts, &qf)?;
                if !qf.is_dag {
                    // Tree graphs are acyclic, so a cyclic pattern is
                    // trivially unmatched (and the tree protocol only
                    // schedules DAG patterns).
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons
                        .push("dGPMt requested with a cyclic pattern on a tree: Q(G) = ∅".into());
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                Ok((Resolved::Dgpmt, PlanExplanation::forced("dGPMt")))
            }
            Algorithm::MatchCentral => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::MatchCentral, PlanExplanation::forced("Match")))
            }
            Algorithm::DisHhk => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DisHhk, PlanExplanation::forced("disHHK")))
            }
            Algorithm::DMes => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DMes, PlanExplanation::forced("dMes")))
            }
        }
    }

    /// The uniform mapping from a planner choice to a runnable engine.
    fn resolved_from_choice(choice: EngineChoice) -> Resolved {
        match choice {
            EngineChoice::Dgpmt => Resolved::Dgpmt,
            EngineChoice::Dgpmd => Resolved::Dgpmd,
            EngineChoice::Dgpms => Resolved::Dgpms,
            EngineChoice::Dgpm => Resolved::Dgpm(DgpmConfig::optimized()),
            EngineChoice::TriviallyEmpty => Resolved::TriviallyEmpty,
        }
    }

    /// Whether this query will be answered on the compressed leg.
    fn uses_compressed(&self, algorithm: &Algorithm) -> bool {
        matches!(algorithm, Algorithm::Auto)
            && self.compressed.as_ref().is_some_and(|leg| leg.active)
    }

    /// Resolves and runs one query without the broadcast charge (the
    /// caller accounts it: per-query for [`Self::query_with`], once
    /// per batch for [`Self::query_batch_with`]). `Auto` queries route
    /// to the compressed leg when it is active.
    fn run_one(&self, algorithm: &Algorithm, q: &Pattern) -> Result<RunReport, DgsError> {
        if self.uses_compressed(algorithm) {
            let leg = self.compressed.as_ref().expect("uses_compressed checked");
            let qf = PatternFacts::compute(q);
            let (choice, mut plan) = self.planner.plan(&leg.facts, &qf)?;
            plan.compressed = Some(leg.note());
            plan.reasons.push(format!(
                "answering on Gc ({} classes via {}): ratio {:.2} clears threshold {:.2}; \
                 relation decompressed to G node ids",
                leg.graph.class_count(),
                leg.method.name(),
                leg.ratio,
                leg.threshold
            ));
            let resolved = Self::resolved_from_choice(choice);
            let qa = Arc::new(q.clone());
            let (class_relation, metrics) = self.run_resolved(&leg.frag, &resolved, &qa)?;
            let relation = leg.graph.expand(&class_relation);
            return Ok(RunReport::assemble(
                relation,
                metrics,
                resolved.name(),
                plan,
            ));
        }
        let (resolved, mut plan) = self.resolve(algorithm, q)?;
        if matches!(algorithm, Algorithm::Auto) {
            if let Some(leg) = self.compressed.as_deref().filter(|leg| !leg.active) {
                plan.reasons.push(format!(
                    "compressed leg built ({} classes via {}) but ratio {:.2} exceeds \
                     threshold {:.2} — answering on G",
                    leg.graph.class_count(),
                    leg.method.name(),
                    leg.ratio,
                    leg.threshold
                ));
            }
        }
        let qa = Arc::new(q.clone());
        let (relation, metrics) = self.run_resolved(&self.frag, &resolved, &qa)?;
        Ok(RunReport::assemble(
            relation,
            metrics,
            resolved.name(),
            plan,
        ))
    }

    /// Canonicalizes `q` and probes the cache. Returns `(None, None)`
    /// when caching does not apply (explicit engine, or cache off).
    fn cache_lookup(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> (Option<CanonicalPattern>, Option<Arc<CachedResult>>) {
        if !matches!(algorithm, Algorithm::Auto) {
            return (None, None);
        }
        let Some(cache) = &self.cache else {
            return (None, None);
        };
        let canon = cache::canonicalize(q);
        let hit = cache.lock().get(&canon.key);
        (Some(canon), hit)
    }

    /// Re-expresses a cached canonical answer in the submitted
    /// pattern's numbering. The hit ships nothing: fresh metrics with
    /// `cache_hits = 1` and zero messages.
    fn report_from_cache(
        q: &Pattern,
        canon: &CanonicalPattern,
        cached: &CachedResult,
    ) -> RunReport {
        let rows: Vec<Vec<dgs_graph::NodeId>> = q
            .nodes()
            .map(|u| cached.rows[canon.pos_of[u.index()] as usize].clone())
            .collect();
        let mut plan = cached.plan.clone();
        plan.reasons
            .push("served from the pattern-result cache (no protocol run)".into());
        RunReport::assemble(
            MatchRelation::from_lists(rows),
            RunMetrics {
                cache_hits: 1,
                ..RunMetrics::default()
            },
            cached.algorithm,
            plan,
        )
    }

    /// Stores a freshly computed answer under its canonical key, rows
    /// permuted into canonical node order.
    fn cache_store(&self, canon: CanonicalPattern, report: &RunReport) {
        let Some(cache) = &self.cache else {
            return;
        };
        let rows: Vec<Vec<dgs_graph::NodeId>> = canon
            .node_at()
            .iter()
            .map(|&u| report.relation.matches_of(dgs_graph::QNodeId(u)).to_vec())
            .collect();
        cache.lock().insert(
            canon.key,
            Arc::new(CachedResult {
                rows,
                algorithm: report.algorithm,
                plan: report.plan.clone(),
            }),
        );
    }

    /// Runs a resolved engine on `frag` and returns
    /// `(relation, metrics)`.
    fn run_resolved(
        &self,
        frag: &Arc<Fragmentation>,
        resolved: &Resolved,
        q: &Arc<Pattern>,
    ) -> Result<(MatchRelation, RunMetrics), DgsError> {
        // One shape per engine: build the actors, run them, take the
        // coordinator's answer.
        macro_rules! drive {
            ($build:expr) => {{
                let (coord, sites) = $build;
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                let answer = o
                    .coordinator
                    .answer
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without an answer".into(),
                    })?;
                Ok((answer, o.metrics))
            }};
        }
        match resolved {
            Resolved::TriviallyEmpty => {
                Ok((MatchRelation::empty(q.node_count()), RunMetrics::default()))
            }
            Resolved::Dgpm(cfg) => drive!(dgpm::build(frag, q, cfg.clone())),
            Resolved::Dgpmd => drive!(dgpmd::build(frag, q)),
            Resolved::Dgpms => drive!(dgpms::build(frag, q)),
            Resolved::Dgpmt => drive!(dgpmt::build(frag, q)),
            Resolved::MatchCentral => drive!(baselines::match_central::build(frag, q)),
            Resolved::DisHhk => drive!(baselines::dishhk::build(frag, q)),
            Resolved::DMes => drive!(baselines::dmes::build(frag, q)),
        }
    }

    /// Accounts the query broadcast (Sc posts the patterns to each
    /// site): `|F|` control messages of `Σ ~|Qi|` bytes each. Applied
    /// uniformly to **every** query path — data-selecting, Boolean,
    /// and trivially-empty runs alike (the old API skipped it on the
    /// latter two).
    fn charge_broadcast<'a>(
        metrics: &mut RunMetrics,
        frag: &Fragmentation,
        patterns: impl IntoIterator<Item = &'a Pattern>,
    ) {
        let q_bytes: usize = patterns
            .into_iter()
            .map(|q| 8 + 3 * q.node_count() + 4 * q.edge_count())
            .sum();
        metrics.control_messages += frag.num_sites() as u64;
        metrics.control_bytes += (frag.num_sites() * q_bytes) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{dag, patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};
    use dgs_sim::hhk_simulation;

    fn engine_for(g: &Graph, k: usize, seed: u64) -> SimEngine {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        SimEngine::builder(g, frag).build()
    }

    #[test]
    fn auto_picks_dgpmt_on_trees_and_agrees_with_oracle() {
        let g = tree::random_tree(200, 4, 4);
        let assign = tree_partition(&g, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMt");
        assert!(report.plan.auto);
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_picks_dgpmd_on_dags_and_agrees_with_oracle() {
        let g = dag::citation_like(300, 700, 5, 7);
        let engine = engine_for(&g, 3, 7);
        let q = patterns::random_dag_with_depth(4, 6, 2, 5, 7);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMd");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_handles_cyclic_workloads_and_agrees_with_oracle() {
        let g = random::uniform(120, 500, 4, 8);
        let engine = engine_for(&g, 3, 8);
        let q = patterns::random_cyclic(3, 6, 4, 8);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMs");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_short_circuits_cyclic_pattern_on_dag() {
        let g = dag::citation_like(100, 250, 4, 1);
        let engine = engine_for(&g, 3, 1);
        let q = patterns::random_cyclic(3, 5, 4, 1);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "trivial-∅");
        assert!(!report.is_match);
        assert!(report.answer().is_empty());
        assert_eq!(report.metrics.data_bytes, 0);
        // The uniform broadcast accounting still posts Q to the sites.
        assert_eq!(report.metrics.control_messages, 3);
    }

    #[test]
    fn explicit_engines_error_instead_of_panicking() {
        let g = random::uniform(50, 200, 4, 2);
        let engine = engine_for(&g, 2, 2);
        let q = patterns::random_cyclic(3, 5, 4, 2);
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmd, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMd",
                ..
            })
        ));
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmt, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMt",
                ..
            })
        ));
        // The engine session stays usable after a bad query.
        assert!(engine.query(&q).is_ok());
    }

    #[test]
    fn answer_borrows_instead_of_cloning() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
        // On a match the answer aliases the relation.
        assert!(std::ptr::eq(report.answer(), &report.relation));
        assert_eq!(report.answer().len(), 11);
    }

    #[test]
    fn boolean_charges_broadcast_uniformly() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let q = &w.pattern;
        let b = engine
            .query_boolean_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(b.is_match);
        // The Boolean path used to skip the |F|-message broadcast the
        // data-selecting path charges; both paths now include it.
        let broadcast_bytes = (3 * (8 + 3 * q.node_count() + 4 * q.edge_count())) as u64;
        assert!(b.metrics.control_messages >= 3);
        assert!(b.metrics.control_bytes >= broadcast_bytes);
        let full = engine
            .query_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(full.metrics.control_messages >= 3);
        assert!(full.metrics.control_bytes >= broadcast_bytes);
    }

    #[test]
    fn batch_amortizes_the_broadcast() {
        let g = random::uniform(150, 600, 4, 9);
        // Cache off: this test measures the protocol broadcast, and
        // re-queries each pattern individually after the batch.
        let assign = hash_partition(g.node_count(), 5, 9);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 5));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let patterns: Vec<Pattern> = (0..10)
            .map(|i| patterns::random_cyclic(3, 6, 4, 100 + i))
            .collect();
        let batch = engine.query_batch(&patterns);
        assert_eq!(batch.reports.len(), 10);
        assert_eq!(batch.succeeded(), 10);
        for r in &batch.reports {
            let r = r.as_ref().unwrap();
            // Per-query metrics are present and broadcast-free.
            assert!(r.metrics.total_ops > 0);
        }
        // One broadcast for the whole batch...
        let singles: u64 = patterns
            .iter()
            .map(|q| engine.query(q).unwrap().metrics.control_messages)
            .sum();
        // ... so total control messages are |F| * (B - 1) lower than
        // B separate queries.
        assert_eq!(
            batch.total.control_messages,
            singles - 5 * (patterns.len() as u64 - 1)
        );
        // Same answers either way.
        for (r, q) in batch.reports.iter().zip(&patterns) {
            assert_eq!(
                r.as_ref().unwrap().relation,
                engine.query(q).unwrap().relation
            );
        }
    }

    #[test]
    fn batch_isolates_failures() {
        let g = random::uniform(60, 240, 4, 10);
        let engine = engine_for(&g, 2, 10);
        let good = patterns::random_cyclic(3, 5, 4, 10);
        let bad = dgs_graph::PatternBuilder::new().build();
        let batch = engine.query_batch_with(&Algorithm::Auto, &[good.clone(), bad, good]);
        assert_eq!(batch.succeeded(), 2);
        assert!(matches!(
            batch.reports[1],
            Err(DgsError::InvalidPattern { .. })
        ));
    }

    #[test]
    fn threaded_executor_through_the_builder() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag)
            .executor(ExecutorKind::Threaded)
            .build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
    }

    #[test]
    fn repeat_query_hits_the_cache_with_zero_messages() {
        let g = random::uniform(100, 400, 4, 21);
        let engine = engine_for(&g, 3, 21);
        let q = patterns::random_cyclic(3, 6, 4, 21);
        let cold = engine.query(&q).unwrap();
        assert_eq!(cold.metrics.cache_hits, 0);
        assert!(cold.metrics.control_messages > 0);
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.metrics.data_messages, 0);
        assert_eq!(warm.metrics.control_messages, 0);
        assert_eq!(warm.metrics.result_messages, 0);
        assert_eq!(warm.metrics.data_bytes, 0);
        assert_eq!(warm.relation, cold.relation);
        assert_eq!(warm.algorithm, cold.algorithm);
        assert!(warm.plan.to_string().contains("cache"));
        let stats = engine.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn explicit_engines_bypass_the_cache() {
        let g = random::uniform(80, 320, 4, 22);
        let engine = engine_for(&g, 3, 22);
        let q = patterns::random_cyclic(3, 6, 4, 22);
        for _ in 0..2 {
            let r = engine.query_with(&Algorithm::Dgpms, &q).unwrap();
            assert_eq!(r.metrics.cache_hits, 0);
            assert!(r.metrics.control_messages > 0);
        }
        assert_eq!(engine.cache_stats().unwrap().entries, 0);
    }

    #[test]
    fn boolean_queries_read_the_cache() {
        let g = random::uniform(90, 360, 4, 23);
        let engine = engine_for(&g, 3, 23);
        let q = patterns::random_cyclic(3, 6, 4, 23);
        let full = engine.query(&q).unwrap();
        let b = engine.query_boolean(&q).unwrap();
        assert_eq!(b.is_match, full.is_match);
        assert_eq!(b.metrics.cache_hits, 1);
        assert_eq!(b.metrics.control_messages, 0);
    }

    #[test]
    fn compressed_boolean_run_warms_the_cache() {
        let g = random::uniform(90, 360, 4, 29);
        let assign = hash_partition(g.node_count(), 3, 29);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag)
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .build();
        let q = patterns::random_cyclic(3, 6, 4, 29);
        // The compressed leg answers Boolean queries via the
        // data-selecting run, so the relation is cached...
        let b = engine.query_boolean(&q).unwrap();
        assert_eq!(b.metrics.cache_hits, 0);
        // ...and the follow-up data-selecting query is a hit.
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.is_match, b.is_match);
    }

    #[test]
    fn clones_share_the_cache() {
        let g = random::uniform(70, 280, 4, 24);
        let engine = engine_for(&g, 3, 24);
        let q = patterns::random_cyclic(3, 6, 4, 24);
        engine.query(&q).unwrap();
        let clone = engine.clone();
        let warm = clone.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
    }

    #[test]
    fn compressed_leg_answers_exactly_and_is_explained() {
        let g = random::uniform(120, 480, 3, 25);
        let assign = hash_partition(g.node_count(), 3, 25);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, Arc::clone(&frag))
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .cache(false)
            .build();
        assert!(engine.compression_active());
        let plain = SimEngine::builder(&g, frag).cache(false).build();
        for seed in 0..4 {
            let q = patterns::random_cyclic(3, 6, 3, 250 + seed);
            let on_gc = engine.query(&q).unwrap();
            let on_g = plain.query(&q).unwrap();
            assert_eq!(on_gc.relation, on_g.relation, "seed {seed}");
            let note = on_gc
                .plan
                .compressed
                .as_ref()
                .expect("compressed leg noted");
            assert!(note.ratio <= 1.0);
            assert!(on_gc.plan.to_string().contains("Gc"));
        }
    }

    #[test]
    fn compression_threshold_gates_the_leg() {
        // A graph with almost no simulation-equivalent redundancy:
        // the ratio stays near 1, far above a strict threshold.
        let g = random::uniform(100, 400, 4, 26);
        let assign = hash_partition(g.node_count(), 3, 26);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag)
            .compress(CompressionMethod::SimEq)
            .compression_threshold(0.01)
            .cache(false)
            .build();
        assert!(!engine.compression_active());
        assert!(engine.compression_note().is_some());
        let q = patterns::random_cyclic(3, 6, 4, 26);
        let r = engine.query(&q).unwrap();
        assert!(r.plan.compressed.is_none());
        assert!(r.plan.to_string().contains("exceeds"));
    }

    #[test]
    fn parallel_batch_matches_single_worker() {
        let g = random::uniform(120, 480, 4, 27);
        let assign = hash_partition(g.node_count(), 4, 27);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let seq = SimEngine::builder(&g, Arc::clone(&frag))
            .batch_workers(1)
            .build();
        let par = SimEngine::builder(&g, frag).batch_workers(4).build();
        let mut qs: Vec<Pattern> = (0..8)
            .map(|i| patterns::random_cyclic(3, 6, 4, 270 + i))
            .collect();
        qs.push(dgs_graph::PatternBuilder::new().build()); // an Err entry
        let a = seq.query_batch(&qs);
        let b = par.query_batch(&qs);
        assert_eq!(a.succeeded(), b.succeeded());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            match (x, y) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.relation, y.relation);
                    assert_eq!(x.algorithm, y.algorithm);
                    assert_eq!(x.plan.to_string(), y.plan.to_string());
                    assert_eq!(x.metrics.data_messages, y.metrics.data_messages);
                    assert_eq!(x.metrics.control_messages, y.metrics.control_messages);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("parallel and sequential batches disagree on success"),
            }
        }
        assert_eq!(a.total.data_messages, b.total.data_messages);
        assert_eq!(a.total.control_messages, b.total.control_messages);
        assert_eq!(a.total.cache_hits, b.total.cache_hits);
    }

    #[test]
    fn batch_serves_prewarmed_patterns_from_cache() {
        let g = random::uniform(100, 400, 4, 28);
        let engine = engine_for(&g, 3, 28);
        let q0 = patterns::random_cyclic(3, 6, 4, 280);
        let q1 = patterns::random_cyclic(3, 6, 4, 281);
        engine.query(&q0).unwrap(); // warm q0
        let batch = engine.query_batch(&[q0.clone(), q1.clone()]);
        assert_eq!(batch.succeeded(), 2);
        assert_eq!(batch.reports[0].as_ref().unwrap().metrics.cache_hits, 1);
        assert_eq!(batch.reports[1].as_ref().unwrap().metrics.cache_hits, 0);
        assert_eq!(batch.total.cache_hits, 1);
        // The hit contributes nothing; the total is q1's own run plus
        // one broadcast posting only the pattern that ran (|F| = 3
        // control messages carrying q1's bytes).
        let run = &batch.reports[1].as_ref().unwrap().metrics;
        let broadcast_bytes = (3 * (8 + 3 * q1.node_count() + 4 * q1.edge_count())) as u64;
        assert_eq!(batch.total.control_messages, run.control_messages + 3);
        assert_eq!(
            batch.total.control_bytes,
            run.control_bytes + broadcast_bytes
        );
        assert_eq!(batch.total.data_messages, run.data_messages);
    }

    #[test]
    fn plan_is_a_dry_run() {
        let g = tree::random_tree(80, 3, 11);
        let assign = tree_partition(&g, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.algorithm, "dGPMt");
        assert!(plan.to_string().contains("auto"));
    }
}
