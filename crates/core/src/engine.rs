//! `SimEngine`: the session-oriented query API.
//!
//! The old [`crate::api::DistributedSim`] rebuilt every structural
//! check per call and panicked on inapplicable engines. A `SimEngine`
//! is instead **built once** over a loaded graph + fragmentation —
//! paying for the planner's structural facts (DAG-ness, rooted-tree
//! check, fragment connectivity, SCC condensation) a single time —
//! and then serves many queries:
//!
//! ```
//! use dgs_core::{Algorithm, SimEngine};
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//!
//! // The planner picks an applicable engine and explains itself.
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! assert_eq!(report.answer().len(), 11);
//! println!("plan: {}", report.plan);
//! ```
//!
//! Queries return `Result<_, DgsError>` — the query path never
//! panics. Batches ([`SimEngine::query_batch`]) amortize the query
//! broadcast: one posting of the whole batch to each site instead of
//! one per query.
//!
//! ## Serving mode
//!
//! `SimEngine` is `Send + Sync`: one engine can be shared across
//! threads (or cloned — clones share the same cache) and serve
//! concurrent traffic. Three serving features stack on the session:
//!
//! * **Parallel batches** — [`SimEngine::query_batch`] fans the batch
//!   out over a scoped worker pool (`min(cores, batch_len)` workers by
//!   default, [`SimEngineBuilder::batch_workers`] to override) and
//!   merges per-query metrics in input order, so batch reports are
//!   identical regardless of scheduling.
//! * **Pattern-result cache** — [`Algorithm::Auto`] answers are cached
//!   under a canonical pattern form (label-preserving renumbering, so
//!   isomorphic re-submissions hit). A hit records
//!   `metrics.cache_hits = 1` and **zero** messages. See
//!   [`SimEngineBuilder::cache`] / [`SimEngineBuilder::cache_capacity`].
//! * **Compression-backed plans** — [`SimEngineBuilder::compress`]
//!   builds the query-preserving quotient `Gc` (Fan et al., SIGMOD'12)
//!   at session build time; when its ratio clears
//!   [`SimEngineBuilder::compression_threshold`], `Auto` queries run on
//!   `Gc` and the relation is decompressed back to `G`'s node ids,
//!   with the leg recorded in [`PlanExplanation::compressed`].
//!
//! ## Dynamic graphs
//!
//! Sessions are **mutable**: [`SimEngine::apply_delta`] absorbs a
//! [`GraphDelta`] batch in place. The fragmentation is maintained
//! incrementally (virtual nodes and in-node subscriptions included),
//! deletion-only batches keep cached answers current through the
//! distributed incremental update of [`crate::delta`] (the plan then
//! carries [`PlanExplanation::incremental`]), and batches with
//! insertions conservatively invalidate. Generation-tagged cache keys
//! make stale hits impossible; the structural facts and the compressed
//! leg refresh lazily.
//!
//! ## Snapshot isolation
//!
//! The read path is **snapshot-isolated**: every query loads the
//! current immutable generation snapshot (fragmentation + graph
//! mirror + planner facts + compressed leg) with a single `Arc` clone
//! and runs entirely against it, while `apply_delta` builds the next
//! generation off the read path and publishes it with one pointer
//! swap. Queries therefore never block behind a writer, and every
//! answer is computed at exactly one generation — a concurrent delta
//! can never tear a reader. `apply_delta` and
//! [`SimEngine::cache_invalidate_all`] take `&self`; concurrent
//! writers serialize against each other only.

use crate::cache::{self, CacheStats, CachedResult, CanonicalPattern, PatternCache};
use crate::delta::{self, DeltaReport, DeltaSiteState, GraphDelta};
use crate::dgpm::{self, DgpmConfig, QueryMode};
use crate::error::DgsError;
use crate::plan::{
    CompressedNote, EngineChoice, GraphFacts, IncrementalNote, PatternFacts, PlanExplanation,
    Planner,
};
use crate::{baselines, dgpmd, dgpms, dgpmt};
use dgs_graph::{Graph, GraphBuilder, NodeId, Pattern};
use dgs_net::{
    CoordinatorLogic, CostModel, ExecutorKind, RemoteSpec, RunMetrics, RunOutcome,
    SiteDeltaMetrics, SiteLogic, SocketCluster, SocketConfig, SocketMsg,
};
use dgs_partition::{EdgeOp, Fragmentation};
use dgs_sim::{compress_bisim, compress_simeq, CompressedGraph, MatchRelation};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which engine to run.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// Let the planner pick from the cached structural facts.
    Auto,
    /// `dGPM` with the given configuration (§4).
    Dgpm(DgpmConfig),
    /// `dGPMd` for DAG patterns or DAG graphs (§5.1).
    Dgpmd,
    /// `dGPMs`: SCC-stratified batched shipping for arbitrary
    /// (cyclic) patterns — this repository's extension of `dGPMd`.
    Dgpms,
    /// `dGPMt` for trees with connected fragments (§5.2).
    Dgpmt,
    /// `Match`: ship everything to one site (§3.1).
    MatchCentral,
    /// `disHHK` \[25\].
    DisHhk,
    /// `dMes`: vertex-centric supersteps (§6 / \[14\]).
    DMes,
}

impl Algorithm {
    /// The paper's `dGPM` (incremental + push, θ = 0.2).
    pub fn dgpm() -> Self {
        Algorithm::Dgpm(DgpmConfig::optimized())
    }

    /// The paper's `dGPMNOpt`.
    pub fn dgpm_nopt() -> Self {
        Algorithm::Dgpm(DgpmConfig::no_opt())
    }

    /// `dGPM` with incremental evaluation but no push (ablation).
    pub fn dgpm_incremental_only() -> Self {
        Algorithm::Dgpm(DgpmConfig::incremental_only())
    }

    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "Auto",
            Algorithm::Dgpm(cfg) => dgpm_display_name(cfg),
            Algorithm::Dgpmd => EngineChoice::Dgpmd.name(),
            Algorithm::Dgpms => EngineChoice::Dgpms.name(),
            Algorithm::Dgpmt => EngineChoice::Dgpmt.name(),
            Algorithm::MatchCentral => "Match",
            Algorithm::DisHhk => "disHHK",
            Algorithm::DMes => "dMes",
        }
    }
}

/// The one display-name table for `dGPM` configuration variants,
/// shared by [`Algorithm::name`] and the resolved-engine names.
fn dgpm_display_name(cfg: &DgpmConfig) -> &'static str {
    if !cfg.incremental {
        "dGPMNOpt"
    } else if cfg.push_threshold.is_none() {
        "dGPM-nopush"
    } else {
        "dGPM"
    }
}

/// Result of one data-selecting query.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The maximum relation under the child condition.
    pub relation: MatchRelation,
    /// The Boolean query answer (`relation.is_total()`).
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
    /// `∅`-of-`|Vq|` storage for [`answer`](Self::answer) when the
    /// query does not match; `None` when `answer` can alias
    /// `relation`.
    empty: Option<MatchRelation>,
}

impl RunReport {
    pub(crate) fn assemble(
        relation: MatchRelation,
        metrics: RunMetrics,
        algorithm: &'static str,
        plan: PlanExplanation,
    ) -> Self {
        let is_match = relation.is_total();
        let empty = if is_match || relation.is_empty() {
            None
        } else {
            Some(MatchRelation::empty(relation.query_nodes()))
        };
        RunReport {
            relation,
            is_match,
            metrics,
            algorithm,
            plan,
            empty,
        }
    }

    /// `Q(G)` with the paper's convention: the full relation on a
    /// match, `∅` when some query node has no match. A borrow — the
    /// relation is never cloned.
    pub fn answer(&self) -> &MatchRelation {
        self.empty.as_ref().unwrap_or(&self.relation)
    }
}

/// Result of one Boolean query (§2.1).
#[derive(Clone, Debug)]
pub struct BooleanReport {
    /// Whether `G` matches `Q`.
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// Display name of the engine that ran.
    pub algorithm: &'static str,
    /// How the engine was chosen.
    pub plan: PlanExplanation,
}

/// Result of a [`SimEngine::query_batch`] run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query outcomes, in input order. Each successful report
    /// carries its own engine-run metrics (without the broadcast,
    /// which the batch amortizes).
    pub reports: Vec<Result<RunReport, DgsError>>,
    /// Aggregate metrics: the sum of all per-query runs plus **one**
    /// batched query broadcast (`|F|` control messages carrying every
    /// pattern), instead of one broadcast per query.
    pub total: RunMetrics,
}

impl BatchReport {
    /// Number of queries that were answered.
    pub fn succeeded(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }
}

/// Which node equivalence backs the compressed leg of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressionMethod {
    /// Simulation equivalence — maximal merging, exact for every
    /// simulation pattern, but `O(|V||E|)` time and `O(|V|²)` space to
    /// build (see `dgs_sim::preorder`). The right choice for graphs up
    /// to a few tens of thousands of nodes.
    SimEq,
    /// Bisimulation — near-linear build, merges a subset of what
    /// simulation equivalence merges; the practical preprocessing for
    /// big graphs.
    Bisim,
}

impl CompressionMethod {
    /// Short display name (`simeq` / `bisim`).
    pub fn name(self) -> &'static str {
        match self {
            CompressionMethod::SimEq => "simeq",
            CompressionMethod::Bisim => "bisim",
        }
    }
}

/// Default capacity of the pattern-result cache.
const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Builder for [`SimEngine`]; see [`SimEngine::builder`].
pub struct SimEngineBuilder<'g> {
    graph: &'g Graph,
    frag: Arc<Fragmentation>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
    cache_capacity: usize,
    batch_workers: usize,
    compression: Option<CompressionMethod>,
    compression_threshold: f64,
}

impl SimEngineBuilder<'_> {
    /// Which executor drives the protocols (default: deterministic
    /// virtual time).
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The virtual-time cost model (default: EC2-like).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the planner (e.g. to change the cyclic fallback).
    pub fn planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Kill-switch for the pattern-result cache (default: **on** with
    /// capacity 128). With the cache off, every query runs the
    /// distributed protocol, which is what metric-sensitive
    /// experiments want.
    pub fn cache(mut self, enabled: bool) -> Self {
        if enabled {
            if self.cache_capacity == 0 {
                self.cache_capacity = DEFAULT_CACHE_CAPACITY;
            }
        } else {
            self.cache_capacity = 0;
        }
        self
    }

    /// Capacity of the pattern-result cache in entries (LRU;
    /// `0` disables the cache entirely).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Worker threads used by [`SimEngine::query_batch`]
    /// (`0` = auto: one per available core, capped at the batch
    /// length). `1` forces the sequential path; results are identical
    /// either way, batches are merely wall-clock faster with more
    /// workers.
    pub fn batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = workers;
        self
    }

    /// Builds the query-preserving compressed graph `Gc` at session
    /// build time (default: off). [`Algorithm::Auto`] queries then run
    /// on `Gc` whenever its compression ratio clears
    /// [`Self::compression_threshold`], and the relation is
    /// decompressed back to `G`'s node ids — exact for every
    /// simulation pattern (see `dgs_sim::compress`).
    pub fn compress(mut self, method: CompressionMethod) -> Self {
        self.compression = Some(method);
        self
    }

    /// Maximum `|Gc| / |G|` ratio at which the planner answers on the
    /// compressed graph (default `0.5`); above it the leg is kept for
    /// inspection but queries run on `G`. Set to `1.0` to always use
    /// `Gc` when compression is enabled.
    pub fn compression_threshold(mut self, threshold: f64) -> Self {
        self.compression_threshold = threshold;
        self
    }

    /// Computes the structural facts and finalizes the engine. This is
    /// the once-per-session cost: `O(|V| + |E|)` for DAG-ness, the
    /// rooted-tree check, fragment connectivity and the SCC
    /// condensation — plus, when [`Self::compress`] is on, the quotient
    /// graph `Gc` and its fragmentation. The engine keeps its own copy
    /// of the graph so the session can absorb
    /// [`SimEngine::apply_delta`] batches later.
    pub fn build(self) -> SimEngine {
        self.build_with_cluster(None)
    }

    /// Builds the engine **and** bootstraps a socket cluster for it:
    /// worker processes are spawned (or attached to), handshaken, and
    /// loaded with the session's graph + fragmentation, and the
    /// executor is set to [`ExecutorKind::Socket`] — `Auto` and
    /// explicit dGPM-family queries then run across real OS processes,
    /// with the per-site message/visit metrics flowing back over the
    /// wire into the same [`RunReport`] shape as the in-process
    /// executors.
    ///
    /// In-process fallbacks (documented, not silent): the compressed
    /// leg's quotient graph `Gc` is never shipped to the workers, so
    /// compressed-leg runs use the virtual executor, as do the
    /// distributed maintenance runs of [`SimEngine::apply_delta`]
    /// (their per-site counter states must come back into the
    /// session) — and every delta re-ships the session bootstrap so
    /// later socket runs execute against the mutated graph. The
    /// `Match`/`disHHK`/`dMes` baselines are not socket-remotable and
    /// report a typed [`DgsError::Unsupported`].
    pub fn build_socket(mut self, cfg: SocketConfig) -> Result<SimEngine, DgsError> {
        self.executor = ExecutorKind::Socket;
        let bootstrap = crate::remote::encode_bootstrap(self.graph, &self.frag);
        let cluster = SocketCluster::start(cfg, &bootstrap, self.frag.num_sites())
            .map_err(|e| DgsError::from_exec("socket-cluster", e))?;
        Ok(self.build_with_cluster(Some(Arc::new(cluster))))
    }

    fn build_with_cluster(self, cluster: Option<Arc<SocketCluster>>) -> SimEngine {
        let facts = GraphFacts::compute(self.graph, &self.frag);
        let leg = self
            .compression
            .map(|method| build_leg(self.graph, &self.frag, method, self.compression_threshold));
        let snapshot = GenSnapshot {
            generation: 0,
            frag: self.frag,
            graph: Mutex::new(GraphState {
                graph: Arc::new(self.graph.clone()),
                pending: Vec::new(),
            }),
            facts: Mutex::new(FactsState {
                facts: Arc::new(facts),
                dirty: false,
            }),
            compressed: Mutex::new(CompressedState {
                method: self.compression,
                threshold: self.compression_threshold,
                leg,
                dirty: false,
            }),
        };
        SimEngine {
            snap: Mutex::new(Arc::new(snapshot)),
            executor: self.executor,
            cost: self.cost,
            planner: self.planner,
            cache: (self.cache_capacity > 0)
                .then(|| Arc::new(Mutex::new(PatternCache::new(self.cache_capacity)))),
            batch_workers: self.batch_workers,
            maintained: Mutex::new(HashMap::new()),
            gen_alloc: Arc::new(AtomicU64::new(1)),
            cluster,
            cluster_gen: Arc::new(AtomicU64::new(0)),
            stats: Arc::new(EngineStats::default()),
        }
    }
}

/// Builds the compressed leg for the current graph (session build
/// time, and lazily again after a delta marks the leg dirty).
fn build_leg(
    graph: &Graph,
    frag: &Arc<Fragmentation>,
    method: CompressionMethod,
    threshold: f64,
) -> Arc<CompressedLeg> {
    let c = match method {
        CompressionMethod::SimEq => compress_simeq(graph),
        CompressionMethod::Bisim => compress_bisim(graph),
    };
    let ratio = c.ratio(graph.size());
    // Each class lives at the site owning its first member, so the
    // quotient keeps the original placement's locality and the same
    // number of sites.
    let assign: Vec<usize> = c.members.iter().map(|m| frag.owner(m[0])).collect();
    let cfrag = Arc::new(Fragmentation::build(&c.graph, &assign, frag.num_sites()));
    let cfacts = GraphFacts::compute(&c.graph, &cfrag);
    Arc::new(CompressedLeg {
        active: ratio <= threshold,
        graph: c,
        frag: cfrag,
        facts: cfacts,
        ratio,
        threshold,
        method,
    })
}

/// The compressed leg of a session: `Gc`, its fragmentation and the
/// structural facts the planner needs to pick an engine on it.
#[derive(Debug)]
struct CompressedLeg {
    graph: CompressedGraph,
    frag: Arc<Fragmentation>,
    facts: GraphFacts,
    ratio: f64,
    threshold: f64,
    method: CompressionMethod,
    /// `ratio <= threshold`: whether `Auto` queries answer on `Gc`.
    active: bool,
}

impl CompressedLeg {
    fn note(&self) -> CompressedNote {
        CompressedNote {
            ratio: self.ratio,
            classes: self.graph.class_count(),
            method: self.method.name(),
        }
    }
}

/// The session's compression configuration plus its (lazily rebuilt)
/// leg. A graph delta marks the leg **dirty**; the next query that
/// wants it rebuilds the quotient from the current graph.
#[derive(Clone, Debug)]
struct CompressedState {
    method: Option<CompressionMethod>,
    threshold: f64,
    leg: Option<Arc<CompressedLeg>>,
    dirty: bool,
}

/// Persistent maintenance state of one cached entry: the per-site HHK
/// counter states plus the cumulative incremental-leg accounting.
#[derive(Debug)]
struct MaintainedStates {
    sites: Vec<DeltaSiteState>,
    deletions_absorbed: u64,
    insertions_absorbed: u64,
    maintenance_runs: u64,
}

/// The session's graph mirror. Deltas append **pending** ops instead
/// of rebuilding the CSR eagerly — a delete-heavy stream whose
/// queries are all served from maintained cache entries never needs
/// the materialized graph at all, so the `O(|G|)` rebuild is deferred
/// until something (facts recompute, compression rebuild, a caller)
/// actually asks for it.
#[derive(Clone, Debug)]
struct GraphState {
    graph: Arc<Graph>,
    pending: Vec<EdgeOp>,
}

impl GraphState {
    fn materialize(&mut self) -> Arc<Graph> {
        if !self.pending.is_empty() {
            let g = &self.graph;
            let mut edges: HashSet<(NodeId, NodeId)> = g.edges().collect();
            for op in self.pending.drain(..) {
                match op {
                    EdgeOp::Insert(u, v) => {
                        edges.insert((u, v));
                    }
                    EdgeOp::Delete(u, v) => {
                        edges.remove(&(u, v));
                    }
                }
            }
            let mut b = GraphBuilder::with_capacity(g.node_count(), edges.len());
            for v in g.nodes() {
                b.add_node(g.label(v));
            }
            let mut sorted: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
            sorted.sort_unstable();
            for (u, v) in sorted {
                b.add_edge(u, v);
            }
            self.graph = Arc::new(b.build());
        }
        Arc::clone(&self.graph)
    }
}

/// The planner's structural facts, recomputed lazily after a delta
/// (cache-served queries never consult them).
#[derive(Clone, Debug)]
struct FactsState {
    facts: Arc<GraphFacts>,
    dirty: bool,
}

/// One immutable **generation** of a session: the fragmentation, the
/// graph mirror, the planner facts and the compressed leg as of one
/// graph generation. Queries load the current snapshot once (a single
/// `Arc` clone under a short mutex) and run entirely against it;
/// [`SimEngine::apply_delta`] builds the *next* snapshot off the read
/// path and publishes it with one pointer swap — so a writer can never
/// block or tear a reader, and every answer is computed at exactly one
/// generation.
///
/// The graph mirror, facts and compressed leg stay **lazy** inside the
/// snapshot (interior mutexes guard one-shot rebuilds shared by the
/// snapshot's readers): a delete-heavy stream served from maintained
/// cache entries still never pays their `O(|G|)` cost.
#[derive(Debug)]
struct GenSnapshot {
    generation: u64,
    frag: Arc<Fragmentation>,
    graph: Mutex<GraphState>,
    facts: Mutex<FactsState>,
    compressed: Mutex<CompressedState>,
}

impl GenSnapshot {
    /// This generation's graph (the loaded graph plus every delta
    /// absorbed up to this generation), materializing pending ops.
    fn graph(&self) -> Arc<Graph> {
        self.graph.lock().materialize()
    }

    /// The planner facts at this generation, rebuilt on first use
    /// after a delta marked them dirty.
    fn facts(&self) -> Arc<GraphFacts> {
        let mut state = self.facts.lock();
        if state.dirty {
            state.facts = Arc::new(GraphFacts::compute(&self.graph(), &self.frag));
            state.dirty = false;
        }
        Arc::clone(&state.facts)
    }

    /// The compressed leg at this generation, rebuilding it first when
    /// a delta marked it dirty. `None` when compression is off.
    fn compressed_leg(&self) -> Option<Arc<CompressedLeg>> {
        let mut state = self.compressed.lock();
        let method = state.method?;
        if state.dirty || state.leg.is_none() {
            state.leg = Some(build_leg(
                &self.graph(),
                &self.frag,
                method,
                state.threshold,
            ));
            state.dirty = false;
        }
        state.leg.clone()
    }

    /// Prefixes a canonical pattern encoding with this snapshot's
    /// generation. Entries computed before a delta live under an older
    /// generation and can never be served again from a newer snapshot
    /// — the stale-hit guarantee clones rely on while sharing one
    /// cache.
    fn gen_key(&self, canon_key: &[u32]) -> Vec<u32> {
        let mut key = Vec::with_capacity(2 + canon_key.len());
        key.push(self.generation as u32);
        key.push((self.generation >> 32) as u32);
        key.extend_from_slice(canon_key);
        key
    }
}

/// An engine the planner resolved a query to (explicit choices
/// included, so the run path is uniform).
enum Resolved {
    Dgpm(DgpmConfig),
    Dgpmd,
    Dgpms,
    Dgpmt,
    MatchCentral,
    DisHhk,
    DMes,
    /// Answer `∅` with no distributed work (§5.1's cyclic-pattern
    /// short-circuit).
    TriviallyEmpty,
}

impl Resolved {
    fn name(&self) -> &'static str {
        match self {
            Resolved::Dgpm(cfg) => dgpm_display_name(cfg),
            Resolved::Dgpmd => EngineChoice::Dgpmd.name(),
            Resolved::Dgpms => EngineChoice::Dgpms.name(),
            Resolved::Dgpmt => EngineChoice::Dgpmt.name(),
            Resolved::MatchCentral => Algorithm::MatchCentral.name(),
            Resolved::DisHhk => Algorithm::DisHhk.name(),
            Resolved::DMes => Algorithm::DMes.name(),
            Resolved::TriviallyEmpty => EngineChoice::TriviallyEmpty.name(),
        }
    }
}

/// A session over one fragmented graph: build once, query many times,
/// from many threads — `SimEngine` is `Send + Sync`, and clones share
/// the same pattern-result cache.
///
/// Sessions are **mutable**: [`SimEngine::apply_delta`] absorbs a
/// batch of edge updates in place. Deletions drive distributed
/// incremental maintenance of the cached answers; insertions
/// Cumulative serving counters of one engine, shared by clones (one
/// cell per hosted session no matter how many handles serve it). The
/// serving layer scrapes these into its per-session metrics; the
/// engine itself only ever increments.
#[derive(Debug, Default)]
pub struct EngineStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    deltas: AtomicU64,
}

impl EngineStats {
    /// Queries answered (Boolean and batched queries included; a batch
    /// of `n` patterns counts `n`).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Queries answered from the pattern-result cache without a
    /// protocol run.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Delta batches applied (validation failures excluded).
    pub fn deltas(&self) -> u64 {
        self.deltas.load(Ordering::Relaxed)
    }

    fn add_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    fn add_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    fn add_deltas(&self, n: u64) {
        self.deltas.fetch_add(n, Ordering::Relaxed);
    }
}

/// conservatively invalidate them and the next query re-plans. Every
/// delta moves the session to a fresh graph **generation**; cache
/// entries are keyed under the generation they were computed at, so a
/// stale hit is impossible even though clones share the cache.
#[derive(Debug)]
pub struct SimEngine {
    /// The current generation snapshot. The mutex is held only long
    /// enough to clone or swap the `Arc` — readers never hold it
    /// while running a query, and writers never hold it while
    /// building the next generation.
    snap: Mutex<Arc<GenSnapshot>>,
    executor: ExecutorKind,
    cost: CostModel,
    planner: Planner,
    cache: Option<Arc<Mutex<PatternCache>>>,
    /// `0` = auto (one worker per available core).
    batch_workers: usize,
    /// Writer state: serializes [`Self::apply_delta`] /
    /// [`Self::cache_invalidate_all`] against each other (never
    /// against readers) and holds the per-handle maintenance states of
    /// the delta-maintained cache entries, keyed by canonical pattern
    /// encoding (without the generation prefix — the map itself is
    /// always current).
    maintained: Mutex<HashMap<Vec<u32>, MaintainedStates>>,
    /// Allocator of globally fresh generations, shared by clones so
    /// two diverging handles can never collide on a generation.
    gen_alloc: Arc<AtomicU64>,
    /// The socket cluster backing [`ExecutorKind::Socket`] sessions
    /// ([`SimEngineBuilder::build_socket`]); clones share it (runs are
    /// serialized on the cluster).
    cluster: Option<Arc<SocketCluster>>,
    /// The generation the shared cluster was last bootstrapped with.
    /// Socket dispatch requires an exact match, so a query whose
    /// snapshot a concurrent delta has already re-shipped (or not yet
    /// re-shipped) falls back to the in-process virtual executor
    /// instead of computing on the wrong worker graph.
    cluster_gen: Arc<AtomicU64>,
    /// Cumulative serving counters, shared by clones.
    stats: Arc<EngineStats>,
}

impl Clone for SimEngine {
    /// Clones share the pattern-result cache, the generation allocator
    /// and the (immutable) current snapshot; maintenance states are
    /// **not** carried over (the clone rebuilds them from cached rows
    /// at its next delta), and each handle publishes its own future
    /// snapshots — a delta applied through one handle is invisible to
    /// the other.
    fn clone(&self) -> Self {
        SimEngine {
            snap: Mutex::new(self.snapshot()),
            executor: self.executor,
            cost: self.cost.clone(),
            planner: self.planner.clone(),
            cache: self.cache.clone(),
            batch_workers: self.batch_workers,
            maintained: Mutex::new(HashMap::new()),
            gen_alloc: Arc::clone(&self.gen_alloc),
            cluster: self.cluster.clone(),
            cluster_gen: Arc::clone(&self.cluster_gen),
            stats: Arc::clone(&self.stats),
        }
    }
}

/// Compile-time proof that the session engine can be shared across
/// serving threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimEngine>();
};

impl SimEngine {
    /// Starts building an engine over `graph` fragmented as `frag`.
    /// The graph is only read during [`SimEngineBuilder::build`] (for
    /// the structural facts); the engine itself holds the
    /// fragmentation.
    pub fn builder(graph: &Graph, frag: Arc<Fragmentation>) -> SimEngineBuilder<'_> {
        SimEngineBuilder {
            graph,
            frag,
            executor: ExecutorKind::Virtual,
            cost: CostModel::default(),
            planner: Planner::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            batch_workers: 0,
            compression: None,
            compression_threshold: 0.5,
        }
    }

    /// The current generation snapshot: one `Arc` clone under a mutex
    /// held for just that clone. Every query loads the snapshot
    /// exactly once and runs entirely against it.
    fn snapshot(&self) -> Arc<GenSnapshot> {
        Arc::clone(&self.snap.lock())
    }

    /// The cached structural facts the planner uses, recomputed
    /// lazily after an [`Self::apply_delta`] batch (queries served
    /// from maintained cache entries never pay for them).
    pub fn facts(&self) -> Arc<GraphFacts> {
        self.snapshot().facts()
    }

    /// The fragmentation of the current generation snapshot.
    pub fn fragmentation(&self) -> Arc<Fragmentation> {
        Arc::clone(&self.snapshot().frag)
    }

    /// The engine's current graph (the loaded graph plus every applied
    /// delta), materializing any pending delta ops first.
    pub fn graph(&self) -> Arc<Graph> {
        self.snapshot().graph()
    }

    /// This handle's graph generation: bumped by every
    /// [`Self::apply_delta`] and [`Self::cache_invalidate_all`].
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Cumulative serving counters, shared with every clone of this
    /// handle.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The canonical cache key of `q` plus the canonical position of
    /// every original query node (`pos_of[u]` is where node `u`
    /// landed). [`crate::delta::MaintainedDiff`] tags entries with
    /// exactly this key and speaks canonical positions, so consumers
    /// of [`DeltaReport::maintained_diffs`] (live match subscriptions)
    /// use this to translate per-entry diffs back into a submitted
    /// pattern's numbering.
    pub fn pattern_canon(q: &Pattern) -> (Vec<u32>, Vec<u16>) {
        let canon = cache::canonicalize(q);
        (canon.key, canon.pos_of)
    }

    /// Counters of the pattern-result cache; `None` when the cache is
    /// disabled. `generation` reports this handle's current graph
    /// generation so operators can observe invalidation churn.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| {
            let mut stats = c.lock().stats();
            stats.generation = self.generation();
            stats
        })
    }

    /// Drops every pattern-result cache entry **of this handle** (its
    /// current generation) and moves it to a fresh generation, so
    /// nothing computed before this call can be served from the cache
    /// again. Entries stored by diverged clones under their own
    /// generations are untouched — each handle can only ever see its
    /// own generation's entries.
    ///
    /// Like [`Self::apply_delta`] this is a *writer*: it publishes a
    /// fresh snapshot and never blocks in-flight queries, which keep
    /// answering (and hitting the cache) at the generation they
    /// loaded.
    pub fn cache_invalidate_all(&self) {
        let mut maintained = self.maintained.lock();
        let snap = self.snapshot();
        if let Some(cache) = &self.cache {
            cache.lock().remove_with_prefix(&snap.gen_key(&[]));
        }
        maintained.clear();
        let next = GenSnapshot {
            generation: self.gen_alloc.fetch_add(1, Ordering::SeqCst),
            frag: Arc::clone(&snap.frag),
            graph: Mutex::new(snap.graph.lock().clone()),
            facts: Mutex::new(snap.facts.lock().clone()),
            compressed: Mutex::new(snap.compressed.lock().clone()),
        };
        *self.snap.lock() = Arc::new(next);
    }

    /// The compressed leg built for the session, if any (lazily
    /// rebuilt after graph deltas).
    pub fn compression_note(&self) -> Option<CompressedNote> {
        self.snapshot().compressed_leg().map(|leg| leg.note())
    }

    /// Whether [`Algorithm::Auto`] queries currently answer on `Gc`
    /// (a leg was built and its ratio cleared the threshold).
    pub fn compression_active(&self) -> bool {
        self.snapshot()
            .compressed_leg()
            .is_some_and(|leg| leg.active)
    }

    /// Plans `q` without running it: which engine would serve it, and
    /// why.
    pub fn plan(&self, q: &Pattern) -> Result<PlanExplanation, DgsError> {
        let qf = PatternFacts::compute(q);
        self.planner
            .plan(&self.snapshot().facts(), &qf)
            .map(|(_, plan)| plan)
    }

    /// Runs `q` with the planner-chosen engine.
    pub fn query(&self, q: &Pattern) -> Result<RunReport, DgsError> {
        self.query_with(&Algorithm::Auto, q)
    }

    /// Runs `q` with an explicit engine (checked, not asserted).
    ///
    /// [`Algorithm::Auto`] queries consult the pattern-result cache
    /// first: a hit is served without any protocol run
    /// (`metrics.cache_hits = 1`, zero messages). Explicit engine
    /// requests always run — callers asking for a specific engine are
    /// measuring it.
    pub fn query_with(&self, algorithm: &Algorithm, q: &Pattern) -> Result<RunReport, DgsError> {
        self.stats.add_queries(1);
        let snap = self.snapshot();
        let (canon, hit) = self.cache_lookup(&snap, algorithm, q);
        if let (Some(canon), Some(cached)) = (&canon, hit) {
            self.stats.add_cache_hits(1);
            return Ok(Self::report_from_cache(q, canon, &cached));
        }
        // A single query gets the whole worker budget for intra-query
        // (per-fragment) parallelism.
        let intra = self.effective_workers(snap.frag.num_sites());
        let mut report = self.run_one(&snap, algorithm, q, intra)?;
        Self::charge_broadcast(&mut report.metrics, &snap.frag, std::iter::once(q));
        if let Some(canon) = canon {
            self.cache_store(&snap, canon, &report);
        }
        Ok(report)
    }

    /// Runs a Boolean query (§2.1) with the planner-chosen engine.
    ///
    /// For the `dGPM` family this uses the dedicated Boolean gather
    /// path (`O(|F|)` bytes of result traffic, §4.1); other engines
    /// run normally and reduce their relation.
    pub fn query_boolean(&self, q: &Pattern) -> Result<BooleanReport, DgsError> {
        self.query_boolean_with(&Algorithm::Auto, q)
    }

    /// Boolean query with an explicit engine.
    ///
    /// [`Algorithm::Auto`] consults the pattern-result cache. The
    /// plain Boolean gather path doesn't materialize a relation, so it
    /// reads the cache without storing; the compressed-leg path runs
    /// data-selecting on `Gc` anyway, so its relation **is** stored —
    /// follow-up queries of either kind become hits.
    pub fn query_boolean_with(
        &self,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<BooleanReport, DgsError> {
        self.stats.add_queries(1);
        let snap = self.snapshot();
        let (canon, hit) = self.cache_lookup(&snap, algorithm, q);
        if let (Some(canon), Some(cached)) = (&canon, hit) {
            self.stats.add_cache_hits(1);
            let report = Self::report_from_cache(q, canon, &cached);
            return Ok(BooleanReport {
                is_match: report.is_match,
                metrics: report.metrics,
                algorithm: report.algorithm,
                plan: report.plan,
            });
        }
        let intra = self.effective_workers(snap.frag.num_sites());
        if self.uses_compressed(&snap, algorithm) {
            let mut report = self.run_one(&snap, algorithm, q, intra)?;
            Self::charge_broadcast(&mut report.metrics, &snap.frag, std::iter::once(q));
            if let Some(canon) = canon {
                self.cache_store(&snap, canon, &report);
            }
            return Ok(BooleanReport {
                is_match: report.is_match,
                metrics: report.metrics,
                algorithm: report.algorithm,
                plan: report.plan,
            });
        }
        let (resolved, plan) = self.resolve(&snap, algorithm, q)?;
        let qa = Arc::new(q.clone());
        let (is_match, mut metrics) = match &resolved {
            Resolved::TriviallyEmpty => (false, RunMetrics::default()),
            Resolved::Dgpm(cfg) => {
                let (coord, sites) =
                    dgpm::build_with_mode(&snap.frag, &qa, cfg.clone(), QueryMode::Boolean);
                let o = self.drive(&snap, &snap.frag, resolved.name(), intra, coord, sites)?;
                let b = o
                    .coordinator
                    .boolean
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without a Boolean verdict".into(),
                    })?;
                (b, o.metrics)
            }
            other => {
                let (relation, metrics) =
                    self.run_resolved(&snap, &snap.frag, other, &qa, intra)?;
                (relation.is_total(), metrics)
            }
        };
        // Same uniform accounting as `query` — the Boolean path used
        // to skip the query broadcast.
        Self::charge_broadcast(&mut metrics, &snap.frag, std::iter::once(q));
        Ok(BooleanReport {
            is_match,
            metrics,
            algorithm: resolved.name(),
            plan,
        })
    }

    /// Runs many queries against the session, amortizing the query
    /// broadcast: the whole batch is posted to each site once (`|F|`
    /// control messages total), instead of `|F|` per query. Per-query
    /// reports keep their own engine-run metrics; `total` adds the
    /// batched broadcast.
    ///
    /// The batch executes across a scoped worker pool
    /// (`min(available cores, batch length)` workers unless
    /// [`SimEngineBuilder::batch_workers`] overrides it). Results are
    /// **scheduling-independent**: the cache is probed sequentially up
    /// front against the batch-start state, each virtual-time run is
    /// deterministic in itself, and metrics are merged in input order
    /// — so a 1-worker and an N-worker run of the same batch report
    /// the same answers, plans and shipment metrics.
    pub fn query_batch(&self, patterns: &[Pattern]) -> BatchReport {
        self.query_batch_with(&Algorithm::Auto, patterns)
    }

    /// Batched run with an explicit engine; see [`Self::query_batch`].
    pub fn query_batch_with(&self, algorithm: &Algorithm, patterns: &[Pattern]) -> BatchReport {
        let n = patterns.len();
        self.stats.add_queries(n as u64);
        let mut slots: Vec<Option<Result<RunReport, DgsError>>> = (0..n).map(|_| None).collect();

        // The whole batch runs against one generation snapshot: a
        // concurrent delta cannot make two queries of the same batch
        // observe different graphs.
        let snap = self.snapshot();

        // Phase 1 — sequential cache probe against the batch-start
        // cache state (deterministic regardless of worker count).
        // Duplicate patterns within one batch all miss together and
        // all run: hits are defined by the state when the batch
        // arrived, not by intra-batch scheduling.
        let mut canons: Vec<Option<CanonicalPattern>> = Vec::with_capacity(n);
        for (i, q) in patterns.iter().enumerate() {
            let (canon, hit) = self.cache_lookup(&snap, algorithm, q);
            if let (Some(canon), Some(cached)) = (&canon, hit) {
                self.stats.add_cache_hits(1);
                slots[i] = Some(Ok(Self::report_from_cache(q, canon, &cached)));
            }
            canons.push(canon);
        }

        // Phase 2 — run the misses on the worker pool.
        let worklist: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        let workers = self.effective_workers(worklist.len());
        // Inside a batch the pool is spent *across* entries; each run
        // keeps `intra = 1` so the two levels never oversubscribe and
        // a 1-worker batch stays the fully sequential baseline.
        if workers <= 1 {
            for &i in &worklist {
                slots[i] = Some(self.run_one(&snap, algorithm, &patterns[i], 1));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = crossbeam::channel::unbounded();
            let worklist_ref = &worklist;
            let next_ref = &next;
            let snap_ref = &snap;
            crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move |_| loop {
                        let slot = next_ref.fetch_add(1, Ordering::Relaxed);
                        if slot >= worklist_ref.len() {
                            break;
                        }
                        let i = worklist_ref[slot];
                        let report = self.run_one(snap_ref, algorithm, &patterns[i], 1);
                        if tx.send((i, report)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                while let Ok((i, report)) = rx.recv() {
                    slots[i] = Some(report);
                }
            })
            .expect("batch worker pool");
        }

        // Phase 3 — populate the cache in input order (identical to
        // what a single worker would have inserted).
        for &i in &worklist {
            if let (Some(Some(Ok(report))), Some(canon)) = (slots.get(i), canons[i].take()) {
                self.cache_store(&snap, canon, report);
            }
        }

        // Phase 4 — order-stable aggregation: per-query metrics merge
        // in input order, then one broadcast posting exactly the
        // patterns that ran a protocol (cache hits ship nothing).
        let reports: Vec<Result<RunReport, DgsError>> = slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect();
        let mut total = RunMetrics::default();
        for r in reports.iter().flatten() {
            total.merge(&r.metrics);
        }
        let posted: Vec<&Pattern> = worklist
            .iter()
            .filter(|&&i| reports[i].is_ok())
            .map(|&i| &patterns[i])
            .collect();
        if !posted.is_empty() {
            Self::charge_broadcast(&mut total, &snap.frag, posted);
        }
        BatchReport { reports, total }
    }

    /// Resolves the batch worker count: the builder override, or one
    /// worker per available core, never more than there is work.
    fn effective_workers(&self, work: usize) -> usize {
        let configured = if self.batch_workers > 0 {
            self.batch_workers
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        };
        configured.min(work).max(1)
    }

    /// Absorbs a batch of edge updates into the session **in place**:
    /// no re-partitioning, no session rebuild, no wholesale cache
    /// flush.
    ///
    /// * The fragmentation is maintained incrementally
    ///   ([`Fragmentation::apply_delta`]): each op routes to the
    ///   fragment owning its source node, virtual nodes are
    ///   created/retired and in-node subscriptions added/dropped as
    ///   crossing edges appear and disappear.
    /// * **Every non-empty batch** keeps the cached answers *valid*:
    ///   each current-generation cache entry is promoted to
    ///   distributed incremental maintenance and re-stored under the
    ///   fresh generation with [`PlanExplanation::incremental`]
    ///   recording the leg. A follow-up query is a cache hit: zero
    ///   full re-evaluations.
    ///   - *Deletions* shrink the relation: each site replays the HHK
    ///     counter update on its fragment ([`delta::DeltaSiteState`])
    ///     and ships in-node falsifications to its subscribers exactly
    ///     like dGPM data messages, and the revoked pairs leave the
    ///     stored rows. A deletion-only batch runs just this phase.
    ///   - *Insertions* grow it: the sites mark the affected area,
    ///     optimistically revive label-compatible pairs, and re-refine
    ///     with non-affected candidacy frozen; resurrected pairs
    ///     rejoin the stored rows. An insertion-only batch passes
    ///     through an empty deletion phase; a mixed batch composes
    ///     both (deletions first, on the pre-insertion adjacency).
    ///
    /// The exact per-entry diffs land in
    /// [`DeltaReport::maintained_diffs`] — the feed a live match
    /// subscription pushes. The one exception to "everything
    /// maintains": a `trivial-∅` entry whose pattern has nodes that
    /// cannot reach a cycle of `Q`. Its stored `∅` rows are the
    /// answer convention, **not** the maximum fixpoint (sink-reaching
    /// nodes keep label-compatible matches on any graph), so an
    /// insertion batch — which may close a graph cycle — has no
    /// valid baseline to repair from. Such entries are dropped and
    /// counted in [`DeltaReport::invalidated_entries`]; the next
    /// query re-evaluates under fresh facts (and a live subscription
    /// falls back to re-query + set-diff, staying exact).
    ///
    /// The compressed leg, if configured, is marked dirty and lazily
    /// rebuilt by the next query that wants it.
    ///
    /// Ops already satisfied (inserting a present edge, deleting an
    /// absent one) are skipped and counted in
    /// [`DeltaReport::ignored`], which makes re-applying a delta a
    /// no-op. An edge listed for both insertion and deletion, or one
    /// referencing a node outside the graph, is
    /// [`DgsError::InvalidDelta`].
    ///
    /// Deltas take `&self`: the next generation snapshot is built
    /// entirely **off the read path** and published with a single
    /// pointer swap, so in-flight queries keep answering at the
    /// generation they loaded and never block behind this writer.
    /// Concurrent writers on the same handle serialize against each
    /// other.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<DeltaReport, DgsError> {
        // One writer at a time; readers keep serving the current
        // snapshot untouched while this builds the next one.
        let mut maintained = self.maintained.lock();
        let snap = self.snapshot();
        // Validate and normalize the batch. Presence checks go through
        // the fragmentation (`O(log deg)` per op), so a delta never
        // forces the graph mirror to materialize.
        let n = snap.frag.assignment().len() as u32;
        for &(u, v) in delta.insert_edges.iter().chain(&delta.delete_edges) {
            if u.0 >= n || v.0 >= n {
                return Err(DgsError::InvalidDelta {
                    reason: format!("edge ({u}, {v}) references a node outside the {n}-node graph"),
                });
            }
        }
        let mut inserts = delta.insert_edges.clone();
        inserts.sort_unstable();
        inserts.dedup();
        let mut deletes = delta.delete_edges.clone();
        deletes.sort_unstable();
        deletes.dedup();
        if let Some(&(u, v)) = inserts.iter().find(|e| deletes.binary_search(e).is_ok()) {
            return Err(DgsError::InvalidDelta {
                reason: format!("edge ({u}, {v}) is listed for both insertion and deletion"),
            });
        }
        let listed = inserts.len() + deletes.len();
        inserts.retain(|&(u, v)| !snap.frag.has_edge(u, v));
        deletes.retain(|&(u, v)| snap.frag.has_edge(u, v));

        let mut report = DeltaReport {
            inserted: inserts.len(),
            deleted: deletes.len(),
            ignored: listed - inserts.len() - deletes.len(),
            crossing_inserted: 0,
            crossing_deleted: 0,
            virtuals_created: 0,
            virtuals_retired: 0,
            maintained_entries: 0,
            invalidated_entries: 0,
            revoked_pairs: 0,
            resurrected_pairs: 0,
            generation: snap.generation,
            prev_generation: snap.generation,
            metrics: RunMetrics::default(),
            per_site: (0..snap.frag.num_sites())
                .map(|site| SiteDeltaMetrics {
                    site,
                    ..SiteDeltaMetrics::default()
                })
                .collect(),
            maintained_diffs: Vec::new(),
        };
        if inserts.is_empty() && deletes.is_empty() {
            // Everything was already satisfied: the graph is unchanged,
            // so the generation — and every cached answer — stays
            // valid.
            self.stats.add_deltas(1);
            return Ok(report);
        }
        let old_prefix = snap.gen_key(&[]);

        // Promote current-generation cache entries to maintenance —
        // every batch shape is maintainable — building missing
        // per-site counter states from the *pre-delta* fragments and
        // the cached rows.
        let mut promoted: Vec<(Vec<u32>, Pattern, Arc<CachedResult>)> = Vec::new();
        if let Some(cache) = &self.cache {
            let entries = cache.lock().entries_with_prefix(&old_prefix);
            let live: HashSet<&[u32]> = entries.iter().map(|(k, _)| &k[2..]).collect();
            // States whose entry the LRU evicted have no rows left
            // to maintain.
            maintained.retain(|k, _| live.contains(k.as_slice()));
            for (key, entry) in entries {
                let canon_key = key[2..].to_vec();
                let pattern = cache::decode_pattern(&canon_key);
                // A `trivial-∅` entry stores the answer *convention*,
                // not the maximum fixpoint. When every pattern node
                // reaches a cycle of `Q` the two coincide (the
                // fixpoint on an acyclic graph is genuinely empty)
                // and the entry maintains like any other; otherwise
                // sink-reaching nodes keep label-compatible matches
                // the `∅` rows never held, so insertions — which may
                // close a graph cycle — have no valid baseline to
                // repair from. Drop the entry and let the next query
                // re-evaluate under fresh facts.
                if !inserts.is_empty()
                    && entry.algorithm == EngineChoice::TriviallyEmpty.name()
                    && !crate::plan::empty_rows_are_fixpoint(&pattern)
                {
                    maintained.remove(&canon_key);
                    report.invalidated_entries += 1;
                    continue;
                }
                if !maintained.contains_key(&canon_key) {
                    let sites = (0..snap.frag.num_sites())
                        .map(|s| {
                            DeltaSiteState::from_relation(&snap.frag, s, &pattern, &entry.rows)
                        })
                        .collect();
                    maintained.insert(
                        canon_key.clone(),
                        MaintainedStates {
                            sites,
                            deletions_absorbed: 0,
                            insertions_absorbed: 0,
                            maintenance_runs: 0,
                        },
                    );
                }
                promoted.push((canon_key, pattern, entry));
            }
        }

        // Build the **next generation** entirely off the read path:
        // a fresh fragmentation with the ops applied, the graph mirror
        // with the ops pending, dirty facts and a dirty compressed leg
        // (all rebuilt lazily — a delete-heavy stream served from
        // maintained entries never pays their `O(|G|)` cost).
        let ops: Vec<EdgeOp> = inserts
            .iter()
            .map(|&(u, v)| EdgeOp::Insert(u, v))
            .chain(deletes.iter().map(|&(u, v)| EdgeOp::Delete(u, v)))
            .collect();
        let mut next_frag = (*snap.frag).clone();
        let frag_stats = next_frag.apply_delta(&ops);
        let next_frag = Arc::new(next_frag);
        report.crossing_inserted = frag_stats.crossing_inserts;
        report.crossing_deleted = frag_stats.crossing_deletes;
        report.virtuals_created = frag_stats.virtuals_created;
        report.virtuals_retired = frag_stats.virtuals_retired;
        let mut graph_state = snap.graph.lock().clone();
        graph_state.pending.extend_from_slice(&ops);
        let generation = self.gen_alloc.fetch_add(1, Ordering::SeqCst);
        report.generation = generation;
        let next = Arc::new(GenSnapshot {
            generation,
            frag: Arc::clone(&next_frag),
            graph: Mutex::new(graph_state),
            facts: Mutex::new(FactsState {
                facts: Arc::clone(&snap.facts.lock().facts),
                dirty: true,
            }),
            compressed: Mutex::new(CompressedState {
                dirty: true,
                ..snap.compressed.lock().clone()
            }),
        });

        // Distributed incremental maintenance per cached entry:
        // revoking the falsified pairs from the stored rows and
        // re-inserting the resurrected ones keeps every entry exact,
        // whatever the batch shape.
        for (canon_key, pattern, entry) in promoted {
            let states = maintained.remove(&canon_key).expect("promoted above");
            let (coord, sites) =
                delta::build_maintenance(&next_frag, &pattern, states.sites, &deletes, &inserts);
            // Maintenance stays in-process even on socket sessions:
            // the per-site counter states must come back into the
            // session, and remote state does not.
            let kind = match self.executor {
                ExecutorKind::Socket => ExecutorKind::Virtual,
                k => k,
            };
            let o = dgs_net::run(kind, &self.cost, coord, sites);
            let mut rows = entry.rows.clone();
            for var in &o.coordinator.revoked {
                let row = &mut rows[var.q as usize];
                if let Ok(pos) = row.binary_search(&var.node_id()) {
                    row.remove(pos);
                }
            }
            for var in &o.coordinator.resurrected {
                let row = &mut rows[var.q as usize];
                if let Err(pos) = row.binary_search(&var.node_id()) {
                    row.insert(pos, var.node_id());
                }
            }
            report.revoked_pairs += o.coordinator.revoked.len() as u64;
            report.resurrected_pairs += o.coordinator.resurrected.len() as u64;
            report.maintained_diffs.push(delta::MaintainedDiff {
                canon_key: canon_key.clone(),
                revoked: o.coordinator.revoked.clone(),
                resurrected: o.coordinator.resurrected.clone(),
            });
            report.metrics.merge(&o.metrics);
            let mut sites_back = Vec::with_capacity(o.sites.len());
            for site in o.sites {
                report.per_site[site.stats().site].merge(site.stats());
                sites_back.push(site.into_state());
            }
            let absorbed = states.deletions_absorbed + deletes.len() as u64;
            let ins_absorbed = states.insertions_absorbed + inserts.len() as u64;
            let runs = states.maintenance_runs + 1;
            let mut plan = entry.plan.clone();
            if plan.incremental.is_none() {
                plan.reasons.push(
                    "maintained under edge updates by the distributed incremental \
                     update (no full re-evaluation)"
                        .into(),
                );
            }
            plan.incremental = Some(IncrementalNote {
                deletions_absorbed: absorbed,
                insertions_absorbed: ins_absorbed,
                maintenance_runs: runs,
            });
            if let Some(cache) = &self.cache {
                cache.lock().insert(
                    next.gen_key(&canon_key),
                    Arc::new(CachedResult {
                        rows,
                        algorithm: entry.algorithm,
                        plan,
                    }),
                );
            }
            maintained.insert(
                canon_key,
                MaintainedStates {
                    sites: sites_back,
                    deletions_absorbed: absorbed,
                    insertions_absorbed: ins_absorbed,
                    maintenance_runs: runs,
                },
            );
            report.maintained_entries += 1;
        }

        // A socket session's workers were bootstrapped with the
        // pre-delta graph: re-ship the session so later runs execute
        // against the mutated graph (this materializes the graph
        // mirror — delta batches on socket sessions pay the reship).
        // The cluster generation flips **before** the snapshot
        // publishes: in the window between the two, queries still on
        // the old snapshot fall back to the in-process executor
        // instead of running on the freshly re-shipped worker graph.
        if let Some(cluster) = &self.cluster {
            let blob = crate::remote::encode_bootstrap(&next.graph(), &next_frag);
            cluster
                .rebootstrap(&blob)
                .map_err(|e| DgsError::from_exec("socket-cluster", e))?;
            self.cluster_gen.store(generation, Ordering::SeqCst);
        }

        // Publish: a single pointer swap makes the next generation the
        // one every subsequent query loads.
        *self.snap.lock() = next;
        self.stats.add_deltas(1);
        Ok(report)
    }

    /// Resolves `algorithm` for `q`: the planner decides for
    /// [`Algorithm::Auto`]; explicit requests are checked against the
    /// cached facts (the old API `assert!`ed these).
    fn resolve(
        &self,
        snap: &GenSnapshot,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> Result<(Resolved, PlanExplanation), DgsError> {
        let qf = PatternFacts::compute(q);
        let facts = snap.facts();
        match algorithm {
            Algorithm::Auto => {
                let (choice, plan) = self.planner.plan(&facts, &qf)?;
                Ok((Self::resolved_from_choice(choice), plan))
            }
            Algorithm::Dgpm(cfg) => {
                self.planner.validate_pattern(&qf)?;
                let r = Resolved::Dgpm(cfg.clone());
                let plan = PlanExplanation::forced(r.name());
                Ok((r, plan))
            }
            Algorithm::Dgpmd => {
                if !qf.is_dag && facts.is_dag {
                    // §5.1: a cyclic pattern on a DAG graph can never
                    // match — no distributed work needed.
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons.push(
                        "dGPMd requested with a cyclic pattern on an acyclic graph: Q(G) = ∅"
                            .into(),
                    );
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                self.planner
                    .check_explicit(EngineChoice::Dgpmd, &facts, &qf)?;
                Ok((Resolved::Dgpmd, PlanExplanation::forced("dGPMd")))
            }
            Algorithm::Dgpms => {
                self.planner
                    .check_explicit(EngineChoice::Dgpms, &facts, &qf)?;
                Ok((Resolved::Dgpms, PlanExplanation::forced("dGPMs")))
            }
            Algorithm::Dgpmt => {
                self.planner
                    .check_explicit(EngineChoice::Dgpmt, &facts, &qf)?;
                if !qf.is_dag {
                    // Tree graphs are acyclic, so a cyclic pattern is
                    // trivially unmatched (and the tree protocol only
                    // schedules DAG patterns).
                    let mut plan = PlanExplanation::forced("trivial-∅");
                    plan.reasons
                        .push("dGPMt requested with a cyclic pattern on a tree: Q(G) = ∅".into());
                    return Ok((Resolved::TriviallyEmpty, plan));
                }
                Ok((Resolved::Dgpmt, PlanExplanation::forced("dGPMt")))
            }
            Algorithm::MatchCentral => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::MatchCentral, PlanExplanation::forced("Match")))
            }
            Algorithm::DisHhk => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DisHhk, PlanExplanation::forced("disHHK")))
            }
            Algorithm::DMes => {
                self.planner.validate_pattern(&qf)?;
                Ok((Resolved::DMes, PlanExplanation::forced("dMes")))
            }
        }
    }

    /// The uniform mapping from a planner choice to a runnable engine.
    fn resolved_from_choice(choice: EngineChoice) -> Resolved {
        match choice {
            EngineChoice::Dgpmt => Resolved::Dgpmt,
            EngineChoice::Dgpmd => Resolved::Dgpmd,
            EngineChoice::Dgpms => Resolved::Dgpms,
            EngineChoice::Dgpm => Resolved::Dgpm(DgpmConfig::optimized()),
            EngineChoice::TriviallyEmpty => Resolved::TriviallyEmpty,
        }
    }

    /// Whether this query will be answered on the compressed leg.
    fn uses_compressed(&self, snap: &GenSnapshot, algorithm: &Algorithm) -> bool {
        matches!(algorithm, Algorithm::Auto) && snap.compressed_leg().is_some_and(|leg| leg.active)
    }

    /// Resolves and runs one query without the broadcast charge (the
    /// caller accounts it: per-query for [`Self::query_with`], once
    /// per batch for [`Self::query_batch_with`]). `Auto` queries route
    /// to the compressed leg when it is active.
    fn run_one(
        &self,
        snap: &GenSnapshot,
        algorithm: &Algorithm,
        q: &Pattern,
        intra: usize,
    ) -> Result<RunReport, DgsError> {
        let leg = if matches!(algorithm, Algorithm::Auto) {
            snap.compressed_leg()
        } else {
            None
        };
        if let Some(leg) = leg.as_ref().filter(|leg| leg.active) {
            let qf = PatternFacts::compute(q);
            let (choice, mut plan) = self.planner.plan(&leg.facts, &qf)?;
            plan.compressed = Some(leg.note());
            plan.reasons.push(format!(
                "answering on Gc ({} classes via {}): ratio {:.2} clears threshold {:.2}; \
                 relation decompressed to G node ids",
                leg.graph.class_count(),
                leg.method.name(),
                leg.ratio,
                leg.threshold
            ));
            let resolved = Self::resolved_from_choice(choice);
            let qa = Arc::new(q.clone());
            let (class_relation, metrics) =
                self.run_resolved(snap, &leg.frag, &resolved, &qa, intra)?;
            let relation = leg.graph.expand(&class_relation);
            return Ok(RunReport::assemble(
                relation,
                metrics,
                resolved.name(),
                plan,
            ));
        }
        let (resolved, mut plan) = self.resolve(snap, algorithm, q)?;
        if let Some(leg) = leg.filter(|leg| !leg.active) {
            plan.reasons.push(format!(
                "compressed leg built ({} classes via {}) but ratio {:.2} exceeds \
                 threshold {:.2} — answering on G",
                leg.graph.class_count(),
                leg.method.name(),
                leg.ratio,
                leg.threshold
            ));
        }
        let qa = Arc::new(q.clone());
        let (relation, metrics) = self.run_resolved(snap, &snap.frag, &resolved, &qa, intra)?;
        Ok(RunReport::assemble(
            relation,
            metrics,
            resolved.name(),
            plan,
        ))
    }

    /// Canonicalizes `q` and probes the cache at `snap`'s generation.
    /// Returns `(None, None)` when caching does not apply (explicit
    /// engine, or cache off).
    fn cache_lookup(
        &self,
        snap: &GenSnapshot,
        algorithm: &Algorithm,
        q: &Pattern,
    ) -> (Option<CanonicalPattern>, Option<Arc<CachedResult>>) {
        if !matches!(algorithm, Algorithm::Auto) {
            return (None, None);
        }
        let Some(cache) = &self.cache else {
            return (None, None);
        };
        let canon = cache::canonicalize(q);
        let hit = cache.lock().get(&snap.gen_key(&canon.key));
        (Some(canon), hit)
    }

    /// Re-expresses a cached canonical answer in the submitted
    /// pattern's numbering. The hit ships nothing: fresh metrics with
    /// `cache_hits = 1` and zero messages.
    fn report_from_cache(
        q: &Pattern,
        canon: &CanonicalPattern,
        cached: &CachedResult,
    ) -> RunReport {
        let rows: Vec<Vec<dgs_graph::NodeId>> = q
            .nodes()
            .map(|u| cached.rows[canon.pos_of[u.index()] as usize].clone())
            .collect();
        let mut plan = cached.plan.clone();
        plan.reasons
            .push("served from the pattern-result cache (no protocol run)".into());
        RunReport::assemble(
            MatchRelation::from_lists(rows),
            RunMetrics {
                cache_hits: 1,
                ..RunMetrics::default()
            },
            cached.algorithm,
            plan,
        )
    }

    /// Stores a freshly computed answer under its canonical key at
    /// `snap`'s generation, rows permuted into canonical node order.
    fn cache_store(&self, snap: &GenSnapshot, canon: CanonicalPattern, report: &RunReport) {
        let Some(cache) = &self.cache else {
            return;
        };
        let rows: Vec<Vec<dgs_graph::NodeId>> = canon
            .node_at()
            .iter()
            .map(|&u| report.relation.matches_of(dgs_graph::QNodeId(u)).to_vec())
            .collect();
        cache.lock().insert(
            snap.gen_key(&canon.key),
            Arc::new(CachedResult {
                rows,
                algorithm: report.algorithm,
                plan: report.plan.clone(),
            }),
        );
    }

    /// The socket cluster backing this session, when built with
    /// [`SimEngineBuilder::build_socket`].
    pub fn socket_cluster(&self) -> Option<&Arc<SocketCluster>> {
        self.cluster.as_ref()
    }

    /// Runs one protocol under the session's executor, with typed
    /// errors. Socket sessions dispatch to the bootstrapped cluster —
    /// but only for the snapshot's session fragmentation at the
    /// generation the cluster was last bootstrapped with: the
    /// compressed leg's `Gc` was never shipped to the workers, and a
    /// snapshot a concurrent delta has already (or not yet) re-shipped
    /// must not run on the wrong worker graph — both fall back to the
    /// in-process virtual executor.
    /// `intra` is the intra-query worker budget: the virtual
    /// executor's Phase-1 site evaluations fan out over up to that
    /// many threads ([`dgs_net::try_run_pooled`]); reports stay
    /// bit-identical to an `intra = 1` run. The threaded and socket
    /// executors are inherently per-site parallel and ignore it.
    fn drive<M, C, S>(
        &self,
        snap: &GenSnapshot,
        frag: &Arc<Fragmentation>,
        algorithm: &'static str,
        intra: usize,
        coordinator: C,
        sites: Vec<S>,
    ) -> Result<RunOutcome<C, S>, DgsError>
    where
        M: SocketMsg,
        C: CoordinatorLogic<M> + Send,
        S: SiteLogic<M> + RemoteSpec + Send,
    {
        let dispatchable = Arc::ptr_eq(frag, &snap.frag)
            && self.cluster_gen.load(Ordering::SeqCst) == snap.generation;
        let (kind, cluster) = match (self.executor, &self.cluster) {
            (ExecutorKind::Socket, Some(cl)) if dispatchable => (ExecutorKind::Socket, Some(&**cl)),
            (ExecutorKind::Socket, _) => (ExecutorKind::Virtual, None),
            (kind, _) => (kind, None),
        };
        dgs_net::try_run_pooled(kind, &self.cost, cluster, intra, coordinator, sites)
            .map_err(|e| DgsError::from_exec(algorithm, e))
    }

    /// Runs a resolved engine on `frag` and returns
    /// `(relation, metrics)`.
    fn run_resolved(
        &self,
        snap: &GenSnapshot,
        frag: &Arc<Fragmentation>,
        resolved: &Resolved,
        q: &Arc<Pattern>,
        intra: usize,
    ) -> Result<(MatchRelation, RunMetrics), DgsError> {
        // One shape per engine: build the actors, run them, take the
        // coordinator's answer.
        macro_rules! drive {
            ($build:expr) => {{
                let (coord, sites) = $build;
                let o = self.drive(snap, frag, resolved.name(), intra, coord, sites)?;
                let answer = o
                    .coordinator
                    .answer
                    .ok_or_else(|| DgsError::ExecutorFailed {
                        algorithm: resolved.name(),
                        reason: "coordinator finished without an answer".into(),
                    })?;
                Ok((answer, o.metrics))
            }};
        }
        match resolved {
            Resolved::TriviallyEmpty => {
                Ok((MatchRelation::empty(q.node_count()), RunMetrics::default()))
            }
            Resolved::Dgpm(cfg) => drive!(dgpm::build(frag, q, cfg.clone())),
            Resolved::Dgpmd => drive!(dgpmd::build(frag, q)),
            Resolved::Dgpms => drive!(dgpms::build(frag, q)),
            Resolved::Dgpmt => drive!(dgpmt::build(frag, q)),
            Resolved::MatchCentral => drive!(baselines::match_central::build(frag, q)),
            Resolved::DisHhk => drive!(baselines::dishhk::build(frag, q)),
            Resolved::DMes => drive!(baselines::dmes::build(frag, q)),
        }
    }

    /// Accounts the query broadcast (Sc posts the patterns to each
    /// site): `|F|` control messages of `Σ ~|Qi|` bytes each. Applied
    /// uniformly to **every** query path — data-selecting, Boolean,
    /// and trivially-empty runs alike (the old API skipped it on the
    /// latter two).
    fn charge_broadcast<'a>(
        metrics: &mut RunMetrics,
        frag: &Fragmentation,
        patterns: impl IntoIterator<Item = &'a Pattern>,
    ) {
        let q_bytes: usize = patterns
            .into_iter()
            .map(|q| 8 + 3 * q.node_count() + 4 * q.edge_count())
            .sum();
        metrics.control_messages += frag.num_sites() as u64;
        metrics.control_bytes += (frag.num_sites() * q_bytes) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{dag, patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};
    use dgs_sim::hhk_simulation;

    fn engine_for(g: &Graph, k: usize, seed: u64) -> SimEngine {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        SimEngine::builder(g, frag).build()
    }

    #[test]
    fn auto_picks_dgpmt_on_trees_and_agrees_with_oracle() {
        let g = tree::random_tree(200, 4, 4);
        let assign = tree_partition(&g, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMt");
        assert!(report.plan.auto);
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_picks_dgpmd_on_dags_and_agrees_with_oracle() {
        let g = dag::citation_like(300, 700, 5, 7);
        let engine = engine_for(&g, 3, 7);
        let q = patterns::random_dag_with_depth(4, 6, 2, 5, 7);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMd");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_handles_cyclic_workloads_and_agrees_with_oracle() {
        let g = random::uniform(120, 500, 4, 8);
        let engine = engine_for(&g, 3, 8);
        let q = patterns::random_cyclic(3, 6, 4, 8);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "dGPMs");
        assert_eq!(report.relation, hhk_simulation(&q, &g).relation);
    }

    #[test]
    fn auto_short_circuits_cyclic_pattern_on_dag() {
        let g = dag::citation_like(100, 250, 4, 1);
        let engine = engine_for(&g, 3, 1);
        let q = patterns::random_cyclic(3, 5, 4, 1);
        let report = engine.query(&q).unwrap();
        assert_eq!(report.algorithm, "trivial-∅");
        assert!(!report.is_match);
        assert!(report.answer().is_empty());
        assert_eq!(report.metrics.data_bytes, 0);
        // The uniform broadcast accounting still posts Q to the sites.
        assert_eq!(report.metrics.control_messages, 3);
    }

    #[test]
    fn explicit_engines_error_instead_of_panicking() {
        let g = random::uniform(50, 200, 4, 2);
        let engine = engine_for(&g, 2, 2);
        let q = patterns::random_cyclic(3, 5, 4, 2);
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmd, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMd",
                ..
            })
        ));
        assert!(matches!(
            engine.query_with(&Algorithm::Dgpmt, &q),
            Err(DgsError::Unsupported {
                algorithm: "dGPMt",
                ..
            })
        ));
        // The engine session stays usable after a bad query.
        assert!(engine.query(&q).is_ok());
    }

    #[test]
    fn answer_borrows_instead_of_cloning() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
        // On a match the answer aliases the relation.
        assert!(std::ptr::eq(report.answer(), &report.relation));
        assert_eq!(report.answer().len(), 11);
    }

    #[test]
    fn boolean_charges_broadcast_uniformly() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag).build();
        let q = &w.pattern;
        let b = engine
            .query_boolean_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(b.is_match);
        // The Boolean path used to skip the |F|-message broadcast the
        // data-selecting path charges; both paths now include it.
        let broadcast_bytes = (3 * (8 + 3 * q.node_count() + 4 * q.edge_count())) as u64;
        assert!(b.metrics.control_messages >= 3);
        assert!(b.metrics.control_bytes >= broadcast_bytes);
        let full = engine
            .query_with(&Algorithm::dgpm_incremental_only(), q)
            .unwrap();
        assert!(full.metrics.control_messages >= 3);
        assert!(full.metrics.control_bytes >= broadcast_bytes);
    }

    #[test]
    fn batch_amortizes_the_broadcast() {
        let g = random::uniform(150, 600, 4, 9);
        // Cache off: this test measures the protocol broadcast, and
        // re-queries each pattern individually after the batch.
        let assign = hash_partition(g.node_count(), 5, 9);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 5));
        let engine = SimEngine::builder(&g, frag).cache(false).build();
        let patterns: Vec<Pattern> = (0..10)
            .map(|i| patterns::random_cyclic(3, 6, 4, 100 + i))
            .collect();
        let batch = engine.query_batch(&patterns);
        assert_eq!(batch.reports.len(), 10);
        assert_eq!(batch.succeeded(), 10);
        for r in &batch.reports {
            let r = r.as_ref().unwrap();
            // Per-query metrics are present and broadcast-free.
            assert!(r.metrics.total_ops > 0);
        }
        // One broadcast for the whole batch...
        let singles: u64 = patterns
            .iter()
            .map(|q| engine.query(q).unwrap().metrics.control_messages)
            .sum();
        // ... so total control messages are |F| * (B - 1) lower than
        // B separate queries.
        assert_eq!(
            batch.total.control_messages,
            singles - 5 * (patterns.len() as u64 - 1)
        );
        // Same answers either way.
        for (r, q) in batch.reports.iter().zip(&patterns) {
            assert_eq!(
                r.as_ref().unwrap().relation,
                engine.query(q).unwrap().relation
            );
        }
    }

    #[test]
    fn batch_isolates_failures() {
        let g = random::uniform(60, 240, 4, 10);
        let engine = engine_for(&g, 2, 10);
        let good = patterns::random_cyclic(3, 5, 4, 10);
        let bad = dgs_graph::PatternBuilder::new().build();
        let batch = engine.query_batch_with(&Algorithm::Auto, &[good.clone(), bad, good]);
        assert_eq!(batch.succeeded(), 2);
        assert!(matches!(
            batch.reports[1],
            Err(DgsError::InvalidPattern { .. })
        ));
    }

    #[test]
    fn threaded_executor_through_the_builder() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let engine = SimEngine::builder(&w.graph, frag)
            .executor(ExecutorKind::Threaded)
            .build();
        let report = engine.query(&w.pattern).unwrap();
        assert!(report.is_match);
    }

    #[test]
    fn repeat_query_hits_the_cache_with_zero_messages() {
        let g = random::uniform(100, 400, 4, 21);
        let engine = engine_for(&g, 3, 21);
        let q = patterns::random_cyclic(3, 6, 4, 21);
        let cold = engine.query(&q).unwrap();
        assert_eq!(cold.metrics.cache_hits, 0);
        assert!(cold.metrics.control_messages > 0);
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.metrics.data_messages, 0);
        assert_eq!(warm.metrics.control_messages, 0);
        assert_eq!(warm.metrics.result_messages, 0);
        assert_eq!(warm.metrics.data_bytes, 0);
        assert_eq!(warm.relation, cold.relation);
        assert_eq!(warm.algorithm, cold.algorithm);
        assert!(warm.plan.to_string().contains("cache"));
        let stats = engine.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn explicit_engines_bypass_the_cache() {
        let g = random::uniform(80, 320, 4, 22);
        let engine = engine_for(&g, 3, 22);
        let q = patterns::random_cyclic(3, 6, 4, 22);
        for _ in 0..2 {
            let r = engine.query_with(&Algorithm::Dgpms, &q).unwrap();
            assert_eq!(r.metrics.cache_hits, 0);
            assert!(r.metrics.control_messages > 0);
        }
        assert_eq!(engine.cache_stats().unwrap().entries, 0);
    }

    #[test]
    fn boolean_queries_read_the_cache() {
        let g = random::uniform(90, 360, 4, 23);
        let engine = engine_for(&g, 3, 23);
        let q = patterns::random_cyclic(3, 6, 4, 23);
        let full = engine.query(&q).unwrap();
        let b = engine.query_boolean(&q).unwrap();
        assert_eq!(b.is_match, full.is_match);
        assert_eq!(b.metrics.cache_hits, 1);
        assert_eq!(b.metrics.control_messages, 0);
    }

    #[test]
    fn compressed_boolean_run_warms_the_cache() {
        let g = random::uniform(90, 360, 4, 29);
        let assign = hash_partition(g.node_count(), 3, 29);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag)
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .build();
        let q = patterns::random_cyclic(3, 6, 4, 29);
        // The compressed leg answers Boolean queries via the
        // data-selecting run, so the relation is cached...
        let b = engine.query_boolean(&q).unwrap();
        assert_eq!(b.metrics.cache_hits, 0);
        // ...and the follow-up data-selecting query is a hit.
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.is_match, b.is_match);
    }

    #[test]
    fn clones_share_the_cache() {
        let g = random::uniform(70, 280, 4, 24);
        let engine = engine_for(&g, 3, 24);
        let q = patterns::random_cyclic(3, 6, 4, 24);
        engine.query(&q).unwrap();
        let clone = engine.clone();
        let warm = clone.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
    }

    #[test]
    fn compressed_leg_answers_exactly_and_is_explained() {
        let g = random::uniform(120, 480, 3, 25);
        let assign = hash_partition(g.node_count(), 3, 25);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, Arc::clone(&frag))
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .cache(false)
            .build();
        assert!(engine.compression_active());
        let plain = SimEngine::builder(&g, frag).cache(false).build();
        for seed in 0..4 {
            let q = patterns::random_cyclic(3, 6, 3, 250 + seed);
            let on_gc = engine.query(&q).unwrap();
            let on_g = plain.query(&q).unwrap();
            assert_eq!(on_gc.relation, on_g.relation, "seed {seed}");
            let note = on_gc
                .plan
                .compressed
                .as_ref()
                .expect("compressed leg noted");
            assert!(note.ratio <= 1.0);
            assert!(on_gc.plan.to_string().contains("Gc"));
        }
    }

    #[test]
    fn compression_threshold_gates_the_leg() {
        // A graph with almost no simulation-equivalent redundancy:
        // the ratio stays near 1, far above a strict threshold.
        let g = random::uniform(100, 400, 4, 26);
        let assign = hash_partition(g.node_count(), 3, 26);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag)
            .compress(CompressionMethod::SimEq)
            .compression_threshold(0.01)
            .cache(false)
            .build();
        assert!(!engine.compression_active());
        assert!(engine.compression_note().is_some());
        let q = patterns::random_cyclic(3, 6, 4, 26);
        let r = engine.query(&q).unwrap();
        assert!(r.plan.compressed.is_none());
        assert!(r.plan.to_string().contains("exceeds"));
    }

    #[test]
    fn parallel_batch_matches_single_worker() {
        let g = random::uniform(120, 480, 4, 27);
        let assign = hash_partition(g.node_count(), 4, 27);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let seq = SimEngine::builder(&g, Arc::clone(&frag))
            .batch_workers(1)
            .build();
        let par = SimEngine::builder(&g, frag).batch_workers(4).build();
        let mut qs: Vec<Pattern> = (0..8)
            .map(|i| patterns::random_cyclic(3, 6, 4, 270 + i))
            .collect();
        qs.push(dgs_graph::PatternBuilder::new().build()); // an Err entry
        let a = seq.query_batch(&qs);
        let b = par.query_batch(&qs);
        assert_eq!(a.succeeded(), b.succeeded());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            match (x, y) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.relation, y.relation);
                    assert_eq!(x.algorithm, y.algorithm);
                    assert_eq!(x.plan.to_string(), y.plan.to_string());
                    assert_eq!(x.metrics.data_messages, y.metrics.data_messages);
                    assert_eq!(x.metrics.control_messages, y.metrics.control_messages);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("parallel and sequential batches disagree on success"),
            }
        }
        assert_eq!(a.total.data_messages, b.total.data_messages);
        assert_eq!(a.total.control_messages, b.total.control_messages);
        assert_eq!(a.total.cache_hits, b.total.cache_hits);
    }

    #[test]
    fn batch_serves_prewarmed_patterns_from_cache() {
        let g = random::uniform(100, 400, 4, 28);
        let engine = engine_for(&g, 3, 28);
        let q0 = patterns::random_cyclic(3, 6, 4, 280);
        let q1 = patterns::random_cyclic(3, 6, 4, 281);
        engine.query(&q0).unwrap(); // warm q0
        let batch = engine.query_batch(&[q0.clone(), q1.clone()]);
        assert_eq!(batch.succeeded(), 2);
        assert_eq!(batch.reports[0].as_ref().unwrap().metrics.cache_hits, 1);
        assert_eq!(batch.reports[1].as_ref().unwrap().metrics.cache_hits, 0);
        assert_eq!(batch.total.cache_hits, 1);
        // The hit contributes nothing; the total is q1's own run plus
        // one broadcast posting only the pattern that ran (|F| = 3
        // control messages carrying q1's bytes).
        let run = &batch.reports[1].as_ref().unwrap().metrics;
        let broadcast_bytes = (3 * (8 + 3 * q1.node_count() + 4 * q1.edge_count())) as u64;
        assert_eq!(batch.total.control_messages, run.control_messages + 3);
        assert_eq!(
            batch.total.control_bytes,
            run.control_bytes + broadcast_bytes
        );
        assert_eq!(batch.total.data_messages, run.data_messages);
    }

    #[test]
    fn delete_delta_maintains_cache_with_zero_reevaluations() {
        let g = random::uniform(120, 480, 4, 31);
        let assign = hash_partition(g.node_count(), 3, 31);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::random_cyclic(3, 6, 4, 31);
        let cold = engine.query(&q).unwrap();
        assert_eq!(cold.metrics.cache_hits, 0);

        let deletions: Vec<(dgs_graph::NodeId, dgs_graph::NodeId)> = g.edges().take(15).collect();
        let report = engine
            .apply_delta(&GraphDelta::deletions(deletions.iter().copied()))
            .unwrap();
        assert_eq!(report.deleted, 15);
        assert_eq!(report.maintained_entries, 1);
        assert_eq!(report.invalidated_entries, 0);
        assert!(report.generation > 0);

        // The follow-up query is served from the maintained entry:
        // zero protocol work, with the incremental leg in the plan.
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.metrics.data_messages, 0);
        assert_eq!(warm.metrics.control_messages, 0);
        let note = warm.plan.incremental.expect("incremental leg recorded");
        assert_eq!(note.deletions_absorbed, 15);
        assert_eq!(note.maintenance_runs, 1);
        assert!(warm.plan.to_string().contains("incremental"));

        // And the maintained answer is exact.
        let mut b = dgs_graph::GraphBuilder::new();
        for v in g.nodes() {
            b.add_node(g.label(v));
        }
        for (u, v) in g.edges() {
            if !deletions.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        let g2 = b.build();
        assert_eq!(warm.relation, hhk_simulation(&q, &g2).relation);
        assert_eq!(engine.graph().edge_count(), g2.edge_count());
    }

    #[test]
    fn insert_delta_maintains_even_the_empty_shortcircuit() {
        // A DAG graph: the cyclic pattern short-circuits to ∅ ...
        let g = dag::citation_like(80, 200, 4, 32);
        let assign = hash_partition(g.node_count(), 3, 32);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::random_cyclic(3, 5, 4, 32);
        let cold = engine.query(&q).unwrap();
        assert_eq!(cold.algorithm, "trivial-∅");

        // ... until insertions close a cycle. The cached ∅ entry is
        // *maintained*, not invalidated: insertion-side refinement
        // resurrects whatever the back edges revive, and the facts
        // still recompute (the planner would no longer short-circuit a
        // fresh query).
        let mut back_edges = Vec::new();
        for v in g.nodes() {
            for &w in g.successors(v) {
                if !g.has_edge(w, v) && w != v {
                    back_edges.push((w, v));
                }
            }
        }
        back_edges.truncate(5);
        let report = engine
            .apply_delta(&GraphDelta::insertions(back_edges))
            .unwrap();
        assert_eq!(report.inserted, 5);
        assert_eq!(report.maintained_entries, 1);
        assert_eq!(report.invalidated_entries, 0);
        assert_eq!(report.maintained_diffs.len(), 1);
        assert!(!engine.facts().is_dag);

        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1, "maintained entry hit");
        assert_eq!(warm.metrics.data_messages, 0);
        let note = warm.plan.incremental.expect("incremental leg recorded");
        assert_eq!(note.insertions_absorbed, 5);
        assert_eq!(note.deletions_absorbed, 0);
        assert_eq!(note.maintenance_runs, 1);
        assert_eq!(warm.relation, hhk_simulation(&q, &engine.graph()).relation);
        // The resurrected pairs reported in the diff are exactly the
        // relation's pairs (the entry started empty).
        let diff = &report.maintained_diffs[0];
        assert!(diff.revoked.is_empty());
        assert_eq!(
            diff.resurrected.len() as u64,
            report.resurrected_pairs,
            "single entry accounts for all resurrections"
        );
    }

    #[test]
    fn insert_delta_invalidates_empty_shortcircuit_with_sink_nodes() {
        use dgs_graph::Label;
        // A cyclic pattern with a childless sink: u0 ⇄ u1 plus
        // u0 → u2. On any graph the true fixpoint keeps u2's
        // label-compatible matches, so the `trivial-∅` entry's rows
        // are the answer convention, NOT the fixpoint — maintaining
        // them through a cycle-closing insertion would resurrect only
        // the affected area and leave the entry neither ∅ nor exact.
        let mut qb = dgs_graph::PatternBuilder::new();
        let u0 = qb.add_node(Label(0));
        let u1 = qb.add_node(Label(0));
        let u2 = qb.add_node(Label(0));
        qb.add_edge(u0, u1);
        qb.add_edge(u1, u0);
        qb.add_edge(u0, u2);
        let q = qb.build();
        assert!(!crate::plan::empty_rows_are_fixpoint(&q));

        // Acyclic path v0 → v1 → v2 plus two leaf nodes, all label 0.
        let mut b = dgs_graph::GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_node(Label(0))).collect();
        b.add_edge(vs[0], vs[1]);
        b.add_edge(vs[1], vs[2]);
        let g = b.build();
        let assign = hash_partition(g.node_count(), 2, 7);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let engine = SimEngine::builder(&g, frag).build();
        let cold = engine.query(&q).unwrap();
        assert_eq!(cold.algorithm, "trivial-∅");

        // Deletion-only batches keep maintaining: the graph stays
        // acyclic, ∅ stays the answer, nothing can resurrect.
        let del = engine
            .apply_delta(&GraphDelta::deletions([(vs[1], vs[2])]))
            .unwrap();
        assert_eq!(del.maintained_entries, 1);
        assert_eq!(del.invalidated_entries, 0);
        let back = engine
            .apply_delta(&GraphDelta::insertions([(vs[1], vs[2])]))
            .unwrap();

        // An insertion batch drops the entry instead of repairing it
        // from the unsound ∅ baseline.
        assert_eq!(back.maintained_entries, 0);
        assert_eq!(back.invalidated_entries, 1);
        assert!(back.maintained_diffs.is_empty());

        // The follow-up query re-evaluates fresh (no stale cache
        // hit); the graph is still acyclic, so the planner
        // short-circuits again and the ∅ *convention* is the answer.
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 0, "entry was dropped");
        assert_eq!(warm.algorithm, "trivial-∅");
        assert!(!warm.is_match);

        let closed = engine
            .apply_delta(&GraphDelta::insertions([(vs[2], vs[0])]))
            .unwrap();
        assert_eq!(closed.invalidated_entries, 1);
        assert!(!engine.facts().is_dag);
        let cyclic = engine.query(&q).unwrap();
        let oracle = hhk_simulation(&q, &engine.graph());
        assert_eq!(cyclic.relation, oracle.relation);
        // The cycle v0→v1→v2→v0 now carries u0/u1; u2 matches every
        // label-0 node, leaves included.
        assert_eq!(cyclic.relation.matches_of(u0), &vs[..3]);
        assert_eq!(cyclic.relation.matches_of(u2), &vs[..]);
    }

    #[test]
    fn delta_validation_and_noop_semantics() {
        let g = random::uniform(40, 160, 4, 33);
        let assign = hash_partition(g.node_count(), 2, 33);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let engine = SimEngine::builder(&g, frag).build();

        // Out-of-range endpoint.
        let bad = GraphDelta::deletions([(dgs_graph::NodeId(0), dgs_graph::NodeId(999))]);
        assert!(matches!(
            engine.apply_delta(&bad),
            Err(DgsError::InvalidDelta { .. })
        ));
        // Same edge on both sides.
        let (u, v) = g.edges().next().unwrap();
        let both = GraphDelta {
            insert_edges: vec![(u, v)],
            delete_edges: vec![(u, v)],
        };
        assert!(matches!(
            engine.apply_delta(&both),
            Err(DgsError::InvalidDelta { .. })
        ));

        // Already-satisfied ops are skipped; re-applying a delta is a
        // no-op that keeps the generation (and the cache) valid.
        let gen0 = engine.generation();
        let delta = GraphDelta::deletions([(u, v)]);
        let first = engine.apply_delta(&delta).unwrap();
        assert_eq!(first.deleted, 1);
        assert_ne!(engine.generation(), gen0);
        let gen1 = engine.generation();
        let second = engine.apply_delta(&delta).unwrap();
        assert_eq!(second.deleted, 0);
        assert_eq!(second.ignored, 1);
        assert_eq!(engine.generation(), gen1);
    }

    #[test]
    fn cache_invalidate_all_moves_to_a_fresh_generation() {
        let g = random::uniform(80, 320, 4, 34);
        let engine = engine_for(&g, 3, 34);
        let q = patterns::random_cyclic(3, 6, 4, 34);
        engine.query(&q).unwrap();
        assert_eq!(engine.query(&q).unwrap().metrics.cache_hits, 1);
        let gen_before = engine.cache_stats().unwrap().generation;
        engine.cache_invalidate_all();
        let stats = engine.cache_stats().unwrap();
        assert!(stats.generation > gen_before);
        assert_eq!(stats.entries, 0);
        // Nothing cached survives: the re-query runs the protocol.
        assert_eq!(engine.query(&q).unwrap().metrics.cache_hits, 0);
    }

    #[test]
    fn clones_never_see_another_handles_generations() {
        let g = random::uniform(90, 360, 4, 35);
        let assign = hash_partition(g.node_count(), 3, 35);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let clone = engine.clone();
        let q = patterns::random_cyclic(3, 6, 4, 35);
        engine.query(&q).unwrap();
        // Clone shares the cache and the generation, so it hits...
        assert_eq!(clone.query(&q).unwrap().metrics.cache_hits, 1);
        // ...until the original diverges by applying a delta.
        let dels: Vec<_> = g.edges().take(8).collect();
        engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();
        // The clone still answers on *its* (unmutated) graph...
        let clone_hit = clone.query(&q).unwrap();
        assert_eq!(clone_hit.metrics.cache_hits, 1);
        assert_eq!(clone_hit.relation, hhk_simulation(&q, &g).relation);
        // ...and the mutated handle serves the maintained answer.
        let warm = engine.query(&q).unwrap();
        assert_eq!(warm.metrics.cache_hits, 1);
        assert_eq!(warm.relation, hhk_simulation(&q, &engine.graph()).relation);
    }

    #[test]
    fn compressed_leg_is_rebuilt_lazily_after_delta() {
        let g = random::uniform(100, 400, 3, 36);
        let assign = hash_partition(g.node_count(), 3, 36);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag)
            .compress(CompressionMethod::SimEq)
            .compression_threshold(1.0)
            .cache(false)
            .build();
        assert!(engine.compression_active());
        let dels: Vec<_> = g.edges().take(20).collect();
        engine.apply_delta(&GraphDelta::deletions(dels)).unwrap();
        // The rebuilt leg answers exactly on the mutated graph.
        let q = patterns::random_cyclic(3, 6, 3, 36);
        let r = engine.query(&q).unwrap();
        assert!(r.plan.compressed.is_some());
        assert_eq!(r.relation, hhk_simulation(&q, &engine.graph()).relation);
    }

    #[test]
    fn plan_is_a_dry_run() {
        let g = tree::random_tree(80, 3, 11);
        let assign = tree_partition(&g, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let engine = SimEngine::builder(&g, frag).build();
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let plan = engine.plan(&q).unwrap();
        assert_eq!(plan.algorithm, "dGPMt");
        assert!(plan.to_string().contains("auto"));
    }
}
