//! The session-level pattern-result cache.
//!
//! A serving engine sees the same handful of pattern shapes over and
//! over — often submitted by different clients that numbered the query
//! nodes differently. The cache therefore keys results by a
//! **canonical form** of the pattern (a label-preserving renumbering
//! computed by color refinement plus a small individualization
//! search), so isomorphic re-submissions hit the same entry, and
//! stores the match lists in canonical node order so a hit can be
//! re-expressed in the submitter's numbering with one permutation.
//!
//! Soundness does not depend on the canonical form being minimal:
//! the cache key *is* the full canonical encoding (node count, labels
//! and edges under the chosen renumbering), so two patterns share a
//! key **only if** the encodings are literally equal — which exhibits
//! an isomorphism between them. When the search would explode (highly
//! automorphic patterns) or the pattern is large, we fall back to the
//! identity numbering: still sound, merely fewer isomorphic hits.

use crate::plan::PlanExplanation;
use dgs_graph::{Label, NodeId, Pattern, PatternBuilder, QNodeId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Patterns larger than this skip the canonical search and use the
/// identity numbering (the paper assumes `|Q|` "typically small";
/// anything bigger is an unusual client and still cached, just
/// without isomorphism folding).
const MAX_SEARCH_NODES: usize = 16;

/// Cap on discrete colorings visited by the individualization search;
/// exceeding it (only possible for highly automorphic patterns) falls
/// back to the identity numbering. The leaf count is an isomorphism
/// invariant, so isomorphic patterns fall back together and keys stay
/// comparable.
const LEAF_BUDGET: usize = 2000;

/// A pattern together with its canonical renumbering.
pub(crate) struct CanonicalPattern {
    /// The canonical encoding, used as the cache key:
    /// `[n, m, labels in canonical order..., sorted canonical edges...]`.
    pub key: Vec<u32>,
    /// Canonical position of every original node index.
    pub pos_of: Vec<u16>,
}

impl CanonicalPattern {
    /// Inverse of `pos_of`: the original node index at each canonical
    /// position.
    pub fn node_at(&self) -> Vec<u16> {
        let mut node_at = vec![0u16; self.pos_of.len()];
        for (u, &p) in self.pos_of.iter().enumerate() {
            node_at[p as usize] = u as u16;
        }
        node_at
    }
}

/// Encodes `q` under the renumbering `pos_of`. Equal encodings imply
/// isomorphic patterns (the encoding fully determines the labeled
/// digraph up to the renumbering applied).
fn encode(q: &Pattern, pos_of: &[u16]) -> Vec<u32> {
    let n = q.node_count();
    let mut node_at = vec![0u16; n];
    for (u, &p) in pos_of.iter().enumerate() {
        node_at[p as usize] = u as u16;
    }
    let mut out = Vec::with_capacity(2 + n + 2 * q.edge_count());
    out.push(n as u32);
    out.push(q.edge_count() as u32);
    for &u in &node_at {
        out.push(q.label(QNodeId(u)).0 as u32);
    }
    let mut edges: Vec<(u16, u16)> = q
        .edges()
        .map(|(a, b)| (pos_of[a.index()], pos_of[b.index()]))
        .collect();
    edges.sort_unstable();
    for (a, b) in edges {
        out.push(a as u32);
        out.push(b as u32);
    }
    out
}

fn identity_form(q: &Pattern) -> CanonicalPattern {
    let pos_of: Vec<u16> = (0..q.node_count() as u16).collect();
    CanonicalPattern {
        key: encode(q, &pos_of),
        pos_of,
    }
}

/// Refines `colors` to the coarsest stable partition under
/// `(color, sorted child colors, sorted parent colors)` signatures,
/// densifying color ids to `0..count` by signature rank (an
/// isomorphism-invariant ordering). Returns the color count.
fn refine(q: &Pattern, colors: &mut [u32]) -> usize {
    let n = q.node_count();
    loop {
        let sigs: Vec<(u32, Vec<u32>, Vec<u32>)> = (0..n)
            .map(|u| {
                let qu = QNodeId(u as u16);
                let mut cc: Vec<u32> = q.children(qu).iter().map(|c| colors[c.index()]).collect();
                cc.sort_unstable();
                let mut pc: Vec<u32> = q.parents(qu).iter().map(|p| colors[p.index()]).collect();
                pc.sort_unstable();
                (colors[u], cc, pc)
            })
            .collect();
        let mut distinct: Vec<&(u32, Vec<u32>, Vec<u32>)> = sigs.iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let old_count = {
            let mut cs: Vec<u32> = colors.to_vec();
            cs.sort_unstable();
            cs.dedup();
            cs.len()
        };
        for (u, sig) in sigs.iter().enumerate() {
            colors[u] = distinct.binary_search(&sig).expect("own signature") as u32;
        }
        if distinct.len() == old_count {
            return distinct.len();
        }
    }
}

struct Search<'q> {
    q: &'q Pattern,
    best: Option<(Vec<u32>, Vec<u16>)>,
    leaves: usize,
}

impl Search<'_> {
    /// Depth-first individualization-refinement; returns `false` when
    /// the leaf budget is exhausted.
    fn dfs(&mut self, colors: Vec<u32>, count: usize) -> bool {
        let n = self.q.node_count();
        if count == n {
            self.leaves += 1;
            if self.leaves > LEAF_BUDGET {
                return false;
            }
            let pos_of: Vec<u16> = colors.iter().map(|&c| c as u16).collect();
            let enc = encode(self.q, &pos_of);
            if self.best.as_ref().is_none_or(|(b, _)| enc < *b) {
                self.best = Some((enc, pos_of));
            }
            return true;
        }
        let target = (0..count as u32)
            .find(|&c| colors.iter().filter(|&&x| x == c).count() > 1)
            .expect("non-discrete partition has a splittable class");
        for u in 0..n {
            if colors[u] != target {
                continue;
            }
            // Individualize u: give it a color sorting before its class
            // peers, then re-refine.
            let mut c2: Vec<u32> = colors.iter().map(|&c| c * 2 + 1).collect();
            c2[u] = colors[u] * 2;
            let cnt = refine(self.q, &mut c2);
            if !self.dfs(c2, cnt) {
                return false;
            }
        }
        true
    }
}

/// Computes the canonical form of `q`: a renumbering such that any
/// isomorphic pattern produces the same `key`.
pub(crate) fn canonicalize(q: &Pattern) -> CanonicalPattern {
    let n = q.node_count();
    if n == 0 {
        return CanonicalPattern {
            key: vec![0, 0],
            pos_of: Vec::new(),
        };
    }
    if n > MAX_SEARCH_NODES {
        return identity_form(q);
    }
    // Initial colors: rank of the node's label among the distinct
    // labels present (invariant under renumbering).
    let mut labels: Vec<u16> = q.labels().iter().map(|l| l.0).collect();
    labels.sort_unstable();
    labels.dedup();
    let mut colors: Vec<u32> = q
        .labels()
        .iter()
        .map(|l| labels.binary_search(&l.0).expect("own label") as u32)
        .collect();
    let count = refine(q, &mut colors);
    let mut search = Search {
        q,
        best: None,
        leaves: 0,
    };
    if !search.dfs(colors, count) {
        return identity_form(q);
    }
    let (key, pos_of) = search.best.expect("search visited at least one leaf");
    CanonicalPattern { key, pos_of }
}

/// Reconstructs the pattern a canonical encoding describes, in its
/// canonical numbering. The encoding is complete (node count, labels
/// and edges under the canonical renumbering), so the graph-update
/// subsystem can rebuild the exact pattern a cache entry answers —
/// this is what lets `SimEngine::apply_delta` maintain entries whose
/// original `Pattern` values are long gone.
pub(crate) fn decode_pattern(key: &[u32]) -> Pattern {
    let n = key[0] as usize;
    let m = key[1] as usize;
    debug_assert_eq!(key.len(), 2 + n + 2 * m, "malformed canonical encoding");
    let mut b = PatternBuilder::new();
    for &label in &key[2..2 + n] {
        b.add_node(Label(label as u16));
    }
    for e in 0..m {
        let a = key[2 + n + 2 * e] as u16;
        let c = key[2 + n + 2 * e + 1] as u16;
        b.add_edge(QNodeId(a), QNodeId(c));
    }
    b.build()
}

/// A cached answer, stored in canonical node order so any isomorphic
/// submission can be served from it.
#[derive(Debug)]
pub(crate) struct CachedResult {
    /// Sorted match lists; row `c` holds the matches of the query node
    /// at canonical position `c`.
    pub rows: Vec<Vec<NodeId>>,
    /// Display name of the engine that produced the entry.
    pub algorithm: &'static str,
    /// The plan of the run that produced the entry.
    pub plan: PlanExplanation,
}

/// Observability counters of a [`crate::SimEngine`]'s pattern-result
/// cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries held.
    pub capacity: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a protocol run.
    pub misses: u64,
    /// Entries dropped by the LRU policy.
    pub evictions: u64,
    /// The engine's current graph generation. Entries are keyed under
    /// the generation they were computed at; every `apply_delta` or
    /// `cache_invalidate_all` moves the engine to a fresh generation,
    /// so a growing value is invalidation churn made observable.
    pub generation: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<CachedResult>,
    tick: u64,
}

/// An LRU map from canonical pattern encodings to cached answers.
///
/// Recency is tracked with a monotonic tick per entry plus a queue of
/// `(tick, key)` touches; stale queue entries (whose tick no longer
/// matches the map) are skipped lazily on eviction, giving amortized
/// `O(1)` touches.
#[derive(Debug)]
pub(crate) struct PatternCache {
    capacity: usize,
    map: HashMap<Vec<u32>, Entry>,
    queue: VecDeque<(u64, Vec<u32>)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PatternCache {
    pub fn new(capacity: usize) -> Self {
        PatternCache {
            capacity,
            map: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn get(&mut self, key: &[u32]) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.tick = self.tick;
                self.queue.push_back((self.tick, key.to_vec()));
                self.hits += 1;
                let hit = Arc::clone(&e.value);
                self.compact();
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops stale touches once the queue outgrows a small multiple of
    /// the capacity, so steady-state hit traffic (which never triggers
    /// eviction) cannot grow the queue without bound. Amortized `O(1)`
    /// per touch: a full sweep runs only after ~capacity-many pushes.
    fn compact(&mut self) {
        if self.queue.len() > 2 * self.capacity.max(8) {
            let map = &self.map;
            self.queue
                .retain(|(t, k)| map.get(k).is_some_and(|e| e.tick == *t));
        }
    }

    pub fn insert(&mut self, key: Vec<u32>, value: Arc<CachedResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.queue.push_back((self.tick, key.clone()));
        self.map.insert(
            key,
            Entry {
                value,
                tick: self.tick,
            },
        );
        while self.map.len() > self.capacity {
            let Some((t, k)) = self.queue.pop_front() else {
                break;
            };
            // Only the newest touch of a key is live; older queue
            // entries are stale and skipped.
            if self.map.get(&k).is_some_and(|e| e.tick == t) {
                self.map.remove(&k);
                self.evictions += 1;
            }
        }
        self.compact();
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            generation: 0,
        }
    }

    /// Snapshots the entries whose key starts with `prefix` (the
    /// engine's generation words) — the still-valid entries the
    /// update subsystem promotes to incremental maintenance.
    pub fn entries_with_prefix(&self, prefix: &[u32]) -> Vec<(Vec<u32>, Arc<CachedResult>)> {
        let mut out: Vec<(Vec<u32>, Arc<CachedResult>)> = self
            .map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, e)| (k.clone(), Arc::clone(&e.value)))
            .collect();
        // Deterministic order regardless of hash-map iteration.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drops every entry whose key starts with `prefix` (one handle's
    /// generation), counting them as evictions. Entries stored by
    /// other handles under other generations survive.
    pub fn remove_with_prefix(&mut self, prefix: &[u32]) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| !k.starts_with(prefix));
        let removed = before - self.map.len();
        self.evictions += removed as u64;
        let map = &self.map;
        self.queue
            .retain(|(t, k)| map.get(k).is_some_and(|e| e.tick == *t));
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::{Label, PatternBuilder};

    /// Fig. 1's pattern under two different node numberings.
    fn fig1_two_numberings() -> (Pattern, Pattern) {
        let mut b = PatternBuilder::new();
        let yb = b.add_node(Label(0));
        let f = b.add_node(Label(1));
        let yf = b.add_node(Label(2));
        let sp = b.add_node(Label(3));
        b.add_edge(yb, f);
        b.add_edge(yb, yf);
        b.add_edge(f, sp);
        b.add_edge(sp, yf);
        b.add_edge(yf, f);
        let q1 = b.build();

        // Same pattern, nodes inserted in reverse order.
        let mut b = PatternBuilder::new();
        let sp = b.add_node(Label(3));
        let yf = b.add_node(Label(2));
        let f = b.add_node(Label(1));
        let yb = b.add_node(Label(0));
        b.add_edge(yb, f);
        b.add_edge(yb, yf);
        b.add_edge(f, sp);
        b.add_edge(sp, yf);
        b.add_edge(yf, f);
        let q2 = b.build();
        (q1, q2)
    }

    #[test]
    fn isomorphic_renumberings_share_a_key() {
        let (q1, q2) = fig1_two_numberings();
        let c1 = canonicalize(&q1);
        let c2 = canonicalize(&q2);
        assert_eq!(c1.key, c2.key);
        // The canonical positions of corresponding nodes agree:
        // node u of q1 corresponds to node 3-u of q2.
        for u in 0..4 {
            assert_eq!(c1.pos_of[u], c2.pos_of[3 - u], "node {u}");
        }
    }

    #[test]
    fn different_patterns_get_different_keys() {
        let (q1, _) = fig1_two_numberings();
        // Same nodes, one edge flipped.
        let mut b = PatternBuilder::new();
        let yb = b.add_node(Label(0));
        let f = b.add_node(Label(1));
        let yf = b.add_node(Label(2));
        let sp = b.add_node(Label(3));
        b.add_edge(f, yb); // flipped
        b.add_edge(yb, yf);
        b.add_edge(f, sp);
        b.add_edge(sp, yf);
        b.add_edge(yf, f);
        let q3 = b.build();
        assert_ne!(canonicalize(&q1).key, canonicalize(&q3).key);

        // Same shape, one label changed.
        let mut b = PatternBuilder::new();
        let yb = b.add_node(Label(0));
        let f = b.add_node(Label(1));
        let yf = b.add_node(Label(2));
        let sp = b.add_node(Label(9));
        b.add_edge(yb, f);
        b.add_edge(yb, yf);
        b.add_edge(f, sp);
        b.add_edge(sp, yf);
        b.add_edge(yf, f);
        let q4 = b.build();
        assert_ne!(canonicalize(&q1).key, canonicalize(&q4).key);
    }

    #[test]
    fn symmetric_patterns_are_handled() {
        // A hub with 6 interchangeable same-label sinks: refinement
        // cannot split the sinks, so the search individualizes; the
        // canonical key must still be numbering-invariant.
        let build = |order: &[usize]| {
            let mut b = PatternBuilder::new();
            let mut ids = [QNodeId(0); 7];
            for &i in order {
                ids[i] = b.add_node(if i == 0 { Label(0) } else { Label(1) });
            }
            for i in 1..7 {
                b.add_edge(ids[0], ids[i]);
            }
            b.build()
        };
        let q1 = build(&[0, 1, 2, 3, 4, 5, 6]);
        let q2 = build(&[3, 6, 0, 5, 1, 4, 2]);
        assert_eq!(canonicalize(&q1).key, canonicalize(&q2).key);
    }

    #[test]
    fn node_at_inverts_pos_of() {
        let (q1, _) = fig1_two_numberings();
        let c = canonicalize(&q1);
        let node_at = c.node_at();
        for u in 0..q1.node_count() {
            assert_eq!(node_at[c.pos_of[u] as usize] as usize, u);
        }
    }

    #[test]
    fn large_patterns_fall_back_to_identity() {
        let mut b = PatternBuilder::new();
        let nodes: Vec<_> = (0..20).map(|i| b.add_node(Label(i % 3))).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1]);
        }
        let q = b.build();
        let c = canonicalize(&q);
        assert_eq!(c.pos_of, (0..20u16).collect::<Vec<_>>());
        assert_eq!(c.key, encode(&q, &c.pos_of));
    }

    fn dummy(tag: &'static str) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            rows: Vec::new(),
            algorithm: tag,
            plan: PlanExplanation::forced(tag),
        })
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = PatternCache::new(2);
        c.insert(vec![1], dummy("a"));
        c.insert(vec![2], dummy("b"));
        assert!(c.get(&[1]).is_some()); // refresh 1; 2 is now LRU
        c.insert(vec![3], dummy("c"));
        assert!(c.get(&[2]).is_none(), "2 should have been evicted");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn hit_traffic_does_not_grow_the_queue_unboundedly() {
        let mut c = PatternCache::new(4);
        for k in 0u32..4 {
            c.insert(vec![k], dummy("a"));
        }
        for _ in 0..10_000 {
            assert!(c.get(&[1]).is_some());
        }
        // Bounded by the compaction threshold, not by the hit count.
        assert!(
            c.queue.len() <= 2 * c.capacity.max(8) + 1,
            "queue grew to {} entries",
            c.queue.len()
        );
        assert_eq!(c.stats().entries, 4);
    }

    #[test]
    fn remove_with_prefix_spares_other_generations() {
        let mut c = PatternCache::new(8);
        // Generation prefix [0, 0] vs [1, 0].
        c.insert(vec![0, 0, 7], dummy("a"));
        c.insert(vec![0, 0, 8], dummy("b"));
        c.insert(vec![1, 0, 7], dummy("c"));
        assert_eq!(c.remove_with_prefix(&[0, 0]), 2);
        assert!(c.get(&[0, 0, 7]).is_none());
        assert!(c.get(&[0, 0, 8]).is_none());
        assert_eq!(c.get(&[1, 0, 7]).unwrap().algorithm, "c");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = PatternCache::new(0);
        c.insert(vec![1], dummy("a"));
        assert!(c.get(&[1]).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn decode_pattern_roundtrips_the_canonical_form() {
        let (q1, q2) = fig1_two_numberings();
        for q in [q1, q2] {
            let c = canonicalize(&q);
            let decoded = decode_pattern(&c.key);
            // The decoded pattern is the canonical renumbering of q:
            // canonicalizing it again yields the identical key.
            assert_eq!(canonicalize(&decoded).key, c.key);
            // And node u of q sits at canonical position pos_of[u].
            for u in q.nodes() {
                assert_eq!(
                    decoded.label(QNodeId(c.pos_of[u.index()])),
                    q.label(u),
                    "label of node {u:?}"
                );
            }
            assert_eq!(decoded.edge_count(), q.edge_count());
        }
    }

    #[test]
    fn reinsert_overwrites_without_growth() {
        let mut c = PatternCache::new(4);
        c.insert(vec![1], dummy("a"));
        c.insert(vec![1], dummy("b"));
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.get(&[1]).unwrap().algorithm, "b");
    }
}
