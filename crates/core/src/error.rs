//! Typed errors for the query path.
//!
//! Every condition that the old `DistributedSim` API turned into an
//! `assert!`/`panic!`/`unwrap` is a [`DgsError`] here, so a serving
//! layer can keep a session alive across bad queries and report the
//! precondition that failed instead of dying.

use std::fmt;

/// Why a query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgsError {
    /// The pattern itself is malformed (e.g. has no nodes).
    InvalidPattern {
        /// What is wrong with it.
        reason: String,
    },
    /// The requested engine's structural precondition does not hold
    /// for this graph/pattern pair (Theorem 3 / Corollary 4 scope).
    Unsupported {
        /// Display name of the requested engine.
        algorithm: &'static str,
        /// The precondition that failed.
        reason: String,
    },
    /// The distributed run finished without assembling an answer —
    /// a protocol bug or a faulted executor, never the caller's fault.
    ExecutorFailed {
        /// Display name of the engine that ran.
        algorithm: &'static str,
        /// What was missing.
        reason: String,
    },
    /// A graph delta is malformed: an endpoint outside the loaded
    /// graph, or the same edge listed for both insertion and deletion.
    InvalidDelta {
        /// What is wrong with it.
        reason: String,
    },
    /// A specific site failed mid-run: its handler panicked (threaded
    /// executor) or its worker process died / reported a failure
    /// (socket executor). The session stays alive; re-running the
    /// query against a healthy cluster is safe.
    SiteFailed {
        /// The failed site (0-based).
        site: u32,
        /// What happened.
        reason: String,
    },
}

impl DgsError {
    /// Maps an executor-level failure into the query-path error type,
    /// attributing it to the engine that was running.
    pub(crate) fn from_exec(algorithm: &'static str, e: dgs_net::ExecError) -> DgsError {
        match e {
            dgs_net::ExecError::SiteFailed { site, reason } => {
                DgsError::SiteFailed { site, reason }
            }
            dgs_net::ExecError::Unsupported { detail } => DgsError::Unsupported {
                algorithm,
                reason: detail,
            },
            dgs_net::ExecError::Timeout { millis, detail } => DgsError::ExecutorFailed {
                algorithm,
                reason: format!("timed out after {millis} ms: {detail}"),
            },
            dgs_net::ExecError::Transport { detail } => DgsError::ExecutorFailed {
                algorithm,
                reason: format!("transport failed: {detail}"),
            },
        }
    }
}

impl fmt::Display for DgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgsError::InvalidPattern { reason } => {
                write!(f, "invalid pattern: {reason}")
            }
            DgsError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} is not applicable: {reason}")
            }
            DgsError::ExecutorFailed { algorithm, reason } => {
                write!(f, "{algorithm} run failed: {reason}")
            }
            DgsError::InvalidDelta { reason } => {
                write!(f, "invalid graph delta: {reason}")
            }
            DgsError::SiteFailed { site, reason } => {
                write!(f, "site S{} failed: {reason}", site + 1)
            }
        }
    }
}

impl std::error::Error for DgsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = DgsError::Unsupported {
            algorithm: "dGPMt",
            reason: "the data graph is not a rooted tree".into(),
        };
        assert_eq!(
            e.to_string(),
            "dGPMt is not applicable: the data graph is not a rooted tree"
        );
        let e = DgsError::InvalidPattern {
            reason: "pattern has no nodes".into(),
        };
        assert!(e.to_string().contains("no nodes"));
    }
}
