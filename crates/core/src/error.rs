//! Typed errors for the query path.
//!
//! Every condition that the old `DistributedSim` API turned into an
//! `assert!`/`panic!`/`unwrap` is a [`DgsError`] here, so a serving
//! layer can keep a session alive across bad queries and report the
//! precondition that failed instead of dying.

use std::fmt;

/// Why a query could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DgsError {
    /// The pattern itself is malformed (e.g. has no nodes).
    InvalidPattern {
        /// What is wrong with it.
        reason: String,
    },
    /// The requested engine's structural precondition does not hold
    /// for this graph/pattern pair (Theorem 3 / Corollary 4 scope).
    Unsupported {
        /// Display name of the requested engine.
        algorithm: &'static str,
        /// The precondition that failed.
        reason: String,
    },
    /// The distributed run finished without assembling an answer —
    /// a protocol bug or a faulted executor, never the caller's fault.
    ExecutorFailed {
        /// Display name of the engine that ran.
        algorithm: &'static str,
        /// What was missing.
        reason: String,
    },
    /// A graph delta is malformed: an endpoint outside the loaded
    /// graph, or the same edge listed for both insertion and deletion.
    InvalidDelta {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for DgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgsError::InvalidPattern { reason } => {
                write!(f, "invalid pattern: {reason}")
            }
            DgsError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} is not applicable: {reason}")
            }
            DgsError::ExecutorFailed { algorithm, reason } => {
                write!(f, "{algorithm} run failed: {reason}")
            }
            DgsError::InvalidDelta { reason } => {
                write!(f, "invalid graph delta: {reason}")
            }
        }
    }
}

impl std::error::Error for DgsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = DgsError::Unsupported {
            algorithm: "dGPMt",
            reason: "the data graph is not a rooted tree".into(),
        };
        assert_eq!(
            e.to_string(),
            "dGPMt is not applicable: the data graph is not a rooted tree"
        );
        let e = DgsError::InvalidPattern {
            reason: "pattern has no nodes".into(),
        };
        assert!(e.to_string().contains("no nodes"));
    }
}
