//! High-level entry point: run any algorithm on any executor and get
//! the answer plus PT/DS metrics.
//!
//! ```
//! use dgs_core::{Algorithm, DistributedSim};
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let report = DistributedSim::default().run(
//!     &Algorithm::dgpm(),
//!     &w.graph,
//!     &frag,
//!     &w.pattern,
//! );
//! assert!(report.is_match);
//! assert_eq!(report.answer.len(), 11);
//! ```

use crate::dgpm::{self, DgpmConfig};
use crate::{baselines, dgpmd, dgpms, dgpmt};
use dgs_graph::algo::{graph_is_dag, pattern_is_dag};
use dgs_graph::{Graph, Pattern};
use dgs_net::{CostModel, ExecutorKind, RunMetrics};
use dgs_partition::Fragmentation;
use dgs_sim::MatchRelation;
use std::sync::Arc;

/// Which engine to run.
#[derive(Clone, Debug)]
pub enum Algorithm {
    /// `dGPM` with the given configuration (§4).
    Dgpm(DgpmConfig),
    /// `dGPMd` for DAG patterns or DAG graphs (§5.1).
    Dgpmd,
    /// `dGPMs`: SCC-stratified batched shipping for arbitrary
    /// (cyclic) patterns — this repository's extension of `dGPMd`.
    Dgpms,
    /// `dGPMt` for trees with connected fragments (§5.2).
    Dgpmt,
    /// `Match`: ship everything to one site (§3.1).
    MatchCentral,
    /// `disHHK` \[25\].
    DisHhk,
    /// `dMes`: vertex-centric supersteps (§6 / \[14\]).
    DMes,
}

impl Algorithm {
    /// The paper's `dGPM` (incremental + push, θ = 0.2).
    pub fn dgpm() -> Self {
        Algorithm::Dgpm(DgpmConfig::optimized())
    }

    /// The paper's `dGPMNOpt`.
    pub fn dgpm_nopt() -> Self {
        Algorithm::Dgpm(DgpmConfig::no_opt())
    }

    /// `dGPM` with incremental evaluation but no push (ablation).
    pub fn dgpm_incremental_only() -> Self {
        Algorithm::Dgpm(DgpmConfig::incremental_only())
    }

    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Dgpm(cfg) if !cfg.incremental => "dGPMNOpt",
            Algorithm::Dgpm(cfg) if cfg.push_threshold.is_none() => "dGPM-nopush",
            Algorithm::Dgpm(_) => "dGPM",
            Algorithm::Dgpmd => "dGPMd",
            Algorithm::Dgpms => "dGPMs",
            Algorithm::Dgpmt => "dGPMt",
            Algorithm::MatchCentral => "Match",
            Algorithm::DisHhk => "disHHK",
            Algorithm::DMes => "dMes",
        }
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The maximum relation under the child condition.
    pub relation: MatchRelation,
    /// `Q(G)` with the paper's convention (`∅` when some query node
    /// has no match).
    pub answer: MatchRelation,
    /// The Boolean query answer.
    pub is_match: bool,
    /// PT/DS metrics of the run.
    pub metrics: RunMetrics,
    /// The algorithm's display name.
    pub algorithm: &'static str,
}

/// Runner configuration: executor choice and cost model.
#[derive(Clone, Debug)]
pub struct DistributedSim {
    /// Which executor drives the protocol.
    pub executor: ExecutorKind,
    /// The virtual-time cost model.
    pub cost: CostModel,
}

impl Default for DistributedSim {
    fn default() -> Self {
        DistributedSim {
            executor: ExecutorKind::Virtual,
            cost: CostModel::default(),
        }
    }
}

impl DistributedSim {
    /// A runner on the deterministic virtual-time executor.
    pub fn virtual_time(cost: CostModel) -> Self {
        DistributedSim {
            executor: ExecutorKind::Virtual,
            cost,
        }
    }

    /// A runner on real threads.
    pub fn threaded() -> Self {
        DistributedSim {
            executor: ExecutorKind::Threaded,
            cost: CostModel::default(),
        }
    }

    /// Runs a **Boolean** pattern query (§2.1): returns only whether
    /// `G` matches `Q`, plus metrics.
    ///
    /// For the `dGPM` family this uses the dedicated Boolean gather
    /// path (`O(|F|)` bytes of result traffic, §4.1's "Sc simply
    /// checks whether each node of Q has a match in any local site");
    /// other algorithms run normally and reduce their relation.
    pub fn run_boolean(
        &self,
        algorithm: &Algorithm,
        graph: &Graph,
        frag: &Arc<Fragmentation>,
        q: &Pattern,
    ) -> (bool, RunMetrics) {
        if let Algorithm::Dgpm(cfg) = algorithm {
            let q = Arc::new(q.clone());
            let (coord, sites) =
                dgpm::build_with_mode(frag, &q, cfg.clone(), dgpm::QueryMode::Boolean);
            let o = dgs_net::run(self.executor, &self.cost, coord, sites);
            return (o.coordinator.boolean.expect("boolean run"), o.metrics);
        }
        let report = self.run(algorithm, graph, frag, q);
        (report.is_match, report.metrics)
    }

    /// Runs `algorithm` on the fragmented graph and returns the
    /// answer with metrics.
    ///
    /// `graph` is used for answer finalization and for the acyclicity
    /// checks of `dGPMd`; the distributed engines themselves only see
    /// the fragments.
    ///
    /// # Panics
    /// Panics if `Dgpmd` is requested with a cyclic pattern *and* a
    /// cyclic graph (Theorem 3 does not apply), or `Dgpmt` with a
    /// non-tree graph.
    pub fn run(
        &self,
        algorithm: &Algorithm,
        graph: &Graph,
        frag: &Arc<Fragmentation>,
        q: &Pattern,
    ) -> RunReport {
        let q = Arc::new(q.clone());
        let (relation, mut metrics) = match algorithm {
            Algorithm::Dgpm(cfg) => {
                let (coord, sites) = dgpm::build(frag, &q, cfg.clone());
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
            Algorithm::Dgpmd => {
                if !pattern_is_dag(&q) {
                    // §5.1: on a DAG graph, a cyclic pattern can never
                    // match — no distributed work needed.
                    assert!(
                        graph_is_dag(graph),
                        "dGPMd requires a DAG pattern or a DAG graph"
                    );
                    let empty = MatchRelation::empty(q.node_count());
                    let report = RunReport {
                        relation: empty.clone(),
                        answer: empty,
                        is_match: false,
                        metrics: RunMetrics::default(),
                        algorithm: algorithm.name(),
                    };
                    return report;
                }
                let (coord, sites) = dgpmd::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
            Algorithm::Dgpms => {
                let (coord, sites) = dgpms::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.clone().unwrap(), o.metrics)
            }
            Algorithm::Dgpmt => {
                assert!(
                    dgs_graph::generate::tree::is_rooted_tree(graph),
                    "dGPMt requires a rooted tree graph"
                );
                let (coord, sites) = dgpmt::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
            Algorithm::MatchCentral => {
                let (coord, sites) = baselines::match_central::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
            Algorithm::DisHhk => {
                let (coord, sites) = baselines::dishhk::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
            Algorithm::DMes => {
                let (coord, sites) = baselines::dmes::build(frag, &q);
                let o = dgs_net::run(self.executor, &self.cost, coord, sites);
                (o.coordinator.answer.unwrap(), o.metrics)
            }
        };

        // Account the query broadcast (Sc posts Q to each site):
        // control traffic of |F| messages of ~|Q| size each.
        let q_bytes = 8 + 3 * q.node_count() + 4 * q.edge_count();
        metrics.control_messages += frag.num_sites() as u64;
        metrics.control_bytes += (frag.num_sites() * q_bytes) as u64;

        let is_match = relation.is_total();
        let answer = if is_match {
            relation.clone()
        } else {
            MatchRelation::empty(q.node_count())
        };
        RunReport {
            relation,
            answer,
            is_match,
            metrics,
            algorithm: algorithm.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};
    use dgs_sim::hhk_simulation;

    #[test]
    fn all_general_algorithms_agree_with_oracle() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        for algo in [
            Algorithm::dgpm(),
            Algorithm::dgpm_nopt(),
            Algorithm::dgpm_incremental_only(),
            Algorithm::Dgpms,
            Algorithm::MatchCentral,
            Algorithm::DisHhk,
            Algorithm::DMes,
        ] {
            let report = DistributedSim::default().run(&algo, &w.graph, &frag, &w.pattern);
            assert_eq!(report.relation, oracle, "{}", report.algorithm);
            assert!(report.is_match);
        }
    }

    #[test]
    fn dgpmd_shortcircuits_cyclic_pattern_on_dag() {
        let g = dgs_graph::generate::dag::citation_like(100, 250, 4, 1);
        let q = patterns::random_cyclic(3, 5, 4, 1);
        let assign = hash_partition(100, 3, 1);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let report = DistributedSim::default().run(&Algorithm::Dgpmd, &g, &frag, &q);
        assert!(!report.is_match);
        assert!(report.answer.is_empty());
        assert_eq!(report.metrics.data_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "DAG pattern or a DAG graph")]
    fn dgpmd_rejects_doubly_cyclic_input() {
        let g = random::uniform(50, 200, 4, 2);
        let q = patterns::random_cyclic(3, 5, 4, 2);
        let assign = hash_partition(50, 2, 2);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let _ = DistributedSim::default().run(&Algorithm::Dgpmd, &g, &frag, &q);
    }

    #[test]
    #[should_panic(expected = "rooted tree")]
    fn dgpmt_rejects_non_tree() {
        let g = random::uniform(50, 200, 4, 3);
        let q = patterns::random_cyclic(3, 5, 4, 3);
        let assign = hash_partition(50, 2, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let _ = DistributedSim::default().run(&Algorithm::Dgpmt, &g, &frag, &q);
    }

    #[test]
    fn tree_algorithm_via_api() {
        let g = tree::random_tree(200, 4, 4);
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let assign = tree_partition(&g, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let report = DistributedSim::default().run(&Algorithm::Dgpmt, &g, &frag, &q);
        let oracle = hhk_simulation(&q, &g).relation;
        assert_eq!(report.relation, oracle);
    }

    #[test]
    fn empty_answer_convention() {
        // A pattern whose label does not occur: relation is empty,
        // is_match false, answer empty.
        let g = random::uniform(60, 200, 3, 5);
        let mut qb = dgs_graph::PatternBuilder::new();
        qb.add_node(dgs_graph::Label(9)); // label 9 not in the graph
        let q = qb.build();
        let assign = hash_partition(60, 2, 5);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let report = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
        assert!(!report.is_match);
        assert!(report.answer.is_empty());
    }

    #[test]
    fn query_broadcast_is_accounted() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let report = DistributedSim::default().run(
            &Algorithm::dgpm_incremental_only(),
            &w.graph,
            &frag,
            &w.pattern,
        );
        // Gather (3) + broadcast (3).
        assert_eq!(report.metrics.control_messages, 6);
    }

    #[test]
    fn names() {
        assert_eq!(Algorithm::dgpm().name(), "dGPM");
        assert_eq!(Algorithm::dgpm_nopt().name(), "dGPMNOpt");
        assert_eq!(Algorithm::dgpm_incremental_only().name(), "dGPM-nopush");
        assert_eq!(Algorithm::Dgpmd.name(), "dGPMd");
        assert_eq!(Algorithm::Dgpms.name(), "dGPMs");
        assert_eq!(Algorithm::Dgpmt.name(), "dGPMt");
        assert_eq!(Algorithm::MatchCentral.name(), "Match");
        assert_eq!(Algorithm::DisHhk.name(), "disHHK");
        assert_eq!(Algorithm::DMes.name(), "dMes");
    }
}
