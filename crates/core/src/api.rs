//! Legacy one-shot entry point, kept as a thin shim over
//! [`SimEngine`](crate::SimEngine).
//!
//! `DistributedSim` rebuilds the engine's structural facts on **every
//! call** and converts typed [`DgsError`](crate::DgsError)s back into
//! panics — exactly the behavior the session API was introduced to
//! replace. Prefer:
//!
//! ```
//! use dgs_core::SimEngine;
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! ```

// The deprecated type's own impls and tests reference it, which is
// the point of this module.
#![allow(deprecated)]

use crate::engine::{Algorithm, RunReport, SimEngine};
use dgs_graph::{Graph, Pattern};
use dgs_net::{CostModel, ExecutorKind, RunMetrics};
use dgs_partition::Fragmentation;
use std::sync::Arc;

/// One-shot runner configuration: executor choice and cost model.
///
/// Deprecated in favor of [`SimEngine`], which computes the planner's
/// structural facts once per loaded graph instead of once per query
/// and returns `Result` instead of panicking. Every call through this
/// shim pays an extra `O(|V| + |E|)` structural-facts pass on top of
/// the distributed run — loops over large graphs should hold a
/// `SimEngine` instead.
#[deprecated(
    since = "0.2.0",
    note = "build a SimEngine once (SimEngine::builder(graph, frag).build()) and query it"
)]
#[derive(Clone, Debug)]
pub struct DistributedSim {
    /// Which executor drives the protocol.
    pub executor: ExecutorKind,
    /// The virtual-time cost model.
    pub cost: CostModel,
}

impl Default for DistributedSim {
    fn default() -> Self {
        DistributedSim {
            executor: ExecutorKind::Virtual,
            cost: CostModel::default(),
        }
    }
}

impl DistributedSim {
    /// A runner on the deterministic virtual-time executor.
    pub fn virtual_time(cost: CostModel) -> Self {
        DistributedSim {
            executor: ExecutorKind::Virtual,
            cost,
        }
    }

    /// A runner on real threads.
    pub fn threaded() -> Self {
        DistributedSim {
            executor: ExecutorKind::Threaded,
            cost: CostModel::default(),
        }
    }

    /// Builds the throwaway session this one-shot call runs in.
    fn engine(&self, graph: &Graph, frag: &Arc<Fragmentation>) -> SimEngine {
        SimEngine::builder(graph, Arc::clone(frag))
            .executor(self.executor)
            .cost(self.cost.clone())
            .build()
    }

    /// Runs a **Boolean** pattern query (§2.1): returns only whether
    /// `G` matches `Q`, plus metrics.
    ///
    /// # Panics
    /// Panics where [`SimEngine::query_boolean_with`] would return an
    /// error.
    pub fn run_boolean(
        &self,
        algorithm: &Algorithm,
        graph: &Graph,
        frag: &Arc<Fragmentation>,
        q: &Pattern,
    ) -> (bool, RunMetrics) {
        let report = self
            .engine(graph, frag)
            .query_boolean_with(algorithm, q)
            .unwrap_or_else(|e| panic!("{e}"));
        (report.is_match, report.metrics)
    }

    /// Runs `algorithm` on the fragmented graph and returns the
    /// answer with metrics.
    ///
    /// # Panics
    /// Panics if `Dgpmd` is requested with a cyclic pattern *and* a
    /// cyclic graph (Theorem 3 does not apply), or `Dgpmt` with a
    /// non-tree graph — where [`SimEngine::query_with`] would return
    /// [`DgsError::Unsupported`](crate::DgsError::Unsupported).
    pub fn run(
        &self,
        algorithm: &Algorithm,
        graph: &Graph,
        frag: &Arc<Fragmentation>,
        q: &Pattern,
    ) -> RunReport {
        self.engine(graph, frag)
            .query_with(algorithm, q)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{patterns, random, tree};
    use dgs_partition::{hash_partition, tree_partition};
    use dgs_sim::hhk_simulation;

    #[test]
    fn all_general_algorithms_agree_with_oracle() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        for algo in [
            Algorithm::dgpm(),
            Algorithm::dgpm_nopt(),
            Algorithm::dgpm_incremental_only(),
            Algorithm::Dgpms,
            Algorithm::MatchCentral,
            Algorithm::DisHhk,
            Algorithm::DMes,
        ] {
            let report = DistributedSim::default().run(&algo, &w.graph, &frag, &w.pattern);
            assert_eq!(report.relation, oracle, "{}", report.algorithm);
            assert!(report.is_match);
        }
    }

    #[test]
    fn dgpmd_shortcircuits_cyclic_pattern_on_dag() {
        let g = dgs_graph::generate::dag::citation_like(100, 250, 4, 1);
        let q = patterns::random_cyclic(3, 5, 4, 1);
        let assign = hash_partition(100, 3, 1);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let report = DistributedSim::default().run(&Algorithm::Dgpmd, &g, &frag, &q);
        assert!(!report.is_match);
        assert!(report.answer().is_empty());
        assert_eq!(report.metrics.data_bytes, 0);
        // Uniform accounting: the short-circuit now charges the same
        // query broadcast as every other path.
        assert_eq!(report.metrics.control_messages, 3);
    }

    #[test]
    #[should_panic(expected = "DAG pattern or a DAG graph")]
    fn dgpmd_rejects_doubly_cyclic_input() {
        let g = random::uniform(50, 200, 4, 2);
        let q = patterns::random_cyclic(3, 5, 4, 2);
        let assign = hash_partition(50, 2, 2);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let _ = DistributedSim::default().run(&Algorithm::Dgpmd, &g, &frag, &q);
    }

    #[test]
    #[should_panic(expected = "rooted tree")]
    fn dgpmt_rejects_non_tree() {
        let g = random::uniform(50, 200, 4, 3);
        let q = patterns::random_cyclic(3, 5, 4, 3);
        let assign = hash_partition(50, 2, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let _ = DistributedSim::default().run(&Algorithm::Dgpmt, &g, &frag, &q);
    }

    #[test]
    fn tree_algorithm_via_api() {
        let g = tree::random_tree(200, 4, 4);
        let q = patterns::path_pattern(2, &[dgs_graph::Label(0), dgs_graph::Label(1)]);
        let assign = tree_partition(&g, 4);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
        let report = DistributedSim::default().run(&Algorithm::Dgpmt, &g, &frag, &q);
        let oracle = hhk_simulation(&q, &g).relation;
        assert_eq!(report.relation, oracle);
    }

    #[test]
    fn empty_answer_convention() {
        // A pattern whose label does not occur: relation is empty,
        // is_match false, answer empty.
        let g = random::uniform(60, 200, 3, 5);
        let mut qb = dgs_graph::PatternBuilder::new();
        qb.add_node(dgs_graph::Label(9)); // label 9 not in the graph
        let q = qb.build();
        let assign = hash_partition(60, 2, 5);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 2));
        let report = DistributedSim::default().run(&Algorithm::dgpm(), &g, &frag, &q);
        assert!(!report.is_match);
        assert!(report.answer().is_empty());
    }

    #[test]
    fn query_broadcast_is_accounted() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let report = DistributedSim::default().run(
            &Algorithm::dgpm_incremental_only(),
            &w.graph,
            &frag,
            &w.pattern,
        );
        // Gather (3) + broadcast (3).
        assert_eq!(report.metrics.control_messages, 6);
    }

    #[test]
    fn names() {
        assert_eq!(Algorithm::Auto.name(), "Auto");
        assert_eq!(Algorithm::dgpm().name(), "dGPM");
        assert_eq!(Algorithm::dgpm_nopt().name(), "dGPMNOpt");
        assert_eq!(Algorithm::dgpm_incremental_only().name(), "dGPM-nopush");
        assert_eq!(Algorithm::Dgpmd.name(), "dGPMd");
        assert_eq!(Algorithm::Dgpms.name(), "dGPMs");
        assert_eq!(Algorithm::Dgpmt.name(), "dGPMt");
        assert_eq!(Algorithm::MatchCentral.name(), "Match");
        assert_eq!(Algorithm::DisHhk.name(), "disHHK");
        assert_eq!(Algorithm::DMes.name(), "dMes");
    }
}
