//! The push operation (§4.2) and symbolic equation extraction.
//!
//! A site `Si` whose parents would otherwise wait on a long dependency
//! chain can *push* the Boolean equations of its unevaluated in-node
//! variables to its parent sites `Sj`, expressed over `Si`'s virtual
//! variables. `Sj` inlines those equations and subscribes directly to
//! the third-party sites `Sk` that own the referenced variables,
//! bypassing the hop through `Si`. The decision uses the benefit
//! function
//!
//! ```text
//! B(Si) = |Fi.O'| / (m · |Fi.I'|)      (push iff B(Si) ≥ θ)
//! ```
//!
//! where `Fi.O'`/`Fi.I'` are the unevaluated virtual/in-node variable
//! counts and `m` is the total size of the equations to ship.
//!
//! Equation extraction ([`Expander`]) reduces an in-node variable to a
//! formula over virtual variables by DFS substitution through the
//! fragment's AND–OR structure. Cycles among local nodes are resolved
//! by *greatest-fixpoint elimination*: a back-edge to a variable
//! currently being expanded substitutes `true` (for a monotone system
//! `gfp X. f(X) = f(true)`, applied along the DFS as nested Bekić
//! elimination). Results that saw a back-edge are "tainted" and not
//! memoized — their closed form is only valid for the root being
//! expanded; clean results are cached and shared. A size budget aborts
//! pathological expansions (the push is then skipped, never wrong).
//!
//! Rewiring is additive: `Sk` keeps notifying `Si` (which still needs
//! its own matches) and *additionally* notifies `Sj` — extra shipment
//! traded for latency, as the paper describes.

use crate::boolexpr::BExpr;
use crate::local_eval::LocalEval;
use crate::vars::Var;
use dgs_net::WireSize;
use dgs_partition::SiteId;
use std::collections::{HashMap, HashSet};

/// One pushed equation: the in-node variable and its closed form over
/// the pushing site's virtual variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PushedEq {
    /// The in-node variable of the pushing site.
    pub var: Var,
    /// Its equation over virtual variables (of the pushing site).
    pub expr: BExpr,
}

impl WireSize for PushedEq {
    fn wire_size(&self) -> usize {
        self.var.wire_size() + self.expr.wire_size()
    }
}

/// Bounded symbolic expansion over a [`LocalEval`] state.
pub struct Expander<'a> {
    ev: &'a LocalEval,
    memo: HashMap<(u16, u32), BExpr>,
    in_progress: HashSet<(u16, u32)>,
    budget: i64,
}

impl<'a> Expander<'a> {
    /// Creates an expander with a total size budget (in expression
    /// nodes) shared across all extractions.
    pub fn new(ev: &'a LocalEval, budget: usize) -> Self {
        Expander {
            ev,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            budget: budget as i64,
        }
    }

    /// Expands `X(u, idx)` (`idx` fragment-local) into a formula over
    /// virtual variables; `None` if the budget is exhausted.
    pub fn extract(&mut self, u: u16, idx: u32) -> Option<BExpr> {
        self.expand(u, idx).map(|(e, _)| e)
    }

    /// Remaining budget (tests + ops accounting).
    pub fn budget_left(&self) -> i64 {
        self.budget
    }

    fn expand(&mut self, u: u16, idx: u32) -> Option<(BExpr, bool)> {
        self.budget -= 1;
        if self.budget < 0 {
            return None;
        }
        if !self.ev.is_candidate(u, idx) {
            return Some((BExpr::FALSE, false));
        }
        let frag = self.ev.fragmentation().fragment(self.ev.site());
        if frag.is_virtual(idx) {
            return Some((
                BExpr::Var(Var {
                    q: u,
                    node: frag.global_id(idx).0,
                }),
                false,
            ));
        }
        if self.ev.pattern().is_sink(dgs_graph::QNodeId(u)) {
            return Some((BExpr::TRUE, false));
        }
        if let Some(e) = self.memo.get(&(u, idx)) {
            return Some((e.clone(), false));
        }
        if self.in_progress.contains(&(u, idx)) {
            // gfp elimination of the back-edge.
            return Some((BExpr::TRUE, true));
        }
        self.in_progress.insert((u, idx));
        let mut tainted = false;
        let mut conj = Vec::new();
        for (uc, succs) in self.ev.and_or_structure(u, idx) {
            let mut disj = Vec::with_capacity(succs.len());
            for s in succs {
                let (e, t) = match self.expand(uc, s) {
                    Some(x) => x,
                    None => {
                        self.in_progress.remove(&(u, idx));
                        return None;
                    }
                };
                tainted |= t;
                disj.push(e);
            }
            conj.push(BExpr::or(disj));
        }
        self.in_progress.remove(&(u, idx));
        let expr = BExpr::and(conj);
        self.budget -= expr.size() as i64;
        if self.budget < 0 {
            return None;
        }
        if !tainted {
            self.memo.insert((u, idx), expr.clone());
        }
        Some((expr, tainted))
    }
}

/// Outcome of evaluating the push benefit function at a site.
#[derive(Clone, Debug)]
pub struct PushPlan {
    /// Equations to ship, one entry per in-node variable.
    pub equations: Vec<PushedEq>,
    /// The measured benefit `B(Si)`.
    pub benefit: f64,
}

/// Evaluates `B(Si)` and extracts the equations if the threshold is
/// met; `None` if pushing is not beneficial (or extraction overflowed
/// the size cap).
pub fn plan_push(ev: &mut LocalEval, theta: f64, size_cap: usize) -> Option<PushPlan> {
    let unevaluated_in = ev.unevaluated_in_nodes();
    if unevaluated_in == 0 {
        return None;
    }
    let unevaluated_virt = ev.unevaluated_virtuals();
    if unevaluated_virt == 0 {
        return None;
    }
    let in_vars = ev.candidate_in_node_vars();
    let frag = std::sync::Arc::clone(ev.fragmentation());
    let f = frag.fragment(ev.site());
    let mut expander = Expander::new(ev, size_cap);
    let mut equations = Vec::with_capacity(in_vars.len());
    let mut m = 0usize;
    for var in in_vars {
        let idx = f.index_of(var.node_id()).expect("in-node is local");
        let expr = expander.extract(var.q, idx)?;
        // `m` is the total equation size in expression nodes — the
        // unit under which the paper's θ = 0.2 is calibrated.
        m += expr.size();
        equations.push(PushedEq { var, expr });
    }
    let spent = (size_cap as i64 - expander.budget_left()).max(0) as u64;
    ev.charge(spent);
    if m == 0 {
        return None;
    }
    let benefit = unevaluated_virt as f64 / (m as f64 * unevaluated_in as f64);
    (benefit >= theta).then_some(PushPlan { equations, benefit })
}

/// Equations inlined at a *receiving* site, tracking foreign-variable
/// falsifications.
#[derive(Default, Debug)]
pub struct InlinedEquations {
    eqs: Vec<(Var, BExpr)>,
    false_foreign: HashSet<Var>,
}

impl InlinedEquations {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live inlined equations.
    pub fn len(&self) -> usize {
        self.eqs.len()
    }

    /// True iff no equations are inlined.
    pub fn is_empty(&self) -> bool {
        self.eqs.is_empty()
    }

    /// Inlines freshly received equations; returns the equation
    /// variables that are *already* false under known foreign
    /// falsifications.
    pub fn add(&mut self, eqs: Vec<PushedEq>) -> Vec<Var> {
        let mut newly_false = Vec::new();
        for PushedEq { var, expr } in eqs {
            if self.eval_false(&expr) {
                newly_false.push(var);
            } else {
                self.eqs.push((var, expr));
            }
        }
        newly_false
    }

    /// Records falsified foreign variables; returns equation variables
    /// that become false as a result.
    pub fn apply_false(&mut self, vars: &[Var]) -> Vec<Var> {
        if self.eqs.is_empty() {
            return Vec::new();
        }
        for v in vars {
            self.false_foreign.insert(*v);
        }
        let mut newly_false = Vec::new();
        self.eqs.retain(|(var, expr)| {
            let is_false = {
                let ff = &self.false_foreign;
                !expr.eval(&|v| !ff.contains(&v))
            };
            if is_false {
                newly_false.push(*var);
            }
            !is_false
        });
        newly_false
    }

    /// Total size of the live equations (ops accounting).
    pub fn total_size(&self) -> usize {
        self.eqs.iter().map(|(_, e)| e.size()).sum()
    }

    fn eval_false(&self, expr: &BExpr) -> bool {
        let ff = &self.false_foreign;
        !expr.eval(&|v| !ff.contains(&v))
    }
}

/// Per-variable extra subscribers registered by `Subscribe` rewiring
/// messages at a third-party site.
#[derive(Default, Debug)]
pub struct ExtraSubscribers {
    subs: HashMap<Var, Vec<SiteId>>,
}

impl ExtraSubscribers {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `to` for future falsifications of `var`.
    pub fn register(&mut self, var: Var, to: SiteId) {
        let subs = self.subs.entry(var).or_default();
        if !subs.contains(&to) {
            subs.push(to);
        }
    }

    /// Extra destinations for a falsified `var`.
    pub fn of(&self, var: Var) -> &[SiteId] {
        self.subs.get(&var).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_partition::Fragmentation;
    use std::sync::Arc;

    fn fig1_eval(site: usize) -> (LocalEval, dgs_graph::generate::social::Fig1) {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let (ev, _) = LocalEval::new(frag, site, Arc::new(w.pattern.clone()));
        (ev, w)
    }

    #[test]
    fn expander_reproduces_example6_equations() {
        // Example 6: at F1, X(YF, yf1) = X(F, f2) and
        // X(SP, sp1) = X(YF, yf2) ∨ X(F, f2).
        let (ev, w) = fig1_eval(0);
        let f = ev.fragmentation().fragment(0);
        let mut ex = Expander::new(&ev, 10_000);

        let yf1 = f.index_of(w.node("yf1")).unwrap();
        let e = ex.extract(w.qnode("YF").0, yf1).unwrap();
        assert_eq!(e, BExpr::Var(Var::new(w.qnode("F"), w.node("f2"))));

        let sp1 = f.index_of(w.node("sp1")).unwrap();
        let e = ex.extract(w.qnode("SP").0, sp1).unwrap();
        assert_eq!(
            e,
            BExpr::or(vec![
                BExpr::Var(Var::new(w.qnode("F"), w.node("f2"))),
                BExpr::Var(Var::new(w.qnode("YF"), w.node("yf2"))),
            ])
        );
    }

    #[test]
    fn expander_reproduces_example6_f2_yf2_equations() {
        // At F2: X(F, f2) = X(SP, sp1); X(YF, yf2) = X(YF, yf3)
        // (the latter via the local chain yf2 -> f3 -> sp2).
        let (ev, w) = fig1_eval(1);
        let f = ev.fragmentation().fragment(1);
        let mut ex = Expander::new(&ev, 10_000);

        let f2 = f.index_of(w.node("f2")).unwrap();
        let e = ex.extract(w.qnode("F").0, f2).unwrap();
        assert_eq!(e, BExpr::Var(Var::new(w.qnode("SP"), w.node("sp1"))));

        let yf2 = f.index_of(w.node("yf2")).unwrap();
        let e = ex.extract(w.qnode("YF").0, yf2).unwrap();
        assert_eq!(e, BExpr::Var(Var::new(w.qnode("YF"), w.node("yf3"))));
    }

    #[test]
    fn expander_budget_aborts() {
        let (ev, w) = fig1_eval(1);
        let f = ev.fragmentation().fragment(1);
        let yf2 = f.index_of(w.node("yf2")).unwrap();
        let mut ex = Expander::new(&ev, 1);
        assert!(ex.extract(w.qnode("YF").0, yf2).is_none());
    }

    #[test]
    fn gfp_elimination_on_local_cycle() {
        // A fragment-local 2-cycle x <-> y with matching labels and a
        // virtual anchor: X(A, x) should reduce over the virtual var
        // only. Build: pattern A -> B -> A; graph x(A) -> y(B) -> x,
        // y -> z(A virtual on other site), all on site 0 except z.
        use dgs_graph::{GraphBuilder, Label, PatternBuilder};
        let mut qb = PatternBuilder::new();
        let a = qb.add_node(Label(0));
        let b = qb.add_node(Label(1));
        qb.add_edge(a, b);
        qb.add_edge(b, a);
        let q = qb.build();

        let mut gb = GraphBuilder::new();
        let x = gb.add_node(Label(0));
        let y = gb.add_node(Label(1));
        let z = gb.add_node(Label(0));
        gb.add_edge(x, y);
        gb.add_edge(y, x);
        gb.add_edge(y, z);
        let g = gb.build();

        let frag = Arc::new(Fragmentation::build(&g, &[0, 0, 1], 2));
        let (ev, _) = LocalEval::new(frag, 0, Arc::new(q));
        let f = ev.fragmentation().fragment(0);
        let xi = f.index_of(x).unwrap();
        let mut ex = Expander::new(&ev, 1_000);
        // gfp: X(A,x) = X(B,y); X(B,y) = X(A,x) ∨ X(A,z); eliminating
        // the cycle optimistically: X(A,x) = true ∨ X(A,z) = true.
        let e = ex.extract(0, xi).unwrap();
        assert_eq!(e, BExpr::TRUE);
    }

    #[test]
    fn plan_push_fires_on_fig1() {
        let (mut ev, _) = fig1_eval(0);
        // F1: O' = 3, I' = 2, equations are tiny → benefit is large.
        let plan = plan_push(&mut ev, 0.2, 10_000).expect("push should fire");
        assert_eq!(plan.equations.len(), 2);
        assert!(plan.benefit > 0.0);
        // High theta suppresses the push.
        let (mut ev2, _) = fig1_eval(0);
        assert!(plan_push(&mut ev2, 1e9, 10_000).is_none());
    }

    #[test]
    fn inlined_equations_lifecycle() {
        let v1 = Var { q: 0, node: 1 };
        let v2 = Var { q: 0, node: 2 };
        let target = Var { q: 1, node: 9 };
        let mut inl = InlinedEquations::new();
        // target = v1 ∨ v2.
        let pending = inl.add(vec![PushedEq {
            var: target,
            expr: BExpr::or(vec![BExpr::Var(v1), BExpr::Var(v2)]),
        }]);
        assert!(pending.is_empty());
        assert_eq!(inl.len(), 1);
        assert!(inl.apply_false(&[v1]).is_empty());
        assert_eq!(inl.apply_false(&[v2]), vec![target]);
        assert!(inl.is_empty());
        // Equations already false on arrival are reported immediately.
        let immediate = inl.add(vec![PushedEq {
            var: target,
            expr: BExpr::Var(v1),
        }]);
        assert_eq!(immediate, vec![target]);
    }

    #[test]
    fn extra_subscribers_dedup() {
        let v = Var { q: 0, node: 5 };
        let mut subs = ExtraSubscribers::new();
        subs.register(v, 3);
        subs.register(v, 3);
        subs.register(v, 1);
        assert_eq!(subs.of(v), &[3, 1]);
        assert!(subs.of(Var { q: 0, node: 6 }).is_empty());
    }
}
