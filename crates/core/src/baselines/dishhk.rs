//! `disHHK`: reconstruction of the distributed simulation algorithm of
//! \[Ma, Cao, Huai & Wo, WWW'12\] (\[25\] in the paper).
//!
//! "Subgraphs from different sites are collected to a single site to
//! form a directly query-able graph, where matches can be determined."
//! Each site ships the subgraph induced by its *candidate* nodes
//! (nodes whose label occurs in the query — the only pruning that is
//! sound without cross-site information); the coordinator assembles
//! these into one graph and runs centralized HHK. Per Table 1 its data
//! shipment is `O(|G| + 4|Vf| + |F||Q|)` and its response time
//! `O((|Vq|+|V|)(|Eq|+|E|))` — both functions of the whole graph,
//! which is exactly what the paper's figures show against `dGPM`.
//!
//! The original implementation is unavailable; this reconstruction
//! follows the paper's description and matches the stated bounds (see
//! DESIGN.md §4).

use crate::vars::WireSubgraph;
use dgs_graph::{GraphBuilder, Label, NodeId, Pattern};
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::{hhk_simulation, MatchRelation};
use std::collections::HashMap;
use std::sync::Arc;

/// Messages of the `disHHK` protocol.
#[derive(Clone, Debug)]
pub enum DishhkMsg {
    /// The candidate-induced subgraph of one site (data).
    Candidates(WireSubgraph),
}

impl WireSize for DishhkMsg {
    fn wire_size(&self) -> usize {
        let DishhkMsg::Candidates(sg) = self;
        1 + sg.wire_size()
    }
}

/// Site logic: filter by query labels, ship the induced subgraph.
pub struct DishhkSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
}

impl DishhkSite {
    /// Creates the site logic.
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>) -> Self {
        DishhkSite { site, frag, q }
    }
}

impl dgs_net::RemoteSpec for DishhkSite {
    /// The disHHK baseline ships state that is not worth a wire
    /// format; it stays in-process, and the socket executor reports a
    /// typed `Unsupported` error instead of running it.
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Err(
            "the disHHK baseline is not socket-remotable; use the virtual or threaded executor"
                .to_owned(),
        )
    }
}

impl SiteLogic<DishhkMsg> for DishhkSite {
    fn on_start(&mut self, out: &mut Outbox<DishhkMsg>) {
        let f = self.frag.fragment(self.site);
        let query_labels: Vec<bool> = {
            let bound = self
                .q
                .labels()
                .iter()
                .map(|l| l.index() + 1)
                .max()
                .unwrap_or(0);
            let mut v = vec![false; bound];
            for l in self.q.labels() {
                v[l.index()] = true;
            }
            v
        };
        let is_cand = |label: Label| -> bool {
            label.index() < query_labels.len() && query_labels[label.index()]
        };

        let mut sg = WireSubgraph::default();
        let mut ops = 0u64;
        for idx in f.local_indices() {
            ops += 1;
            if !is_cand(f.label(idx)) {
                continue;
            }
            sg.nodes.push((f.global_id(idx).0, f.label(idx).0));
            for &t in f.successors(idx) {
                ops += 1;
                // Candidate targets only; both endpoints' labels are
                // locally known (virtual labels are stored in Fi).
                if is_cand(f.label(t)) {
                    sg.edges.push((f.global_id(idx).0, f.global_id(t).0));
                }
            }
        }
        out.charge_ops(ops);
        out.send(Endpoint::Coordinator, DishhkMsg::Candidates(sg));
    }

    fn on_message(&mut self, _from: Endpoint, _msg: DishhkMsg, _out: &mut Outbox<DishhkMsg>) {
        unreachable!("disHHK sites receive nothing");
    }
}

/// Coordinator: assemble the candidate graph (sparse ids → dense) and
/// run HHK.
pub struct DishhkCoordinator {
    q: Arc<Pattern>,
    nodes: Vec<(u32, u16)>,
    edges: Vec<(u32, u32)>,
    /// The final relation over *global* node ids (after the run).
    pub answer: Option<MatchRelation>,
    /// Total query-node count (for empty-graph edge cases).
    nq: usize,
}

impl DishhkCoordinator {
    /// Creates the coordinator.
    pub fn new(q: Arc<Pattern>) -> Self {
        let nq = q.node_count();
        DishhkCoordinator {
            q,
            nodes: Vec::new(),
            edges: Vec::new(),
            answer: None,
            nq,
        }
    }
}

impl CoordinatorLogic<DishhkMsg> for DishhkCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DishhkMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DishhkMsg, out: &mut Outbox<DishhkMsg>) {
        let DishhkMsg::Candidates(sg) = msg;
        out.charge_ops((sg.nodes.len() + sg.edges.len()) as u64);
        self.nodes.extend(sg.nodes);
        self.edges.extend(sg.edges);
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DishhkMsg>) -> bool {
        // Dense remap of the sparse candidate ids.
        let mut dense: HashMap<u32, u32> = HashMap::with_capacity(self.nodes.len());
        let mut b = GraphBuilder::with_capacity(self.nodes.len(), self.edges.len());
        let mut back = Vec::with_capacity(self.nodes.len());
        for &(id, l) in &self.nodes {
            dense.insert(id, back.len() as u32);
            back.push(id);
            b.add_node(Label(l));
        }
        for &(u, v) in &self.edges {
            // Both endpoints are candidates, hence present.
            b.add_edge(NodeId(dense[&u]), NodeId(dense[&v]));
        }
        let g = b.build();
        out.charge_ops(g.size() as u64);
        let result = hhk_simulation(&self.q, &g);
        out.charge_ops(result.ops);
        // Map back to global ids.
        let lists: Vec<Vec<NodeId>> = (0..self.nq)
            .map(|u| {
                result
                    .relation
                    .matches_of(dgs_graph::QNodeId(u as u16))
                    .iter()
                    .map(|&v| NodeId(back[v.index()]))
                    .collect()
            })
            .collect();
        self.answer = Some(MatchRelation::from_lists(lists));
        true
    }
}

/// Builds the full actor set for a `disHHK` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (DishhkCoordinator, Vec<DishhkSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DishhkSite::new(s, Arc::clone(frag), Arc::clone(q)))
        .collect();
    (DishhkCoordinator::new(Arc::clone(q)), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{patterns, random};
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;

    #[test]
    fn dishhk_equals_oracle_on_fig1() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
    }

    #[test]
    fn dishhk_prunes_by_label_but_still_ships_plenty() {
        // With 3 of 8 labels in the query, shipment is a constant
        // fraction of |G| — orders above dGPM, below Match.
        let g = random::uniform(500, 2_000, 8, 3);
        let q = Arc::new(patterns::random_cyclic(3, 5, 3, 3));
        let assign = hash_partition(500, 4, 3);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 4));

        let (coord, sites) = build(&frag, &q);
        let dishhk = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let (mcoord, msites) = crate::baselines::match_central::build(&frag, &q);
        let full = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), mcoord, msites);
        assert!(dishhk.metrics.data_bytes < full.metrics.data_bytes);
        assert!(dishhk.metrics.data_bytes > full.metrics.data_bytes / 100);
        // Answers agree with each other and the oracle.
        let oracle = hhk_simulation(&q, &g).relation;
        assert_eq!(dishhk.coordinator.answer.unwrap(), oracle);
        assert_eq!(full.coordinator.answer.unwrap(), oracle);
    }

    #[test]
    fn random_inputs_match_oracle() {
        for seed in 0..10 {
            let g = random::uniform(200, 700, 5, seed);
            let q = Arc::new(patterns::random_cyclic(4, 7, 5, seed + 100));
            let assign = hash_partition(200, 3, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
            let (coord, sites) = build(&frag, &q);
            let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(outcome.coordinator.answer.unwrap(), oracle, "seed {seed}");
        }
    }
}
