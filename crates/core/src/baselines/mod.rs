//! The baselines the paper compares against (§6, "Algorithms"):
//!
//! * [`match_central`] — `Match`: ship every fragment to one site and
//!   run centralized HHK (the naive algorithm of §3.1; DS = `O(|G|)`);
//! * [`dishhk`] — `disHHK`, a reconstruction of [Ma et al., WWW'12]:
//!   ship candidate-induced subgraphs to a single site and query the
//!   assembled graph (DS = `O(|G| + 4|Vf| + |F||Q|)` per Table 1);
//! * [`dmes`] — `dMes`, the paper's own vertex-centric stand-in for
//!   Pregel [14, 26]: synchronized supersteps in which every site
//!   re-requests the Boolean vectors of all its virtual nodes,
//!   performs local evaluation and votes to halt.

pub mod dishhk;
pub mod dmes;
pub mod match_central;
