//! `dMes`: the vertex-centric (Pregel-style) baseline, as the paper
//! itself implements it for §6:
//!
//! "Upon receiving Q from a coordinator Sc, each site Si, as a worker,
//! does the following (as a superstep) for each virtual node in
//! fragment Fi. (1) It requests the Boolean values from other sites
//! for the variables of its virtual nodes. (2) It performs local
//! evaluation to update all its local variables. (3) If no change
//! happens, it sends a flag to Sc to vote for termination. ... For a
//! fair comparison, we do not assume message passing for local
//! evaluation."
//!
//! The redundancy is structural: *every* superstep re-ships a request
//! and a full Boolean vector for *every* virtual node, whether or not
//! anything changed — which is why the paper measures dMes shipping
//! ~2 orders of magnitude more data than `dGPM` and being ~20× slower.

use crate::local_eval::LocalEval;
use crate::vars::{AnswerBuilder, MatchLists, Var};
use dgs_graph::Pattern;
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::MatchRelation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Messages of the `dMes` protocol.
#[derive(Clone, Debug)]
pub enum DmesMsg {
    /// Request the vectors of these nodes (data; site → owner site).
    Request(Vec<u32>),
    /// Full Boolean vectors: `(node, candidacy bitmask over query
    /// nodes)` (data; owner → requester).
    Vectors(Vec<(u32, u64)>),
    /// Begin the next superstep (control; coordinator → sites).
    StartSuperstep,
    /// Per-superstep vote: did anything change here? (control).
    Voted(bool),
    /// Result collection request (control).
    GatherRequest,
    /// Local matches (result).
    LocalMatches(MatchLists),
}

impl WireSize for DmesMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            DmesMsg::Request(ids) => 4 + 4 * ids.len(),
            DmesMsg::Vectors(vs) => 4 + 12 * vs.len(),
            DmesMsg::StartSuperstep => 0,
            DmesMsg::Voted(_) => 1,
            DmesMsg::GatherRequest => 0,
            DmesMsg::LocalMatches(m) => m.wire_size(),
        }
    }
}

/// Site logic of `dMes`.
pub struct DmesSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
    q: Arc<Pattern>,
    eval: Option<LocalEval>,
    /// Virtual node ids grouped by owner site (fixed per fragment).
    requests_by_owner: BTreeMap<SiteId, Vec<u32>>,
    expected_replies: usize,
    received_replies: usize,
    changed_this_step: bool,
}

impl DmesSite {
    /// Creates the site logic.
    pub fn new(site: SiteId, frag: Arc<Fragmentation>, q: Arc<Pattern>) -> Self {
        let f = frag.fragment(site);
        let mut requests_by_owner: BTreeMap<SiteId, Vec<u32>> = BTreeMap::new();
        for idx in f.virtual_indices() {
            requests_by_owner
                .entry(f.virtual_owner(idx))
                .or_default()
                .push(f.global_id(idx).0);
        }
        let expected_replies = requests_by_owner.len();
        DmesSite {
            site,
            frag,
            q,
            eval: None,
            requests_by_owner,
            expected_replies,
            received_replies: 0,
            changed_this_step: false,
        }
    }

    fn vote_if_done(&mut self, out: &mut Outbox<DmesMsg>) {
        if self.received_replies == self.expected_replies {
            out.send_control(
                Endpoint::Coordinator,
                DmesMsg::Voted(self.changed_this_step),
            );
        }
    }
}

impl dgs_net::RemoteSpec for DmesSite {
    /// The dMes baseline ships state that is not worth a wire
    /// format; it stays in-process, and the socket executor reports a
    /// typed `Unsupported` error instead of running it.
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Err(
            "the dMes baseline is not socket-remotable; use the virtual or threaded executor"
                .to_owned(),
        )
    }
}

impl SiteLogic<DmesMsg> for DmesSite {
    fn on_start(&mut self, out: &mut Outbox<DmesMsg>) {
        // Superstep 0's local evaluation; requests wait for the
        // coordinator's StartSuperstep.
        let (mut eval, _falsified) =
            LocalEval::new(Arc::clone(&self.frag), self.site, Arc::clone(&self.q));
        out.charge_ops(eval.take_ops());
        self.eval = Some(eval);
    }

    fn on_message(&mut self, from: Endpoint, msg: DmesMsg, out: &mut Outbox<DmesMsg>) {
        match msg {
            DmesMsg::StartSuperstep => {
                self.received_replies = 0;
                self.changed_this_step = false;
                for (&owner, ids) in &self.requests_by_owner {
                    out.send(Endpoint::Site(owner as u32), DmesMsg::Request(ids.clone()));
                }
                // Sites with no virtual nodes vote immediately.
                self.vote_if_done(out);
            }
            DmesMsg::Request(ids) => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let f = self.frag.fragment(self.site);
                let nq = self.q.node_count();
                assert!(nq <= 64, "dMes bitmask supports up to 64 query nodes");
                let mut vectors = Vec::with_capacity(ids.len());
                for id in ids {
                    let idx = f
                        .index_of(dgs_graph::NodeId(id))
                        .expect("requested node is local here");
                    let mut mask = 0u64;
                    for u in 0..nq as u16 {
                        if eval.is_candidate(u, idx) {
                            mask |= 1 << u;
                        }
                    }
                    vectors.push((id, mask));
                }
                eval.charge(vectors.len() as u64 * nq as u64);
                out.charge_ops(eval.take_ops());
                out.send(from, DmesMsg::Vectors(vectors));
            }
            DmesMsg::Vectors(vectors) => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let nq = self.q.node_count();
                let mut newly_false = Vec::new();
                for (id, mask) in vectors {
                    for u in 0..nq as u16 {
                        if mask & (1 << u) == 0 {
                            newly_false.push(Var { q: u, node: id });
                        }
                    }
                }
                // Any knock-on local change counts as "changed".
                let f = self.frag.fragment(self.site);
                let nq16 = nq as u16;
                let fresh: Vec<Var> = newly_false
                    .into_iter()
                    .filter(|v| {
                        v.q < nq16
                            && f.index_of(v.node_id())
                                .is_some_and(|idx| eval.is_candidate(v.q, idx))
                    })
                    .collect();
                if !fresh.is_empty() {
                    self.changed_this_step = true;
                    eval.apply_virtual_falsifications(&fresh);
                }
                out.charge_ops(eval.take_ops());
                self.received_replies += 1;
                self.vote_if_done(out);
            }
            DmesMsg::GatherRequest => {
                let eval = self.eval.as_mut().expect("eval initialized");
                let lists = MatchLists(eval.local_match_lists());
                out.charge_ops(eval.take_ops());
                out.send_result(Endpoint::Coordinator, DmesMsg::LocalMatches(lists));
            }
            DmesMsg::Voted(_) | DmesMsg::LocalMatches(_) => {
                unreachable!("coordinator-only messages")
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Init,
    Superstep,
    Gathering,
    Done,
}

/// Coordinator logic of `dMes`: superstep barriers plus halt voting.
pub struct DmesCoordinator {
    phase: Phase,
    any_changed: bool,
    /// Supersteps executed (for analysis).
    pub supersteps: u64,
    builder: Option<AnswerBuilder>,
    /// The assembled relation (after the run).
    pub answer: Option<MatchRelation>,
}

impl DmesCoordinator {
    /// Creates the coordinator for a pattern with `nq` query nodes.
    pub fn new(nq: usize) -> Self {
        DmesCoordinator {
            phase: Phase::Init,
            any_changed: false,
            supersteps: 0,
            builder: Some(AnswerBuilder::new(nq)),
            answer: None,
        }
    }

    fn broadcast_superstep(&mut self, out: &mut Outbox<DmesMsg>) {
        self.any_changed = false;
        self.supersteps += 1;
        for i in 0..out.num_sites() {
            out.send_control(Endpoint::Site(i as u32), DmesMsg::StartSuperstep);
        }
    }
}

impl CoordinatorLogic<DmesMsg> for DmesCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<DmesMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: DmesMsg, out: &mut Outbox<DmesMsg>) {
        match msg {
            DmesMsg::Voted(changed) => self.any_changed |= changed,
            DmesMsg::LocalMatches(lists) => {
                let ops = self
                    .builder
                    .as_mut()
                    .expect("gathering phase")
                    .merge(&lists);
                out.charge_ops(ops);
            }
            _ => unreachable!("site-only messages"),
        }
    }

    fn on_quiescent(&mut self, out: &mut Outbox<DmesMsg>) -> bool {
        match self.phase {
            Phase::Init => {
                if out.num_sites() == 0 {
                    self.answer = Some(self.builder.take().unwrap().finish());
                    self.phase = Phase::Done;
                    return true;
                }
                self.phase = Phase::Superstep;
                self.broadcast_superstep(out);
                false
            }
            Phase::Superstep => {
                if self.any_changed {
                    self.broadcast_superstep(out);
                    false
                } else {
                    self.phase = Phase::Gathering;
                    for i in 0..out.num_sites() {
                        out.send_control(Endpoint::Site(i as u32), DmesMsg::GatherRequest);
                    }
                    false
                }
            }
            Phase::Gathering => {
                self.answer = Some(self.builder.take().unwrap().finish());
                self.phase = Phase::Done;
                true
            }
            Phase::Done => true,
        }
    }
}

/// Builds the full actor set for a `dMes` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (DmesCoordinator, Vec<DmesSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| DmesSite::new(s, Arc::clone(frag), Arc::clone(q)))
        .collect();
    (DmesCoordinator::new(q.node_count()), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_graph::generate::{adversarial, patterns, random};
    use dgs_net::{CostModel, ExecutorKind};
    use dgs_partition::hash_partition;
    use dgs_sim::hhk_simulation;

    #[test]
    fn dmes_equals_oracle_on_fig1() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
        // In Fig. 1 no variable is ever falsified, so the very first
        // superstep already confirms the fixpoint.
        assert_eq!(outcome.coordinator.supersteps, 1);
    }

    #[test]
    fn dmes_reships_vectors_every_superstep() {
        // The broken adversarial ring forces Θ(n) supersteps; each
        // re-requests every virtual node, so shipment grows
        // superlinearly in n — the redundancy dGPM avoids.
        let q = Arc::new(adversarial::q0());
        let n = 12;
        let g = adversarial::broken_cycle_graph(n);
        let assign = adversarial::per_pair_assignment(n);
        let frag = Arc::new(Fragmentation::build(&g, &assign, n));
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        assert!(!outcome.coordinator.answer.as_ref().unwrap().is_total());
        assert!(
            outcome.coordinator.supersteps as usize >= n / 2,
            "supersteps {} too few",
            outcome.coordinator.supersteps
        );
        // Per superstep: n requests + n replies.
        assert!(outcome.metrics.data_messages >= 2 * (n as u64) * (n as u64) / 2);
    }

    #[test]
    fn random_inputs_match_oracle() {
        for seed in 0..10 {
            let g = random::uniform(150, 500, 5, seed);
            let q = Arc::new(patterns::random_cyclic(4, 7, 5, seed + 7));
            let assign = hash_partition(150, 4, seed);
            let frag = Arc::new(Fragmentation::build(&g, &assign, 4));
            let (coord, sites) = build(&frag, &q);
            let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
            let oracle = hhk_simulation(&q, &g).relation;
            assert_eq!(outcome.coordinator.answer.unwrap(), oracle, "seed {seed}");
        }
    }

    #[test]
    fn threaded_agrees_with_virtual() {
        let g = random::uniform(120, 420, 4, 9);
        let q = Arc::new(patterns::random_cyclic(3, 6, 4, 9));
        let assign = hash_partition(120, 3, 9);
        let frag = Arc::new(Fragmentation::build(&g, &assign, 3));
        let run = |kind| {
            let (coord, sites) = build(&frag, &q);
            dgs_net::run(kind, &CostModel::default(), coord, sites)
                .coordinator
                .answer
                .unwrap()
        };
        assert_eq!(run(ExecutorKind::Virtual), run(ExecutorKind::Threaded));
    }
}
