//! `Match`: the naive ship-everything baseline (§3.1).
//!
//! "Given a pattern Q and a graph G that is fragmented and
//! distributed, it ships all the fragments of G to a single site, and
//! uses a centralized algorithm to compute the answer to Q. This
//! approach ships data almost as large as |G|."

use crate::vars::WireSubgraph;
use dgs_graph::{GraphBuilder, Label, NodeId, Pattern};
use dgs_net::{CoordinatorLogic, Endpoint, Outbox, SiteLogic, WireSize};
use dgs_partition::{Fragmentation, SiteId};
use dgs_sim::{hhk_simulation, MatchRelation};
use std::sync::Arc;

/// Messages of the `Match` protocol.
#[derive(Clone, Debug)]
pub enum MatchMsg {
    /// A whole fragment: local nodes plus all of `Ei` (data).
    Fragment(WireSubgraph),
}

impl WireSize for MatchMsg {
    fn wire_size(&self) -> usize {
        let MatchMsg::Fragment(sg) = self;
        1 + sg.wire_size()
    }
}

/// Site logic: ship the fragment, once.
pub struct MatchSite {
    site: SiteId,
    frag: Arc<Fragmentation>,
}

impl MatchSite {
    /// Creates the site logic.
    pub fn new(site: SiteId, frag: Arc<Fragmentation>) -> Self {
        MatchSite { site, frag }
    }
}

impl dgs_net::RemoteSpec for MatchSite {
    /// The Match baseline ships state that is not worth a wire
    /// format; it stays in-process, and the socket executor reports a
    /// typed `Unsupported` error instead of running it.
    fn remote_spec(&self) -> Result<Vec<u8>, String> {
        Err(
            "the Match baseline is not socket-remotable; use the virtual or threaded executor"
                .to_owned(),
        )
    }
}

impl SiteLogic<MatchMsg> for MatchSite {
    fn on_start(&mut self, out: &mut Outbox<MatchMsg>) {
        let f = self.frag.fragment(self.site);
        let mut sg = WireSubgraph::default();
        for idx in f.local_indices() {
            sg.nodes.push((f.global_id(idx).0, f.label(idx).0));
            for &t in f.successors(idx) {
                sg.edges.push((f.global_id(idx).0, f.global_id(t).0));
            }
        }
        out.charge_ops((sg.nodes.len() + sg.edges.len()) as u64);
        out.send(Endpoint::Coordinator, MatchMsg::Fragment(sg));
    }

    fn on_message(&mut self, _from: Endpoint, _msg: MatchMsg, _out: &mut Outbox<MatchMsg>) {
        unreachable!("Match sites receive nothing");
    }
}

/// Coordinator logic: reassemble `G`, run centralized HHK.
pub struct MatchCoordinator {
    q: Arc<Pattern>,
    nodes: Vec<(u32, u16)>,
    edges: Vec<(u32, u32)>,
    /// The final relation (after the run).
    pub answer: Option<MatchRelation>,
}

impl MatchCoordinator {
    /// Creates the coordinator.
    pub fn new(q: Arc<Pattern>) -> Self {
        MatchCoordinator {
            q,
            nodes: Vec::new(),
            edges: Vec::new(),
            answer: None,
        }
    }
}

impl CoordinatorLogic<MatchMsg> for MatchCoordinator {
    fn on_start(&mut self, _out: &mut Outbox<MatchMsg>) {}

    fn on_message(&mut self, _from: Endpoint, msg: MatchMsg, out: &mut Outbox<MatchMsg>) {
        let MatchMsg::Fragment(sg) = msg;
        out.charge_ops((sg.nodes.len() + sg.edges.len()) as u64);
        self.nodes.extend(sg.nodes);
        self.edges.extend(sg.edges);
    }

    fn on_quiescent(&mut self, out: &mut Outbox<MatchMsg>) -> bool {
        // Reassemble the graph; global ids are dense.
        let n = self
            .nodes
            .iter()
            .map(|&(id, _)| id as usize + 1)
            .max()
            .unwrap_or(0);
        let mut b = GraphBuilder::with_capacity(n, self.edges.len());
        let mut labels = vec![0u16; n];
        for &(id, l) in &self.nodes {
            labels[id as usize] = l;
        }
        for &l in &labels {
            b.add_node(Label(l));
        }
        for &(u, v) in &self.edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let g = b.build();
        out.charge_ops(g.size() as u64);
        let result = hhk_simulation(&self.q, &g);
        out.charge_ops(result.ops);
        self.answer = Some(result.relation);
        true
    }
}

/// Builds the full actor set for a `Match` run.
pub fn build(frag: &Arc<Fragmentation>, q: &Arc<Pattern>) -> (MatchCoordinator, Vec<MatchSite>) {
    let sites = (0..frag.num_sites())
        .map(|s| MatchSite::new(s, Arc::clone(frag)))
        .collect();
    (MatchCoordinator::new(Arc::clone(q)), sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;
    use dgs_net::{CostModel, ExecutorKind};

    #[test]
    fn match_baseline_equals_oracle_and_ships_whole_graph() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Virtual, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
        // Data shipped ≈ serialized |G|: 13 nodes * 6 + 18 edges * 8 +
        // per-message headers.
        assert!(outcome.metrics.data_bytes as usize >= 13 * 6 + 18 * 8);
        assert_eq!(outcome.metrics.data_messages, 3);
    }

    #[test]
    fn threaded_agrees() {
        let w = fig1();
        let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
        let q = Arc::new(w.pattern.clone());
        let (coord, sites) = build(&frag, &q);
        let outcome = dgs_net::run(ExecutorKind::Threaded, &CostModel::default(), coord, sites);
        let oracle = hhk_simulation(&w.pattern, &w.graph).relation;
        assert_eq!(outcome.coordinator.answer.unwrap(), oracle);
    }
}
