//! Live match subscriptions: the server-side registry that turns
//! [`dgs_core::DeltaReport::maintained_diffs`] into `MATCH_DIFF` push
//! frames.
//!
//! A subscription is a `(connection, session, pattern)` triple with
//! the pattern's current match rows attached. `SUBSCRIBE` snapshots
//! the rows (a plain query — a cache hit when the pattern was asked
//! before) and registers the triple; every wire-applied delta then
//! calls [`SubscriptionRegistry::on_delta`], which updates each
//! affected subscription's rows and queues one encoded `MATCH_DIFF`
//! frame per non-empty change.
//!
//! ## The free path and the fallback
//!
//! The insertion-side maintenance protocol keeps every cached entry
//! exact under *every* batch shape and reports the per-entry changes
//! as [`MaintainedDiff`]s tagged with the entry's canonical pattern
//! key. A subscription stores its pattern's canonical key and the
//! canonical→original node mapping, so consuming a maintained diff is
//! a translation plus a few sorted-vec edits — no query, no protocol
//! messages. Only when no diff matches (the entry was evicted from
//! the result cache, or the digest chain broke) does the registry
//! fall back to re-querying the engine and set-diffing against the
//! subscription's rows.
//!
//! ## Ordering
//!
//! Engine generations are strictly increasing but **not contiguous**
//! (they come from a shared allocator), and worker threads may enter
//! `on_delta` out of publication order. Digests therefore chain on
//! `prev_generation → generation` edges: a digest applies only when
//! the session's cursor equals its `prev_generation`; out-of-order
//! arrivals stash until their predecessor lands. A chain that stalls
//! (an in-process writer bypassing the wire, a stash past its bound)
//! resynchronizes by re-querying every subscription — the stream is
//! self-healing, never silently wrong.
//!
//! ## Backpressure
//!
//! Queued frames per subscription are bounded. A subscriber that
//! stops reading while deltas keep coming overflows its queue: the
//! queued diffs are discarded and replaced by a single terminal
//! `SUB_EVENT(overflow)` — the client learns it lost the stream and
//! can re-subscribe for a fresh snapshot. Memory stays bounded no
//! matter how slow the peer is.

use crate::proto::{MatchDiff, Response, SubEventKind, WireAlgorithm};
use crate::wire::encode_frame_into;
use dgs_core::delta::MaintainedDiff;
use dgs_core::{DgsError, SimEngine};
use dgs_graph::{Pattern, QNodeId};
use dgs_net::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Queued push frames per subscription before it overflows.
pub(crate) const DEFAULT_SUB_QUEUE_MAX: usize = 64;

/// Unprocessed digests per session before the registry stops waiting
/// for the chain and resynchronizes by re-query.
const STASH_MAX: usize = 4;

/// One registered subscription.
struct Subscription {
    conn_id: u64,
    session: String,
    pattern: Pattern,
    algorithm: WireAlgorithm,
    /// The pattern's canonical cache key — what
    /// [`MaintainedDiff::canon_key`] is matched against.
    canon_key: Vec<u32>,
    /// Original node index at each canonical position (diff vars
    /// speak canonical positions; rows are kept in the subscriber's
    /// numbering).
    node_at: Vec<u16>,
    /// Current match rows, one sorted list per query node.
    rows: Vec<Vec<u32>>,
    /// The generation `rows` reflects.
    generation: u64,
    /// Encoded id-0 push frames awaiting the event loop. Bounded;
    /// overflow discards everything and leaves one terminal event.
    queue: VecDeque<Vec<u8>>,
    /// Terminal: the queue holds only a final `SUB_EVENT`; remove the
    /// subscription once it drains.
    dead: bool,
}

/// One delta's digest: the `prev → gen` edge plus the per-entry
/// diffs.
struct Digest {
    generation: u64,
    diffs: Vec<MaintainedDiff>,
}

/// Per-session chain state.
#[derive(Default)]
struct SessionChain {
    ids: Vec<u64>,
    /// The generation every live subscription of this session is at.
    cursor: u64,
    /// Digests that arrived ahead of their predecessor, keyed by
    /// `prev_generation`.
    stash: BTreeMap<u64, Digest>,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    subs: HashMap<u64, Subscription>,
    by_conn: HashMap<u64, Vec<u64>>,
    by_session: HashMap<String, SessionChain>,
}

/// Subscription lifecycle handles into the server's metrics registry.
/// The default (disabled) handles are no-ops, so the registry works
/// unchanged when metrics are off.
#[derive(Clone, Default)]
pub(crate) struct SubObs {
    /// Live subscriptions right now (mirrors
    /// [`SubscriptionRegistry::live_count`]).
    pub active: Gauge,
    /// `MATCH_DIFF` frames queued for push, cumulative.
    pub pushed: Counter,
    /// Subscriptions terminated because their push queue overflowed.
    pub overflows: Counter,
}

/// The server's subscription table. One per daemon, shared by the
/// worker pool (which registers subscriptions and feeds delta
/// digests) and the event loop (which moves queued frames into
/// connection write queues).
pub(crate) struct SubscriptionRegistry {
    inner: Mutex<Inner>,
    max_queue: usize,
    obs: SubObs,
}

impl SubscriptionRegistry {
    /// A registry whose lifecycle changes tick `obs` (pass
    /// `SubObs::default()` for no-op handles).
    pub fn with_obs(max_queue: usize, obs: SubObs) -> SubscriptionRegistry {
        SubscriptionRegistry {
            inner: Mutex::new(Inner::default()),
            max_queue: max_queue.max(1),
            obs,
        }
    }

    /// Re-publishes the live-subscription gauge from the table (called
    /// under the lock after every liveness-changing mutation, so the
    /// gauge can never drift from [`Self::live_count`]).
    fn sync_active(&self, g: &Inner) {
        self.obs
            .active
            .set(g.subs.values().filter(|s| !s.dead).count() as u64);
    }

    /// Registers a subscription and snapshots its rows. The snapshot
    /// query runs under the registry lock so no digest can slip
    /// between the snapshot and the registration.
    pub fn subscribe(
        &self,
        conn_id: u64,
        session: &str,
        engine: &SimEngine,
        pattern: &Pattern,
        algorithm: WireAlgorithm,
    ) -> Result<(u64, u64, Vec<Vec<u32>>), DgsError> {
        let mut g = self.inner.lock();
        // Read the generation *before* the query: the rows may come
        // from a newer snapshot if a writer publishes concurrently,
        // in which case the next digest replays idempotently (sorted
        // set edits check presence) instead of being missed.
        let label = engine.generation();
        let report = engine.query_with(&algorithm.to_algorithm(), pattern)?;
        let rows: Vec<Vec<u32>> = (0..report.relation.query_nodes())
            .map(|u| {
                report
                    .relation
                    .matches_of(QNodeId(u as u16))
                    .iter()
                    .map(|v| v.0)
                    .collect()
            })
            .collect();
        let (canon_key, pos_of) = SimEngine::pattern_canon(pattern);
        let mut node_at = vec![0u16; pos_of.len()];
        for (u, &p) in pos_of.iter().enumerate() {
            node_at[p as usize] = u as u16;
        }
        let id = g.next_id + 1;
        g.next_id = id;
        let chain = g.by_session.entry(session.to_owned()).or_default();
        let generation = label.max(chain.cursor);
        if chain.ids.is_empty() {
            chain.cursor = generation;
            chain.stash.clear();
        }
        chain.ids.push(id);
        g.by_conn.entry(conn_id).or_default().push(id);
        g.subs.insert(
            id,
            Subscription {
                conn_id,
                session: session.to_owned(),
                pattern: pattern.clone(),
                algorithm,
                canon_key,
                node_at,
                rows: rows.clone(),
                generation,
                queue: VecDeque::new(),
                dead: false,
            },
        );
        self.sync_active(&g);
        Ok((id, generation, rows))
    }

    /// Tears down `sub_id` if this connection holds it.
    pub fn unsubscribe(&self, conn_id: u64, sub_id: u64) -> bool {
        let mut g = self.inner.lock();
        match g.subs.get(&sub_id) {
            Some(sub) if sub.conn_id == conn_id => {
                g.remove_sub(sub_id);
                self.sync_active(&g);
                true
            }
            _ => false,
        }
    }

    /// Feeds one applied delta's digest into `session`'s chain and
    /// processes everything that became ready. Returns the connection
    /// ids that gained queued frames (the event loop drains them).
    pub fn on_delta(
        &self,
        session: &str,
        engine: &SimEngine,
        report: &dgs_core::DeltaReport,
    ) -> Vec<u64> {
        let mut g = self.inner.lock();
        let Some(chain) = g.by_session.get_mut(session) else {
            return Vec::new();
        };
        if chain.ids.is_empty() {
            return Vec::new();
        }
        if report.generation <= chain.cursor {
            // A late-arriving digest for a generation the chain (or
            // the subscriptions' snapshots) already covers.
            return Vec::new();
        }
        chain.stash.insert(
            report.prev_generation,
            Digest {
                generation: report.generation,
                diffs: report.maintained_diffs.clone(),
            },
        );
        let mut dirty = Vec::new();
        loop {
            let session_chain = g.by_session.get_mut(session).expect("chain exists");
            if let Some(digest) = session_chain.stash.remove(&session_chain.cursor) {
                let gen = digest.generation;
                let ids = session_chain.ids.clone();
                session_chain.cursor = gen;
                for id in ids {
                    g.apply_digest(id, &digest, engine, self.max_queue, &self.obs, &mut dirty);
                }
            } else if g.by_session.get(session).expect("chain exists").stash.len() > STASH_MAX {
                // The chain stalled (a writer bypassed the wire, or a
                // digest was lost): resynchronize every subscription
                // by re-query and restart the chain at the newest
                // stashed generation.
                let chain = g.by_session.get_mut(session).expect("chain exists");
                let newest = chain
                    .stash
                    .values()
                    .map(|d| d.generation)
                    .max()
                    .expect("stash nonempty");
                chain.stash.clear();
                chain.cursor = newest;
                let ids = chain.ids.clone();
                for id in ids {
                    g.resync_sub(id, newest, engine, self.max_queue, &self.obs, &mut dirty);
                }
                break;
            } else {
                break;
            }
        }
        self.sync_active(&g);
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Terminates every subscription on `session` with a typed event
    /// (the session was dropped or replaced). Returns the connections
    /// that gained frames.
    pub fn drop_session(&self, session: &str) -> Vec<u64> {
        let mut g = self.inner.lock();
        let Some(chain) = g.by_session.get_mut(session) else {
            return Vec::new();
        };
        let ids = std::mem::take(&mut chain.ids);
        chain.stash.clear();
        let mut dirty = Vec::new();
        for id in ids {
            g.kill_sub(id, SubEventKind::SessionDropped, &mut dirty);
        }
        self.sync_active(&g);
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Discards every subscription of a connection that died (nothing
    /// to notify — the socket is gone).
    pub fn drop_conn(&self, conn_id: u64) {
        let mut g = self.inner.lock();
        let ids = g.by_conn.remove(&conn_id).unwrap_or_default();
        for id in ids {
            if let Some(sub) = g.subs.remove(&id) {
                if let Some(chain) = g.by_session.get_mut(&sub.session) {
                    chain.ids.retain(|&i| i != id);
                }
            }
        }
        self.sync_active(&g);
    }

    /// Shutdown drain: replaces every subscription of `conn_id` with
    /// a terminal `Draining` event and returns those frames for the
    /// connection's write queue (ahead of the final drain notice).
    pub fn drain_conn(&self, conn_id: u64) -> Vec<Vec<u8>> {
        let mut g = self.inner.lock();
        let ids = g.by_conn.get(&conn_id).cloned().unwrap_or_default();
        let mut frames = Vec::new();
        for id in ids {
            if g.subs.get(&id).is_some_and(|s| !s.dead) {
                frames.push(encode_push(&Response::SubEvent {
                    sub_id: id,
                    kind: SubEventKind::Draining,
                }));
                g.remove_sub(id);
            }
        }
        self.sync_active(&g);
        frames
    }

    /// Moves up to `budget` queued frames of `conn_id` out of the
    /// registry (the event loop appends them to the connection's
    /// write queue). Dead subscriptions are reaped once empty.
    pub fn take_frames(&self, conn_id: u64, budget: usize) -> Vec<Vec<u8>> {
        let mut g = self.inner.lock();
        let ids = g.by_conn.get(&conn_id).cloned().unwrap_or_default();
        let mut frames = Vec::new();
        for id in ids {
            while frames.len() < budget {
                let Some(sub) = g.subs.get_mut(&id) else {
                    break;
                };
                match sub.queue.pop_front() {
                    Some(f) => frames.push(f),
                    None => break,
                }
            }
            let reap = g
                .subs
                .get(&id)
                .is_some_and(|s| s.dead && s.queue.is_empty());
            if reap {
                g.remove_sub(id);
            }
            if frames.len() >= budget {
                break;
            }
        }
        frames
    }

    /// Whether `conn_id` still has queued frames waiting.
    pub fn has_frames(&self, conn_id: u64) -> bool {
        let g = self.inner.lock();
        g.by_conn.get(&conn_id).is_some_and(|ids| {
            ids.iter()
                .any(|id| g.subs.get(id).is_some_and(|s| !s.queue.is_empty()))
        })
    }

    /// Live subscriptions (tests/metrics).
    pub fn live_count(&self) -> usize {
        let g = self.inner.lock();
        g.subs.values().filter(|s| !s.dead).count()
    }

    /// Push frames currently parked across every subscription queue
    /// (the metrics scrape's occupancy gauge).
    pub fn queued_frames(&self) -> usize {
        let g = self.inner.lock();
        g.subs.values().map(|s| s.queue.len()).sum()
    }
}

/// Encodes a response as an id-0 push frame.
fn encode_push(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, Some(0), |b| resp.encode_into(b))
        .expect("push frames fit MAX_FRAME");
    buf
}

impl Inner {
    /// Detaches `sub_id` from every index and drops it.
    fn remove_sub(&mut self, sub_id: u64) {
        if let Some(sub) = self.subs.remove(&sub_id) {
            if let Some(ids) = self.by_conn.get_mut(&sub.conn_id) {
                ids.retain(|&i| i != sub_id);
                if ids.is_empty() {
                    self.by_conn.remove(&sub.conn_id);
                }
            }
            if let Some(chain) = self.by_session.get_mut(&sub.session) {
                chain.ids.retain(|&i| i != sub_id);
            }
        }
    }

    /// Queues one encoded frame on `sub_id`, overflowing to a
    /// terminal event when the bound is hit.
    fn enqueue(
        &mut self,
        sub_id: u64,
        frame: Vec<u8>,
        max_queue: usize,
        obs: &SubObs,
        dirty: &mut Vec<u64>,
    ) {
        let mut overflowed_session = None;
        {
            let Some(sub) = self.subs.get_mut(&sub_id) else {
                return;
            };
            if sub.dead {
                return;
            }
            if sub.queue.len() >= max_queue {
                // The subscriber stopped reading: discard the backlog,
                // leave one terminal Overflow event, and stop tracking
                // the subscription in its session chain.
                sub.queue.clear();
                sub.queue.push_back(encode_push(&Response::SubEvent {
                    sub_id,
                    kind: SubEventKind::Overflow,
                }));
                sub.dead = true;
                obs.overflows.inc();
                overflowed_session = Some(sub.session.clone());
            } else {
                sub.queue.push_back(frame);
                obs.pushed.inc();
            }
            dirty.push(sub.conn_id);
        }
        if let Some(session) = overflowed_session {
            if let Some(chain) = self.by_session.get_mut(&session) {
                chain.ids.retain(|&i| i != sub_id);
            }
        }
    }

    /// Terminates `sub_id` with `kind`, leaving the event as the only
    /// queued frame.
    fn kill_sub(&mut self, sub_id: u64, kind: SubEventKind, dirty: &mut Vec<u64>) {
        let session;
        {
            let Some(sub) = self.subs.get_mut(&sub_id) else {
                return;
            };
            if sub.dead {
                return;
            }
            sub.queue.clear();
            sub.queue
                .push_back(encode_push(&Response::SubEvent { sub_id, kind }));
            sub.dead = true;
            dirty.push(sub.conn_id);
            session = sub.session.clone();
        }
        if let Some(chain) = self.by_session.get_mut(&session) {
            chain.ids.retain(|&i| i != sub_id);
        }
    }

    /// Applies one ready digest to one subscription: the matching
    /// maintained diff when present (free), a re-query set-diff
    /// otherwise.
    fn apply_digest(
        &mut self,
        sub_id: u64,
        digest: &Digest,
        engine: &SimEngine,
        max_queue: usize,
        obs: &SubObs,
        dirty: &mut Vec<u64>,
    ) {
        let Some(sub) = self.subs.get_mut(&sub_id) else {
            return;
        };
        if sub.dead || sub.generation >= digest.generation {
            // The subscription's snapshot already covers this
            // generation (it registered mid-chain).
            return;
        }
        let matched = digest.diffs.iter().find(|d| d.canon_key == sub.canon_key);
        let (added, removed) = match matched {
            Some(diff) => {
                let mut added = Vec::new();
                let mut removed = Vec::new();
                for var in &diff.revoked {
                    let u = sub.node_at[var.q as usize];
                    let row = &mut sub.rows[u as usize];
                    if let Ok(pos) = row.binary_search(&var.node) {
                        row.remove(pos);
                        removed.push((u, var.node));
                    }
                }
                for var in &diff.resurrected {
                    let u = sub.node_at[var.q as usize];
                    let row = &mut sub.rows[u as usize];
                    if let Err(pos) = row.binary_search(&var.node) {
                        row.insert(pos, var.node);
                        added.push((u, var.node));
                    }
                }
                sub.generation = digest.generation;
                (added, removed)
            }
            None => {
                // No maintained entry for this pattern (evicted, or a
                // non-Auto algorithm that never cached): re-query and
                // set-diff. A cache hit when maintenance kept the
                // entry; a recompute otherwise.
                let algorithm = sub.algorithm;
                let pattern = sub.pattern.clone();
                match engine.query_with(&algorithm.to_algorithm(), &pattern) {
                    Ok(report) => {
                        let sub = self.subs.get_mut(&sub_id).expect("sub exists");
                        let fresh: Vec<Vec<u32>> = (0..report.relation.query_nodes())
                            .map(|u| {
                                report
                                    .relation
                                    .matches_of(QNodeId(u as u16))
                                    .iter()
                                    .map(|v| v.0)
                                    .collect()
                            })
                            .collect();
                        let (added, removed) = rows_diff(&sub.rows, &fresh);
                        sub.rows = fresh;
                        sub.generation = digest.generation;
                        (added, removed)
                    }
                    Err(_) => {
                        // The engine refused the re-query (pattern no
                        // longer supported, executor failure): the
                        // stream can't stay exact — terminate it.
                        self.kill_sub(sub_id, SubEventKind::Overflow, dirty);
                        return;
                    }
                }
            }
        };
        if added.is_empty() && removed.is_empty() {
            let sub = self.subs.get_mut(&sub_id).expect("sub exists");
            sub.generation = digest.generation;
            return;
        }
        let frame = encode_push(&Response::MatchDiff(MatchDiff {
            sub_id,
            generation: digest.generation,
            added,
            removed,
        }));
        self.enqueue(sub_id, frame, max_queue, obs, dirty);
    }

    /// Chain-stall recovery: re-query one subscription and emit the
    /// set-diff against its rows.
    fn resync_sub(
        &mut self,
        sub_id: u64,
        generation: u64,
        engine: &SimEngine,
        max_queue: usize,
        obs: &SubObs,
        dirty: &mut Vec<u64>,
    ) {
        let Some(sub) = self.subs.get(&sub_id) else {
            return;
        };
        if sub.dead {
            return;
        }
        let algorithm = sub.algorithm;
        let pattern = sub.pattern.clone();
        match engine.query_with(&algorithm.to_algorithm(), &pattern) {
            Ok(report) => {
                let sub = self.subs.get_mut(&sub_id).expect("sub exists");
                let fresh: Vec<Vec<u32>> = (0..report.relation.query_nodes())
                    .map(|u| {
                        report
                            .relation
                            .matches_of(QNodeId(u as u16))
                            .iter()
                            .map(|v| v.0)
                            .collect()
                    })
                    .collect();
                let (added, removed) = rows_diff(&sub.rows, &fresh);
                sub.rows = fresh;
                sub.generation = generation;
                if added.is_empty() && removed.is_empty() {
                    return;
                }
                let frame = encode_push(&Response::MatchDiff(MatchDiff {
                    sub_id,
                    generation,
                    added,
                    removed,
                }));
                self.enqueue(sub_id, frame, max_queue, obs, dirty);
            }
            Err(_) => self.kill_sub(sub_id, SubEventKind::Overflow, dirty),
        }
    }
}

/// Set-difference of two sorted row tables: `(added, removed)` as
/// `(query node, data node)` pairs.
#[allow(clippy::type_complexity)]
fn rows_diff(old: &[Vec<u32>], new: &[Vec<u32>]) -> (Vec<(u16, u32)>, Vec<(u16, u32)>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for u in 0..old.len().max(new.len()) {
        static EMPTY: Vec<u32> = Vec::new();
        let o = old.get(u).unwrap_or(&EMPTY);
        let n = new.get(u).unwrap_or(&EMPTY);
        let (mut i, mut j) = (0, 0);
        while i < o.len() || j < n.len() {
            match (o.get(i), n.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    removed.push((u as u16, a));
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    added.push((u as u16, b));
                    j += 1;
                }
                (Some(&a), None) => {
                    removed.push((u as u16, a));
                    i += 1;
                }
                (None, Some(&b)) => {
                    added.push((u as u16, b));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::frame;
    use crate::wire::split_request_id;
    use dgs_core::GraphDelta;
    use dgs_graph::generate::{patterns, random};
    use dgs_graph::Graph;
    use dgs_partition::{hash_partition, Fragmentation};
    use std::sync::Arc;

    fn engine_for(g: &Graph, k: usize, seed: u64) -> SimEngine {
        let assign = hash_partition(g.node_count(), k, seed);
        let frag = Arc::new(Fragmentation::build(g, &assign, k));
        SimEngine::builder(g, frag).build()
    }

    /// A live `SubObs` backed by a real registry, returned alongside
    /// the registry so the handles stay readable after the move.
    fn live_obs() -> (SubObs, dgs_net::MetricsRegistry) {
        let mreg = dgs_net::MetricsRegistry::new();
        let obs = SubObs {
            active: mreg.gauge("dgsd_subscriptions_active"),
            pushed: mreg.counter("dgsd_sub_diffs_pushed_total"),
            overflows: mreg.counter("dgsd_sub_overflows_total"),
        };
        (obs, mreg)
    }

    fn fresh_rows(engine: &SimEngine, q: &Pattern) -> Vec<Vec<u32>> {
        let report = engine.query(q).expect("query");
        (0..report.relation.query_nodes())
            .map(|u| {
                report
                    .relation
                    .matches_of(QNodeId(u as u16))
                    .iter()
                    .map(|v| v.0)
                    .collect()
            })
            .collect()
    }

    /// Decodes one registry frame (`[len][ty][varint 0][body]`) into
    /// its pushed response.
    fn decode_push(frame_bytes: &[u8]) -> Response {
        let ty = frame_bytes[4];
        let (id, body) = split_request_id(&frame_bytes[5..]).expect("request id");
        assert_eq!(id, 0, "pushes ride request id 0");
        Response::decode(ty, body).expect("decode push")
    }

    fn replay(rows: &mut [Vec<u32>], diff: &MatchDiff) {
        for &(u, v) in &diff.removed {
            let row = &mut rows[u as usize];
            if let Ok(i) = row.binary_search(&v) {
                row.remove(i);
            }
        }
        for &(u, v) in &diff.added {
            let row = &mut rows[u as usize];
            if let Err(i) = row.binary_search(&v) {
                row.insert(i, v);
            }
        }
    }

    #[test]
    fn out_of_order_digests_stash_until_the_chain_connects() {
        let g = random::uniform(40, 140, 3, 31);
        let q = patterns::random_cyclic(3, 5, 3, 731);
        let engine = engine_for(&g, 2, 31);
        let (obs, _mreg) = live_obs();
        let reg = SubscriptionRegistry::with_obs(DEFAULT_SUB_QUEUE_MAX, obs.clone());
        let (sub_id, _, snapshot) = reg
            .subscribe(1, "default", &engine, &q, WireAlgorithm::Auto)
            .expect("subscribe");
        assert_eq!(obs.active.get(), 1, "the gauge tracks the live sub");

        let dels: Vec<_> = g.edges().take(10).collect();
        let r1 = engine
            .apply_delta(&GraphDelta::deletions(dels.iter().copied()))
            .expect("delta 1");
        let r2 = engine
            .apply_delta(&GraphDelta::insertions(dels.iter().copied()))
            .expect("delta 2");

        // The successor arrives first: it must stash, not apply.
        assert!(reg.on_delta("default", &engine, &r2).is_empty());
        assert!(!reg.has_frames(1));

        // Its predecessor connects the chain and both drain in order.
        reg.on_delta("default", &engine, &r1);
        {
            let inner = reg.inner.lock();
            let chain = &inner.by_session["default"];
            assert_eq!(chain.cursor, r2.generation);
            assert!(chain.stash.is_empty());
            assert_eq!(inner.subs[&sub_id].rows, fresh_rows(&engine, &q));
        }

        // A re-delivered digest for a covered generation is dropped.
        assert!(reg.on_delta("default", &engine, &r1).is_empty());

        // Replaying the pushed diffs over the snapshot reproduces the
        // engine's current rows exactly.
        let mut rows = snapshot;
        for f in reg.take_frames(1, 64) {
            match decode_push(&f) {
                Response::MatchDiff(d) => {
                    assert_eq!(d.sub_id, sub_id);
                    replay(&mut rows, &d);
                }
                other => panic!("expected MATCH_DIFF, got {other:?}"),
            }
        }
        assert_eq!(rows, fresh_rows(&engine, &q));
        assert!(!reg.has_frames(1));
        assert_eq!(reg.live_count(), 1);
        assert_eq!(obs.active.get(), 1);
        assert!(
            obs.pushed.get() >= 1,
            "every queued MATCH_DIFF ticks the counter"
        );
        assert_eq!(obs.overflows.get(), 0);
    }

    #[test]
    fn stalled_chain_resynchronizes_by_requery() {
        let g = random::uniform(40, 140, 3, 33);
        let q = patterns::random_cyclic(3, 5, 3, 733);
        let engine = engine_for(&g, 2, 33);
        let reg = SubscriptionRegistry::with_obs(DEFAULT_SUB_QUEUE_MAX, SubObs::default());
        let (_, _, snapshot) = reg
            .subscribe(1, "default", &engine, &q, WireAlgorithm::Auto)
            .expect("subscribe");

        // Apply a run of deltas but withhold the first digest: the
        // chain can never connect. Past STASH_MAX the registry stops
        // waiting and resynchronizes at the newest stashed generation.
        let edges: Vec<_> = g.edges().collect();
        let _withheld = engine
            .apply_delta(&GraphDelta::deletions(edges[..4].iter().copied()))
            .expect("withheld delta");
        let mut newest = 0;
        for c in 0..STASH_MAX + 1 {
            let slice = &edges[4 + c * 3..4 + (c + 1) * 3];
            let r = engine
                .apply_delta(&GraphDelta::deletions(slice.iter().copied()))
                .expect("delta");
            newest = r.generation;
            reg.on_delta("default", &engine, &r);
        }
        {
            let inner = reg.inner.lock();
            let chain = &inner.by_session["default"];
            assert_eq!(chain.cursor, newest, "chain restarted at the newest digest");
            assert!(chain.stash.is_empty());
        }

        // The resync diff covers the withheld batch too.
        let mut rows = snapshot;
        for f in reg.take_frames(1, 64) {
            if let Response::MatchDiff(d) = decode_push(&f) {
                replay(&mut rows, &d);
            }
        }
        assert_eq!(rows, fresh_rows(&engine, &q));
    }

    #[test]
    fn overflow_discards_backlog_and_leaves_one_terminal_event() {
        let g = random::uniform(40, 140, 3, 35);
        let q = patterns::random_cyclic(3, 5, 3, 735);
        let engine = engine_for(&g, 2, 35);
        let (obs, _mreg) = live_obs();
        let reg = SubscriptionRegistry::with_obs(2, obs.clone());
        let (sub_id, _, _) = reg
            .subscribe(9, "default", &engine, &q, WireAlgorithm::Auto)
            .expect("subscribe");
        assert_eq!(reg.live_count(), 1);
        assert_eq!(obs.active.get(), 1);

        // Queue past the bound without the event loop draining.
        {
            let mut inner = reg.inner.lock();
            let mut dirty = Vec::new();
            for i in 0..5u8 {
                let frame = vec![0, 0, 0, 0, frame::MATCH_DIFF, i];
                inner.enqueue(sub_id, frame, 2, &obs, &mut dirty);
            }
            // 2 queued + the overflow transition; dead drops the rest.
            assert_eq!(dirty, vec![9, 9, 9]);
        }
        assert_eq!(reg.live_count(), 0, "an overflowed subscription is dead");
        assert_eq!(obs.pushed.get(), 2, "only the pre-overflow pushes count");
        assert_eq!(obs.overflows.get(), 1, "the overflow transition ticks once");

        // Exactly one frame survives: the terminal Overflow event.
        let frames = reg.take_frames(9, 64);
        assert_eq!(frames.len(), 1);
        match decode_push(&frames[0]) {
            Response::SubEvent { sub_id: id, kind } => {
                assert_eq!(id, sub_id);
                assert_eq!(kind, SubEventKind::Overflow);
            }
            other => panic!("expected SUB_EVENT, got {other:?}"),
        }
        // Draining the terminal event reaps the subscription: later
        // deltas find no subscriber.
        assert!(reg.inner.lock().subs.is_empty());
        let dels: Vec<_> = g.edges().take(5).collect();
        let r = engine
            .apply_delta(&GraphDelta::deletions(dels))
            .expect("delta");
        assert!(reg.on_delta("default", &engine, &r).is_empty());
        assert!(!reg.has_frames(9));
    }

    #[test]
    fn rows_diff_reports_sorted_set_changes() {
        let old = vec![vec![1, 3, 5], vec![7]];
        let new = vec![vec![1, 4, 5], vec![]];
        let (added, removed) = rows_diff(&old, &new);
        assert_eq!(added, vec![(0, 4)]);
        assert_eq!(removed, vec![(0, 3), (1, 7)]);
    }

    #[test]
    fn rows_diff_handles_row_count_mismatch() {
        let (added, removed) = rows_diff(&[], &[vec![2]]);
        assert_eq!(added, vec![(0, 2)]);
        assert!(removed.is_empty());
    }
}
