//! The traffic-generator library behind `dgsload` (and the CI smoke
//! job): open- and closed-loop request streams against a running
//! daemon, with per-client latency recorded into the shared
//! [`LatencyHistogram`] and merged into one fleet-wide report.
//!
//! * **Closed loop** — each of `clients` threads keeps exactly one
//!   request outstanding: send, await, repeat. Throughput is whatever
//!   the server sustains; latency is the server's service time plus
//!   one round trip.
//! * **Open loop** — requests are launched on a fixed schedule
//!   (`rate` per second across the fleet) regardless of completions,
//!   the way real user traffic arrives; when the server falls behind,
//!   queueing delay shows up in the tail percentiles rather than
//!   being hidden by the clients slowing down.

use crate::client::DgsClient;
use crate::error::ServeError;
use crate::proto::{Request, Response, WireAlgorithm};
use crate::transport::ServeAddr;
use dgs_graph::{generate::patterns, Pattern};
use dgs_net::{ConnSweepSnapshot, ConnSweepStep, LatencyHistogram, CONN_SWEEP_SNAPSHOT_VERSION};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How the generator paces requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// One outstanding request per client.
    Closed,
    /// Fleet-wide fixed arrival rate, requests per second.
    Open {
        /// Aggregate target arrival rate (req/s) across all clients.
        rate: f64,
    },
}

/// Traffic-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The daemon to hammer.
    pub addr: ServeAddr,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Every `n`-th request is an `APPLY_DELTA` instead of a query
    /// (`0` = queries only). Deltas alternate inserting and deleting
    /// a pseudo-random edge, so the graph stays near its base shape.
    pub delta_every: usize,
    /// Patterns per `QUERY_BATCH` request (`1` = plain `QUERY`).
    pub batch_size: usize,
    /// Seed for pattern selection and delta endpoints.
    pub seed: u64,
    /// The query pool, cycled per request. When empty, [`run_load`]
    /// generates a mixed pool from the daemon's graph info.
    pub patterns: Vec<Pattern>,
    /// The named session to hammer (`None` = the server default).
    /// Every client issues a `SESSION_ROUTE` right after connecting.
    pub session: Option<String>,
    /// Requests each client keeps in flight on its one connection
    /// (`1` = classic blocking round trips; more requires wire v3
    /// pipelining). Closed-loop throughput scales with the window
    /// because the server overlaps service time with the round trip.
    pub pipeline: usize,
    /// Issue `PING`s instead of queries — the pure protocol
    /// microbenchmark: with near-zero execution cost per request,
    /// throughput measures framing, syscalls, and scheduling, which
    /// is exactly what pipelining amortizes. (`delta_every` still
    /// applies; `batch_size` and `patterns` are ignored.)
    pub pings: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            clients: 8,
            requests_per_client: 50,
            mode: LoadMode::Closed,
            delta_every: 0,
            batch_size: 1,
            seed: 1,
            patterns: Vec::new(),
            session: None,
            pipeline: 1,
            pings: false,
        }
    }
}

/// Fleet-wide outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (transport errors and server-signalled
    /// errors alike). A correct serving setup reports **zero**.
    pub errors: u64,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency across the whole fleet (nanoseconds).
    pub histogram: LatencyHistogram,
    /// Sum of `cache_hits` over all answers.
    pub cache_hits: u64,
    /// Clients that could not even connect (counted in `errors` too).
    pub failed_connects: u64,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// splitmix64: cheap deterministic per-client randomness (no shared
/// RNG on the hot path).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A mixed pattern pool sized for cache overlap: cyclic, DAG and
/// path shapes over `labels` labels, drawn from `pool` seeds.
pub fn mixed_pattern_pool(pool: usize, labels: usize, seed: u64) -> Vec<Pattern> {
    (0..pool)
        .map(|i| {
            let s = seed.wrapping_add((i / 3) as u64);
            match i % 3 {
                0 => patterns::random_cyclic(3, 6, labels, 900 + s),
                1 => patterns::random_dag_with_depth(4, 6, 2, labels, 900 + s),
                _ => patterns::random_cyclic(4, 8, labels, 950 + s),
            }
        })
        .collect()
}

/// Runs the configured load and merges the per-client reports.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    let probe_info = {
        let mut probe = DgsClient::connect(&cfg.addr)?;
        if let Some(session) = &cfg.session {
            probe.session_route(&[session.as_str()])?;
        }
        probe.graph_info()?
    };
    let nodes = probe_info.nodes.max(1);
    let patterns = if cfg.patterns.is_empty() {
        // Derive a mixed pool from the served graph's label universe.
        let labels = (probe_info.label_bound.max(1) as usize).min(64);
        mixed_pattern_pool(12, labels, cfg.seed)
    } else {
        cfg.patterns.clone()
    };

    let start = Instant::now();
    let mut reports: Vec<ClientOutcome> = Vec::with_capacity(cfg.clients);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for c in 0..cfg.clients {
            let patterns = &patterns;
            handles.push(s.spawn(move || run_client(cfg, c, patterns, nodes, start)));
        }
        for h in handles {
            reports.push(h.join().expect("load client thread panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut out = LoadReport {
        completed: 0,
        errors: 0,
        elapsed,
        histogram: LatencyHistogram::new(),
        cache_hits: 0,
        failed_connects: 0,
    };
    for r in reports {
        out.completed += r.completed;
        out.errors += r.errors;
        out.cache_hits += r.cache_hits;
        out.failed_connects += u64::from(r.failed_connect);
        out.histogram.merge(&r.histogram);
    }
    Ok(out)
}

struct ClientOutcome {
    completed: u64,
    errors: u64,
    cache_hits: u64,
    histogram: LatencyHistogram,
    failed_connect: bool,
}

fn run_client(
    cfg: &LoadConfig,
    client_idx: usize,
    patterns: &[Pattern],
    nodes: u64,
    fleet_start: Instant,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        completed: 0,
        errors: 0,
        cache_hits: 0,
        histogram: LatencyHistogram::new(),
        failed_connect: false,
    };
    let mut client = match DgsClient::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            // A client that cannot connect fails its whole quota.
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    };
    if let Some(session) = &cfg.session {
        // A client that cannot reach its session fails its quota the
        // same way (every request would hit NoSuchSession anyway).
        if client.session_route(&[session.as_str()]).is_err() {
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    }
    let mut rng = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client_idx as u64 + 1);
    let batch = cfg.batch_size.max(1);
    let depth = if client.version() >= 3 {
        cfg.pipeline.max(1)
    } else {
        1
    };
    // The pipeline window: submitted requests awaiting their answers,
    // oldest first (awaited in submit order — the server may finish
    // them in any order, the client stash reorders).
    let mut window: VecDeque<(u64, Instant)> = VecDeque::with_capacity(depth);

    for i in 0..cfg.requests_per_client {
        let scheduled = if let LoadMode::Open { rate } = cfg.mode {
            // Fleet-wide schedule: this client owns arrival slots
            // client_idx, client_idx + clients, ... at 1/rate spacing.
            let slot = (i * cfg.clients + client_idx) as f64;
            let due = fleet_start + Duration::from_secs_f64(slot / rate.max(1e-9));
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            Some(due)
        } else {
            None
        };
        let is_delta = cfg.delta_every > 0 && i % cfg.delta_every == cfg.delta_every - 1;
        let req = if is_delta {
            // Alternate inserting and deleting one pseudo-random edge;
            // already-satisfied ops are "ignored", never errors.
            let u = (splitmix64(&mut rng) % nodes) as u32;
            let v = (splitmix64(&mut rng) % nodes) as u32;
            if splitmix64(&mut rng).is_multiple_of(2) {
                Request::ApplyDelta {
                    insert_edges: vec![(u, v)],
                    delete_edges: Vec::new(),
                }
            } else {
                Request::ApplyDelta {
                    insert_edges: Vec::new(),
                    delete_edges: vec![(u, v)],
                }
            }
        } else if cfg.pings {
            Request::Ping
        } else if batch > 1 {
            Request::QueryBatch {
                patterns: (0..batch)
                    .map(|_| patterns[(splitmix64(&mut rng) as usize) % patterns.len()].clone())
                    .collect(),
                algorithm: WireAlgorithm::Auto,
            }
        } else {
            Request::Query {
                pattern: patterns[(splitmix64(&mut rng) as usize) % patterns.len()].clone(),
                algorithm: WireAlgorithm::Auto,
                boolean: false,
            }
        };
        // Open-loop latency is measured from the *scheduled* arrival,
        // not the actual send: when the server falls behind and sends
        // go out late, the wait-behind-schedule is queueing delay and
        // must land in the tail percentiles (avoiding coordinated
        // omission). Closed loop measures from the send.
        let sent = scheduled.unwrap_or_else(Instant::now);
        if client.version() < 3 {
            // Legacy id-less wire: one blocking exchange at a time.
            let result = client.request(&req);
            fold(result, sent, &mut out);
            continue;
        }
        match client.submit(&req) {
            Ok(id) => window.push_back((id, sent)),
            Err(_) => out.errors += 1,
        }
        while window.len() >= depth {
            let (id, sent) = window.pop_front().expect("window nonempty");
            let result = client.await_response(id);
            fold(result, sent, &mut out);
        }
    }
    // Drain the tail of the window.
    while let Some((id, sent)) = window.pop_front() {
        let result = client.await_response(id);
        fold(result, sent, &mut out);
    }
    out
}

/// Folds one response (pipelined or blocking) into the outcome.
fn fold(result: Result<Response, ServeError>, sent: Instant, out: &mut ClientOutcome) {
    match result {
        Err(_) => out.errors += 1,
        Ok(resp) => {
            // A per-item engine error inside an otherwise-delivered
            // batch counts as an errored request.
            let hits = match &resp {
                Response::Answer(a) => Some(a.metrics.cache_hits),
                Response::BatchAnswer { items, total } => {
                    if items.iter().any(|item| item.is_err()) {
                        None
                    } else {
                        Some(total.cache_hits)
                    }
                }
                _ => Some(0),
            };
            match hits {
                None => out.errors += 1,
                Some(hits) => {
                    out.histogram.record_duration(sent.elapsed());
                    out.cache_hits += hits;
                    out.completed += 1;
                }
            }
        }
    }
}

// ---- the connection-count sweep ---------------------------------------

/// Configuration of [`run_conn_sweep`]: the open-loop
/// connections-vs-latency experiment behind `BENCH_connsweep.json`.
#[derive(Clone, Debug)]
pub struct ConnSweepConfig {
    /// The daemon to sweep (its `--max-conns` must admit the largest
    /// step).
    pub addr: ServeAddr,
    /// Connection counts to hold open, one step each (e.g.
    /// `[1, 10, 100, 1000, 10000]`).
    pub steps: Vec<usize>,
    /// Fleet-wide open-loop arrival rate (req/s) at every step — held
    /// **constant** across steps, so a p99 that climbs with the
    /// connection count is pure per-connection overhead in the
    /// serving core, not extra load.
    pub rate: f64,
    /// Requests issued per step (across the whole fleet).
    pub requests_per_step: usize,
    /// How many of a step's connections actively send (the rest sit
    /// idle, which is the point: idle connections must cost buffers,
    /// not threads or latency). Also bounds the sender thread count.
    pub active_senders: usize,
}

impl Default for ConnSweepConfig {
    fn default() -> Self {
        ConnSweepConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            steps: vec![1, 10, 100, 1000, 10_000],
            rate: 2000.0,
            requests_per_step: 4000,
            active_senders: 64,
        }
    }
}

/// Runs the sweep: per step, hold `n` connections open, drive the
/// same open-loop `PING` schedule through a bounded subset of them,
/// and record throughput and p99. `PING` isolates the serving core —
/// readiness loop, framing, dispatch — from query cost, which
/// `BENCH_serving.json` already tracks.
pub fn run_conn_sweep(cfg: &ConnSweepConfig) -> Result<ConnSweepSnapshot, ServeError> {
    let mut steps = Vec::with_capacity(cfg.steps.len());
    for &n in &cfg.steps {
        steps.push(run_sweep_step(cfg, n)?);
    }
    Ok(ConnSweepSnapshot {
        version: CONN_SWEEP_SNAPSHOT_VERSION,
        steps,
    })
}

fn run_sweep_step(cfg: &ConnSweepConfig, n: usize) -> Result<ConnSweepStep, ServeError> {
    let n = n.max(1);
    // Open and hold every connection first; a failed connect is a
    // step error the gate must see, not a silent shrink of the fleet.
    let mut clients = Vec::with_capacity(n);
    let mut connect_errors = 0u64;
    for _ in 0..n {
        match DgsClient::connect(&cfg.addr) {
            Ok(c) => clients.push(c),
            Err(_) => connect_errors += 1,
        }
    }
    let senders = clients.len().min(cfg.active_senders.max(1));
    let quota_total = cfg.requests_per_step.max(1);
    let start = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::with_capacity(senders);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(senders);
        // Senders take the *front* of the fleet; the rest stay
        // connected and silent for the whole step.
        for (j, client) in clients.iter_mut().take(senders).enumerate() {
            let rate = cfg.rate;
            handles.push(s.spawn(move || {
                let mut out = ClientOutcome {
                    completed: 0,
                    errors: 0,
                    cache_hits: 0,
                    histogram: LatencyHistogram::new(),
                    failed_connect: false,
                };
                // Fleet-wide schedule: sender j owns arrival slots
                // j, j + senders, ... at 1/rate spacing.
                let mut i = j;
                while i < quota_total {
                    let due = start + Duration::from_secs_f64(i as f64 / rate.max(1e-9));
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    fold(client.request(&Request::Ping), due, &mut out);
                    i += senders;
                }
                out
            }));
        }
        for h in handles {
            outcomes.push(h.join().expect("sweep sender thread panicked"));
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut completed = 0u64;
    let mut errors = connect_errors;
    let mut histogram = LatencyHistogram::new();
    for out in &outcomes {
        completed += out.completed;
        errors += out.errors;
        histogram.merge(&out.histogram);
    }
    Ok(ConnSweepStep {
        connections: n as u64,
        throughput: completed as f64 / elapsed,
        p99_us: histogram.p99() as f64 / 1000.0,
        completed,
        errors,
    })
}

// ---- live-subscription load (wire v4) ---------------------------------

/// Configuration of [`run_subscribe`]: the time-varying-graph churn
/// experiment behind `BENCH_subscribe.json`. The generator creates
/// its own sessions (`churn-0`, `churn-1`, ...), parks subscribers on
/// every one, then storms **only** `churn-0` with delta batches — so
/// subscribers on the other sessions double as a cross-session
/// isolation check (any push they receive is an error).
#[derive(Clone, Debug)]
pub struct SubscribeConfig {
    /// The daemon to drive.
    pub addr: ServeAddr,
    /// Sessions to create; the writer storms the first.
    pub sessions: usize,
    /// Subscribers per session, each on its own connection.
    pub subscribers: usize,
    /// Nodes per session graph (edges = 3x).
    pub nodes: usize,
    /// Delta batches the writer applies to `churn-0`, back to back.
    pub batches: usize,
    /// Edge ops per batch. The churn pool recycles: deleted edges
    /// become insertable and vice versa, so the graph orbits its base
    /// shape instead of draining.
    pub ops_per_batch: usize,
    /// Seed for graphs, patterns and churn.
    pub seed: u64,
}

impl Default for SubscribeConfig {
    fn default() -> Self {
        SubscribeConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            sessions: 2,
            subscribers: 2,
            nodes: 600,
            batches: 40,
            ops_per_batch: 20,
            seed: 7,
        }
    }
}

/// Fleet-wide outcome of one subscription run.
#[derive(Debug)]
pub struct SubscribeReport {
    /// Diff pushes delivered across every subscriber.
    pub diffs: u64,
    /// Delta batches the writer applied successfully.
    pub batches: u64,
    /// Failures of any kind — connects, subscribes, unexpected
    /// terminal events, cross-session leakage, a diff carrying a
    /// generation the writer never produced, or a reconstructed match
    /// set diverging from the final re-query. A correct run reports
    /// **zero**.
    pub errors: u64,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-diff delivery latency: writer hands the batch to the wire
    /// -> subscriber decodes the push carrying that generation
    /// (nanoseconds).
    pub histogram: LatencyHistogram,
}

/// A batch of raw `(u, v)` edges drawn from a [`ChurnPool`].
type EdgeBatch = Vec<(u32, u32)>;

/// A mutable edge pool driving time-varying churn: every delete makes
/// the edge insertable later and every insert makes it deletable, so
/// an arbitrarily long stream keeps the graph near its base shape.
struct ChurnPool {
    present: EdgeBatch,
    absent: EdgeBatch,
    s: u64,
}

impl ChurnPool {
    fn new(g: &dgs_graph::Graph, seed: u64) -> ChurnPool {
        let present: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        let known: std::collections::HashSet<(u32, u32)> = present.iter().copied().collect();
        let n = (g.node_count() as u64).max(1);
        let mut absent = Vec::new();
        let mut s = seed;
        // A synthetic absent pool half the edge count, so the first
        // batches already mix inserts with deletes.
        while absent.len() < present.len() / 2 + 1 {
            let u = (splitmix64(&mut s) % n) as u32;
            let v = (splitmix64(&mut s) % n) as u32;
            if u != v && !known.contains(&(u, v)) {
                absent.push((u, v));
            }
        }
        ChurnPool { present, absent, s }
    }

    /// The next batch, roughly half deletes / half inserts. Edges
    /// flipped this batch only rejoin the draw pools afterwards, so a
    /// batch never inserts and deletes the same edge.
    fn next_batch(&mut self, nops: usize) -> (EdgeBatch, EdgeBatch) {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..nops {
            if splitmix64(&mut self.s).is_multiple_of(2) && !self.present.is_empty() {
                let at = (splitmix64(&mut self.s) as usize) % self.present.len();
                deletes.push(self.present.swap_remove(at));
            } else if !self.absent.is_empty() {
                let at = (splitmix64(&mut self.s) as usize) % self.absent.len();
                inserts.push(self.absent.swap_remove(at));
            }
        }
        self.absent.extend_from_slice(&deletes);
        self.present.extend_from_slice(&inserts);
        (inserts, deletes)
    }
}

/// What one subscriber thread brings home.
struct SubOutcome {
    /// `(generation, receive instant)` per diff push, joined against
    /// the writer's send log afterwards.
    recv: Vec<(u64, Instant)>,
    errors: u64,
}

const CHURN_LABELS: usize = 4;

/// Builds the per-session churn graph (`slot` picks the seed).
fn churn_graph(cfg: &SubscribeConfig, slot: usize) -> dgs_graph::Graph {
    dgs_graph::generate::random::uniform(
        cfg.nodes.max(8),
        cfg.nodes.max(8) * 3,
        CHURN_LABELS,
        cfg.seed.wrapping_add(slot as u64),
    )
}

/// One subscriber: snapshot + diff stream on `session`, reconstructing
/// the match set locally and checking it against a final re-query.
fn run_subscriber(
    cfg: &SubscribeConfig,
    session: &str,
    pattern: &Pattern,
    ready: &std::sync::atomic::AtomicUsize,
    stop: &std::sync::atomic::AtomicBool,
) -> SubOutcome {
    use std::sync::atomic::Ordering;
    let mut out = SubOutcome {
        recv: Vec::new(),
        errors: 0,
    };
    // Any early exit still has to unblock the writer's barrier.
    let fail = |out: &mut SubOutcome| {
        out.errors += 1;
        ready.fetch_add(1, Ordering::SeqCst);
    };
    let Ok(mut client) = DgsClient::connect(&cfg.addr) else {
        fail(&mut out);
        return out;
    };
    if client.session_route(&[session]).is_err() {
        fail(&mut out);
        return out;
    }
    let Ok((sub_id, _generation, mut rows)) = client.subscribe(pattern, WireAlgorithm::Auto) else {
        fail(&mut out);
        return out;
    };
    ready.fetch_add(1, Ordering::SeqCst);
    if client
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        out.errors += 1;
        return out;
    }
    loop {
        match client.next_event() {
            Ok(crate::client::SubscriptionEvent::Diff(diff)) => {
                let at = Instant::now();
                if diff.sub_id != sub_id {
                    out.errors += 1;
                    continue;
                }
                for &(var, node) in &diff.removed {
                    let col = &mut rows[var as usize];
                    if let Ok(i) = col.binary_search(&node) {
                        col.remove(i);
                    } else {
                        out.errors += 1;
                    }
                }
                for &(var, node) in &diff.added {
                    let col = &mut rows[var as usize];
                    if let Err(i) = col.binary_search(&node) {
                        col.insert(i, node);
                    } else {
                        out.errors += 1;
                    }
                }
                out.recv.push((diff.generation, at));
            }
            // Overflow / drop / drain mid-run: the stream died early.
            Ok(crate::client::SubscriptionEvent::Event { .. }) => {
                out.errors += 1;
                return out;
            }
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A quiet window after the writer finished means the
                // stream has drained (pushes are written eagerly; 50ms
                // dwarfs a loopback round trip).
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => {
                out.errors += 1;
                return out;
            }
        }
    }
    // The reconstructed match set must equal a fresh query — the
    // self-verifying half of the benchmark.
    let _ = client.set_read_timeout(None);
    match client.query(pattern, WireAlgorithm::Auto) {
        Ok(answer) if answer.rows == rows => {}
        _ => out.errors += 1,
    }
    out
}

/// Runs the live-subscription experiment: sessions created, a
/// subscriber fleet parked on open `MATCH_DIFF` streams, one session
/// stormed with churn batches. Diff latency is joined per generation
/// between the writer's send log and each subscriber's receive log.
pub fn run_subscribe(cfg: &SubscribeConfig) -> Result<SubscribeReport, ServeError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let sessions = cfg.sessions.max(1);
    let names: Vec<String> = (0..sessions).map(|i| format!("churn-{i}")).collect();
    let mut admin = DgsClient::connect(&cfg.addr)?;
    if admin.version() < 4 {
        return Err(ServeError::UnsupportedVersion {
            ours: 4,
            theirs: admin.version(),
        });
    }
    for (i, name) in names.iter().enumerate() {
        admin.session_create(
            name,
            &churn_graph(cfg, i),
            &crate::proto::SessionOptions::default(),
        )?;
    }
    let total_subs = sessions * cfg.subscribers.max(1);
    let patterns = mixed_pattern_pool(total_subs.max(1), CHURN_LABELS, cfg.seed);
    let ready = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut churn = ChurnPool::new(&churn_graph(cfg, 0), cfg.seed ^ 0xC0FFEE);

    let start = Instant::now();
    let mut sends: Vec<(u64, Instant)> = Vec::with_capacity(cfg.batches);
    let mut applied = 0u64;
    let mut writer_errors = 0u64;
    let mut outcomes: Vec<(usize, SubOutcome)> = Vec::with_capacity(total_subs);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(total_subs);
        for (si, name) in names.iter().enumerate() {
            for j in 0..cfg.subscribers.max(1) {
                let idx = si * cfg.subscribers.max(1) + j;
                let pattern = &patterns[idx % patterns.len()];
                let (ready, stop) = (&ready, &stop);
                handles.push((
                    si,
                    s.spawn(move || run_subscriber(cfg, name, pattern, ready, stop)),
                ));
            }
        }
        // The writer holds until every stream is open, so every batch
        // is observable by the whole fleet.
        while ready.load(Ordering::SeqCst) < total_subs {
            std::thread::sleep(Duration::from_millis(1));
        }
        match admin.session_route(&[names[0].as_str()]) {
            Ok(_) => {
                for _ in 0..cfg.batches {
                    let (insert_edges, delete_edges) = churn.next_batch(cfg.ops_per_batch.max(1));
                    let sent = Instant::now();
                    match admin.request(&Request::ApplyDelta {
                        insert_edges,
                        delete_edges,
                    }) {
                        Ok(Response::DeltaApplied(summary)) => {
                            sends.push((summary.generation, sent));
                            applied += 1;
                        }
                        _ => writer_errors += 1,
                    }
                }
            }
            Err(_) => writer_errors += cfg.batches as u64,
        }
        stop.store(true, Ordering::SeqCst);
        for (si, h) in handles {
            outcomes.push((si, h.join().expect("subscriber thread panicked")));
        }
    });
    let elapsed = start.elapsed();

    let send_at: std::collections::HashMap<u64, Instant> = sends.iter().copied().collect();
    let mut histogram = LatencyHistogram::new();
    let mut diffs = 0u64;
    let mut errors = writer_errors;
    for (si, out) in &outcomes {
        errors += out.errors;
        for &(generation, at) in &out.recv {
            diffs += 1;
            if *si != 0 {
                // Idle sessions see no deltas; any push is leakage.
                errors += 1;
                continue;
            }
            match send_at.get(&generation) {
                Some(&sent) => histogram.record_duration(at.saturating_duration_since(sent)),
                // A generation the writer never produced.
                None => errors += 1,
            }
        }
    }
    for name in &names {
        let _ = admin.session_drop(name);
    }
    Ok(SubscribeReport {
        diffs,
        batches: applied,
        errors,
        elapsed,
        histogram,
    })
}
