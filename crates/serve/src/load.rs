//! The traffic-generator library behind `dgsload` (and the CI smoke
//! job): open- and closed-loop request streams against a running
//! daemon, with per-client latency recorded into the shared
//! [`LatencyHistogram`] and merged into one fleet-wide report.
//!
//! * **Closed loop** — each of `clients` threads keeps exactly one
//!   request outstanding: send, await, repeat. Throughput is whatever
//!   the server sustains; latency is the server's service time plus
//!   one round trip.
//! * **Open loop** — requests are launched on a fixed schedule
//!   (`rate` per second across the fleet) regardless of completions,
//!   the way real user traffic arrives; when the server falls behind,
//!   queueing delay shows up in the tail percentiles rather than
//!   being hidden by the clients slowing down.

use crate::client::DgsClient;
use crate::error::ServeError;
use crate::proto::{Request, Response, WireAlgorithm};
use crate::transport::ServeAddr;
use dgs_graph::{generate::patterns, Pattern};
use dgs_net::{ConnSweepSnapshot, ConnSweepStep, LatencyHistogram, CONN_SWEEP_SNAPSHOT_VERSION};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How the generator paces requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// One outstanding request per client.
    Closed,
    /// Fleet-wide fixed arrival rate, requests per second.
    Open {
        /// Aggregate target arrival rate (req/s) across all clients.
        rate: f64,
    },
}

/// Traffic-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The daemon to hammer.
    pub addr: ServeAddr,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Every `n`-th request is an `APPLY_DELTA` instead of a query
    /// (`0` = queries only). Deltas alternate inserting and deleting
    /// a pseudo-random edge, so the graph stays near its base shape.
    pub delta_every: usize,
    /// Patterns per `QUERY_BATCH` request (`1` = plain `QUERY`).
    pub batch_size: usize,
    /// Seed for pattern selection and delta endpoints.
    pub seed: u64,
    /// The query pool, cycled per request. When empty, [`run_load`]
    /// generates a mixed pool from the daemon's graph info.
    pub patterns: Vec<Pattern>,
    /// The named session to hammer (`None` = the server default).
    /// Every client issues a `SESSION_ROUTE` right after connecting.
    pub session: Option<String>,
    /// Requests each client keeps in flight on its one connection
    /// (`1` = classic blocking round trips; more requires wire v3
    /// pipelining). Closed-loop throughput scales with the window
    /// because the server overlaps service time with the round trip.
    pub pipeline: usize,
    /// Issue `PING`s instead of queries — the pure protocol
    /// microbenchmark: with near-zero execution cost per request,
    /// throughput measures framing, syscalls, and scheduling, which
    /// is exactly what pipelining amortizes. (`delta_every` still
    /// applies; `batch_size` and `patterns` are ignored.)
    pub pings: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            clients: 8,
            requests_per_client: 50,
            mode: LoadMode::Closed,
            delta_every: 0,
            batch_size: 1,
            seed: 1,
            patterns: Vec::new(),
            session: None,
            pipeline: 1,
            pings: false,
        }
    }
}

/// Fleet-wide outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (transport errors and server-signalled
    /// errors alike). A correct serving setup reports **zero**.
    pub errors: u64,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency across the whole fleet (nanoseconds).
    pub histogram: LatencyHistogram,
    /// Sum of `cache_hits` over all answers.
    pub cache_hits: u64,
    /// Clients that could not even connect (counted in `errors` too).
    pub failed_connects: u64,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// splitmix64: cheap deterministic per-client randomness (no shared
/// RNG on the hot path).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A mixed pattern pool sized for cache overlap: cyclic, DAG and
/// path shapes over `labels` labels, drawn from `pool` seeds.
pub fn mixed_pattern_pool(pool: usize, labels: usize, seed: u64) -> Vec<Pattern> {
    (0..pool)
        .map(|i| {
            let s = seed.wrapping_add((i / 3) as u64);
            match i % 3 {
                0 => patterns::random_cyclic(3, 6, labels, 900 + s),
                1 => patterns::random_dag_with_depth(4, 6, 2, labels, 900 + s),
                _ => patterns::random_cyclic(4, 8, labels, 950 + s),
            }
        })
        .collect()
}

/// Runs the configured load and merges the per-client reports.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    let probe_info = {
        let mut probe = DgsClient::connect(&cfg.addr)?;
        if let Some(session) = &cfg.session {
            probe.session_route(&[session.as_str()])?;
        }
        probe.graph_info()?
    };
    let nodes = probe_info.nodes.max(1);
    let patterns = if cfg.patterns.is_empty() {
        // Derive a mixed pool from the served graph's label universe.
        let labels = (probe_info.label_bound.max(1) as usize).min(64);
        mixed_pattern_pool(12, labels, cfg.seed)
    } else {
        cfg.patterns.clone()
    };

    let start = Instant::now();
    let mut reports: Vec<ClientOutcome> = Vec::with_capacity(cfg.clients);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for c in 0..cfg.clients {
            let patterns = &patterns;
            handles.push(s.spawn(move || run_client(cfg, c, patterns, nodes, start)));
        }
        for h in handles {
            reports.push(h.join().expect("load client thread panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut out = LoadReport {
        completed: 0,
        errors: 0,
        elapsed,
        histogram: LatencyHistogram::new(),
        cache_hits: 0,
        failed_connects: 0,
    };
    for r in reports {
        out.completed += r.completed;
        out.errors += r.errors;
        out.cache_hits += r.cache_hits;
        out.failed_connects += u64::from(r.failed_connect);
        out.histogram.merge(&r.histogram);
    }
    Ok(out)
}

struct ClientOutcome {
    completed: u64,
    errors: u64,
    cache_hits: u64,
    histogram: LatencyHistogram,
    failed_connect: bool,
}

fn run_client(
    cfg: &LoadConfig,
    client_idx: usize,
    patterns: &[Pattern],
    nodes: u64,
    fleet_start: Instant,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        completed: 0,
        errors: 0,
        cache_hits: 0,
        histogram: LatencyHistogram::new(),
        failed_connect: false,
    };
    let mut client = match DgsClient::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            // A client that cannot connect fails its whole quota.
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    };
    if let Some(session) = &cfg.session {
        // A client that cannot reach its session fails its quota the
        // same way (every request would hit NoSuchSession anyway).
        if client.session_route(&[session.as_str()]).is_err() {
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    }
    let mut rng = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client_idx as u64 + 1);
    let batch = cfg.batch_size.max(1);
    let depth = if client.version() >= 3 {
        cfg.pipeline.max(1)
    } else {
        1
    };
    // The pipeline window: submitted requests awaiting their answers,
    // oldest first (awaited in submit order — the server may finish
    // them in any order, the client stash reorders).
    let mut window: VecDeque<(u64, Instant)> = VecDeque::with_capacity(depth);

    for i in 0..cfg.requests_per_client {
        let scheduled = if let LoadMode::Open { rate } = cfg.mode {
            // Fleet-wide schedule: this client owns arrival slots
            // client_idx, client_idx + clients, ... at 1/rate spacing.
            let slot = (i * cfg.clients + client_idx) as f64;
            let due = fleet_start + Duration::from_secs_f64(slot / rate.max(1e-9));
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            Some(due)
        } else {
            None
        };
        let is_delta = cfg.delta_every > 0 && i % cfg.delta_every == cfg.delta_every - 1;
        let req = if is_delta {
            // Alternate inserting and deleting one pseudo-random edge;
            // already-satisfied ops are "ignored", never errors.
            let u = (splitmix64(&mut rng) % nodes) as u32;
            let v = (splitmix64(&mut rng) % nodes) as u32;
            if splitmix64(&mut rng).is_multiple_of(2) {
                Request::ApplyDelta {
                    insert_edges: vec![(u, v)],
                    delete_edges: Vec::new(),
                }
            } else {
                Request::ApplyDelta {
                    insert_edges: Vec::new(),
                    delete_edges: vec![(u, v)],
                }
            }
        } else if cfg.pings {
            Request::Ping
        } else if batch > 1 {
            Request::QueryBatch {
                patterns: (0..batch)
                    .map(|_| patterns[(splitmix64(&mut rng) as usize) % patterns.len()].clone())
                    .collect(),
                algorithm: WireAlgorithm::Auto,
            }
        } else {
            Request::Query {
                pattern: patterns[(splitmix64(&mut rng) as usize) % patterns.len()].clone(),
                algorithm: WireAlgorithm::Auto,
                boolean: false,
            }
        };
        // Open-loop latency is measured from the *scheduled* arrival,
        // not the actual send: when the server falls behind and sends
        // go out late, the wait-behind-schedule is queueing delay and
        // must land in the tail percentiles (avoiding coordinated
        // omission). Closed loop measures from the send.
        let sent = scheduled.unwrap_or_else(Instant::now);
        if client.version() < 3 {
            // Legacy id-less wire: one blocking exchange at a time.
            let result = client.request(&req);
            fold(result, sent, &mut out);
            continue;
        }
        match client.submit(&req) {
            Ok(id) => window.push_back((id, sent)),
            Err(_) => out.errors += 1,
        }
        while window.len() >= depth {
            let (id, sent) = window.pop_front().expect("window nonempty");
            let result = client.await_response(id);
            fold(result, sent, &mut out);
        }
    }
    // Drain the tail of the window.
    while let Some((id, sent)) = window.pop_front() {
        let result = client.await_response(id);
        fold(result, sent, &mut out);
    }
    out
}

/// Folds one response (pipelined or blocking) into the outcome.
fn fold(result: Result<Response, ServeError>, sent: Instant, out: &mut ClientOutcome) {
    match result {
        Err(_) => out.errors += 1,
        Ok(resp) => {
            // A per-item engine error inside an otherwise-delivered
            // batch counts as an errored request.
            let hits = match &resp {
                Response::Answer(a) => Some(a.metrics.cache_hits),
                Response::BatchAnswer { items, total } => {
                    if items.iter().any(|item| item.is_err()) {
                        None
                    } else {
                        Some(total.cache_hits)
                    }
                }
                _ => Some(0),
            };
            match hits {
                None => out.errors += 1,
                Some(hits) => {
                    out.histogram.record_duration(sent.elapsed());
                    out.cache_hits += hits;
                    out.completed += 1;
                }
            }
        }
    }
}

// ---- the connection-count sweep ---------------------------------------

/// Configuration of [`run_conn_sweep`]: the open-loop
/// connections-vs-latency experiment behind `BENCH_connsweep.json`.
#[derive(Clone, Debug)]
pub struct ConnSweepConfig {
    /// The daemon to sweep (its `--max-conns` must admit the largest
    /// step).
    pub addr: ServeAddr,
    /// Connection counts to hold open, one step each (e.g.
    /// `[1, 10, 100, 1000, 10000]`).
    pub steps: Vec<usize>,
    /// Fleet-wide open-loop arrival rate (req/s) at every step — held
    /// **constant** across steps, so a p99 that climbs with the
    /// connection count is pure per-connection overhead in the
    /// serving core, not extra load.
    pub rate: f64,
    /// Requests issued per step (across the whole fleet).
    pub requests_per_step: usize,
    /// How many of a step's connections actively send (the rest sit
    /// idle, which is the point: idle connections must cost buffers,
    /// not threads or latency). Also bounds the sender thread count.
    pub active_senders: usize,
}

impl Default for ConnSweepConfig {
    fn default() -> Self {
        ConnSweepConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            steps: vec![1, 10, 100, 1000, 10_000],
            rate: 2000.0,
            requests_per_step: 4000,
            active_senders: 64,
        }
    }
}

/// Runs the sweep: per step, hold `n` connections open, drive the
/// same open-loop `PING` schedule through a bounded subset of them,
/// and record throughput and p99. `PING` isolates the serving core —
/// readiness loop, framing, dispatch — from query cost, which
/// `BENCH_serving.json` already tracks.
pub fn run_conn_sweep(cfg: &ConnSweepConfig) -> Result<ConnSweepSnapshot, ServeError> {
    let mut steps = Vec::with_capacity(cfg.steps.len());
    for &n in &cfg.steps {
        steps.push(run_sweep_step(cfg, n)?);
    }
    Ok(ConnSweepSnapshot {
        version: CONN_SWEEP_SNAPSHOT_VERSION,
        steps,
    })
}

fn run_sweep_step(cfg: &ConnSweepConfig, n: usize) -> Result<ConnSweepStep, ServeError> {
    let n = n.max(1);
    // Open and hold every connection first; a failed connect is a
    // step error the gate must see, not a silent shrink of the fleet.
    let mut clients = Vec::with_capacity(n);
    let mut connect_errors = 0u64;
    for _ in 0..n {
        match DgsClient::connect(&cfg.addr) {
            Ok(c) => clients.push(c),
            Err(_) => connect_errors += 1,
        }
    }
    let senders = clients.len().min(cfg.active_senders.max(1));
    let quota_total = cfg.requests_per_step.max(1);
    let start = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::with_capacity(senders);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(senders);
        // Senders take the *front* of the fleet; the rest stay
        // connected and silent for the whole step.
        for (j, client) in clients.iter_mut().take(senders).enumerate() {
            let rate = cfg.rate;
            handles.push(s.spawn(move || {
                let mut out = ClientOutcome {
                    completed: 0,
                    errors: 0,
                    cache_hits: 0,
                    histogram: LatencyHistogram::new(),
                    failed_connect: false,
                };
                // Fleet-wide schedule: sender j owns arrival slots
                // j, j + senders, ... at 1/rate spacing.
                let mut i = j;
                while i < quota_total {
                    let due = start + Duration::from_secs_f64(i as f64 / rate.max(1e-9));
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    fold(client.request(&Request::Ping), due, &mut out);
                    i += senders;
                }
                out
            }));
        }
        for h in handles {
            outcomes.push(h.join().expect("sweep sender thread panicked"));
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let mut completed = 0u64;
    let mut errors = connect_errors;
    let mut histogram = LatencyHistogram::new();
    for out in &outcomes {
        completed += out.completed;
        errors += out.errors;
        histogram.merge(&out.histogram);
    }
    Ok(ConnSweepStep {
        connections: n as u64,
        throughput: completed as f64 / elapsed,
        p99_us: histogram.p99() as f64 / 1000.0,
        completed,
        errors,
    })
}
