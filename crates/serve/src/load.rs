//! The traffic-generator library behind `dgsload` (and the CI smoke
//! job): open- and closed-loop request streams against a running
//! daemon, with per-client latency recorded into the shared
//! [`LatencyHistogram`] and merged into one fleet-wide report.
//!
//! * **Closed loop** — each of `clients` threads keeps exactly one
//!   request outstanding: send, await, repeat. Throughput is whatever
//!   the server sustains; latency is the server's service time plus
//!   one round trip.
//! * **Open loop** — requests are launched on a fixed schedule
//!   (`rate` per second across the fleet) regardless of completions,
//!   the way real user traffic arrives; when the server falls behind,
//!   queueing delay shows up in the tail percentiles rather than
//!   being hidden by the clients slowing down.

use crate::client::DgsClient;
use crate::error::ServeError;
use crate::proto::WireAlgorithm;
use crate::transport::ServeAddr;
use dgs_core::GraphDelta;
use dgs_graph::{generate::patterns, NodeId, Pattern};
use dgs_net::LatencyHistogram;
use std::time::{Duration, Instant};

/// How the generator paces requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// One outstanding request per client.
    Closed,
    /// Fleet-wide fixed arrival rate, requests per second.
    Open {
        /// Aggregate target arrival rate (req/s) across all clients.
        rate: f64,
    },
}

/// Traffic-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// The daemon to hammer.
    pub addr: ServeAddr,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Pacing discipline.
    pub mode: LoadMode,
    /// Every `n`-th request is an `APPLY_DELTA` instead of a query
    /// (`0` = queries only). Deltas alternate inserting and deleting
    /// a pseudo-random edge, so the graph stays near its base shape.
    pub delta_every: usize,
    /// Patterns per `QUERY_BATCH` request (`1` = plain `QUERY`).
    pub batch_size: usize,
    /// Seed for pattern selection and delta endpoints.
    pub seed: u64,
    /// The query pool, cycled per request. When empty, [`run_load`]
    /// generates a mixed pool from the daemon's graph info.
    pub patterns: Vec<Pattern>,
    /// The named session to hammer (`None` = the server default).
    /// Every client issues a `SESSION_ROUTE` right after connecting.
    pub session: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: ServeAddr::Tcp("127.0.0.1:7311".into()),
            clients: 8,
            requests_per_client: 50,
            mode: LoadMode::Closed,
            delta_every: 0,
            batch_size: 1,
            seed: 1,
            patterns: Vec::new(),
            session: None,
        }
    }
}

/// Fleet-wide outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (transport errors and server-signalled
    /// errors alike). A correct serving setup reports **zero**.
    pub errors: u64,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Per-request latency across the whole fleet (nanoseconds).
    pub histogram: LatencyHistogram,
    /// Sum of `cache_hits` over all answers.
    pub cache_hits: u64,
    /// Clients that could not even connect (counted in `errors` too).
    pub failed_connects: u64,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// splitmix64: cheap deterministic per-client randomness (no shared
/// RNG on the hot path).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A mixed pattern pool sized for cache overlap: cyclic, DAG and
/// path shapes over `labels` labels, drawn from `pool` seeds.
pub fn mixed_pattern_pool(pool: usize, labels: usize, seed: u64) -> Vec<Pattern> {
    (0..pool)
        .map(|i| {
            let s = seed.wrapping_add((i / 3) as u64);
            match i % 3 {
                0 => patterns::random_cyclic(3, 6, labels, 900 + s),
                1 => patterns::random_dag_with_depth(4, 6, 2, labels, 900 + s),
                _ => patterns::random_cyclic(4, 8, labels, 950 + s),
            }
        })
        .collect()
}

/// Runs the configured load and merges the per-client reports.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    let probe_info = {
        let mut probe = DgsClient::connect(&cfg.addr)?;
        if let Some(session) = &cfg.session {
            probe.session_route(&[session.as_str()])?;
        }
        probe.graph_info()?
    };
    let nodes = probe_info.nodes.max(1);
    let patterns = if cfg.patterns.is_empty() {
        // Derive a mixed pool from the served graph's label universe.
        let labels = (probe_info.label_bound.max(1) as usize).min(64);
        mixed_pattern_pool(12, labels, cfg.seed)
    } else {
        cfg.patterns.clone()
    };

    let start = Instant::now();
    let mut reports: Vec<ClientOutcome> = Vec::with_capacity(cfg.clients);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.clients);
        for c in 0..cfg.clients {
            let patterns = &patterns;
            handles.push(s.spawn(move || run_client(cfg, c, patterns, nodes, start)));
        }
        for h in handles {
            reports.push(h.join().expect("load client thread panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut out = LoadReport {
        completed: 0,
        errors: 0,
        elapsed,
        histogram: LatencyHistogram::new(),
        cache_hits: 0,
        failed_connects: 0,
    };
    for r in reports {
        out.completed += r.completed;
        out.errors += r.errors;
        out.cache_hits += r.cache_hits;
        out.failed_connects += u64::from(r.failed_connect);
        out.histogram.merge(&r.histogram);
    }
    Ok(out)
}

struct ClientOutcome {
    completed: u64,
    errors: u64,
    cache_hits: u64,
    histogram: LatencyHistogram,
    failed_connect: bool,
}

fn run_client(
    cfg: &LoadConfig,
    client_idx: usize,
    patterns: &[Pattern],
    nodes: u64,
    fleet_start: Instant,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        completed: 0,
        errors: 0,
        cache_hits: 0,
        histogram: LatencyHistogram::new(),
        failed_connect: false,
    };
    let mut client = match DgsClient::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            // A client that cannot connect fails its whole quota.
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    };
    if let Some(session) = &cfg.session {
        // A client that cannot reach its session fails its quota the
        // same way (every request would hit NoSuchSession anyway).
        if client.session_route(&[session.as_str()]).is_err() {
            out.failed_connect = true;
            out.errors = cfg.requests_per_client as u64;
            return out;
        }
    }
    let mut rng = cfg
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(client_idx as u64 + 1);
    let batch = cfg.batch_size.max(1);

    for i in 0..cfg.requests_per_client {
        let scheduled = if let LoadMode::Open { rate } = cfg.mode {
            // Fleet-wide schedule: this client owns arrival slots
            // client_idx, client_idx + clients, ... at 1/rate spacing.
            let slot = (i * cfg.clients + client_idx) as f64;
            let due = fleet_start + Duration::from_secs_f64(slot / rate.max(1e-9));
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            Some(due)
        } else {
            None
        };
        let is_delta = cfg.delta_every > 0 && i % cfg.delta_every == cfg.delta_every - 1;
        // Open-loop latency is measured from the *scheduled* arrival,
        // not the actual send: when the server falls behind and sends
        // go out late, the wait-behind-schedule is queueing delay and
        // must land in the tail percentiles (avoiding coordinated
        // omission). Closed loop measures from the send.
        let sent = scheduled.unwrap_or_else(Instant::now);
        let outcome: Result<u64, ServeError> = if is_delta {
            // Alternate inserting and deleting one pseudo-random edge;
            // already-satisfied ops are "ignored", never errors.
            let u = NodeId((splitmix64(&mut rng) % nodes) as u32);
            let v = NodeId((splitmix64(&mut rng) % nodes) as u32);
            let delta = if splitmix64(&mut rng).is_multiple_of(2) {
                GraphDelta::insertions([(u, v)])
            } else {
                GraphDelta::deletions([(u, v)])
            };
            client.apply_delta(&delta).map(|_| 0)
        } else if batch > 1 {
            let qs: Vec<Pattern> = (0..batch)
                .map(|_| patterns[(splitmix64(&mut rng) as usize) % patterns.len()].clone())
                .collect();
            client
                .query_batch(&qs, WireAlgorithm::Auto)
                .and_then(|(items, total)| {
                    // A per-item engine error inside an otherwise-
                    // delivered batch counts as an errored request.
                    for item in items {
                        if let Err((code, message)) = item {
                            return Err(ServeError::Remote { code, message });
                        }
                    }
                    Ok(total.cache_hits)
                })
        } else {
            let q = &patterns[(splitmix64(&mut rng) as usize) % patterns.len()];
            client
                .query(q, WireAlgorithm::Auto)
                .map(|a| a.metrics.cache_hits)
        };
        match outcome {
            Err(_) => out.errors += 1,
            Ok(hits) => {
                out.histogram.record_duration(sent.elapsed());
                out.cache_hits += hits;
                out.completed += 1;
            }
        }
    }
    out
}
