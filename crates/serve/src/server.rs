//! The serving daemon core: a thread-per-connection server wrapping
//! one shared [`SimEngine`] session.
//!
//! * **Sharing** — the engine sits behind an `RwLock`: queries and
//!   stats take the read lock and run concurrently (the engine is
//!   `Send + Sync`); `APPLY_DELTA` and `LOAD_GRAPH` take the write
//!   lock, so a delta is a barrier exactly like it is in-process.
//! * **Admission control** — at most
//!   [`ServerConfig::max_connections`] connections are served at
//!   once. A connection over the limit still gets a well-formed
//!   answer: the server completes the handshake read and replies with
//!   an `ERROR (Busy)` frame before closing, so clients see typed
//!   backpressure ([`crate::ServeError::is_busy`]) instead of a
//!   hang-up, and can retry elsewhere/later.
//! * **Shutdown** — the `SHUTDOWN` frame (or
//!   [`ServerHandle::shutdown`]) stops the acceptor, force-closes the
//!   remaining sockets and joins every connection thread before
//!   [`Server::run`] returns.

use crate::error::{ErrorCode, ServeError};
use crate::proto::{
    frame, Answer, DeltaSummary, GraphInfo, Request, Response, SessionOptions, WireCacheStats,
    WireCompression, WireMetrics, WIRE_MAGIC, WIRE_VERSION,
};
use crate::transport::{Conn, Listener, ServeAddr};
use crate::wire::{read_frame, write_frame};
use dgs_core::{DgsError, GraphDelta, RunReport, SimEngine};
use dgs_graph::{Graph, NodeId, QNodeId};
use dgs_partition::{bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently; further clients get a typed
    /// `Busy` rejection (admission-control backpressure).
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
        }
    }
}

/// State shared between the acceptor and the connection threads.
struct Shared {
    engine: Arc<RwLock<SimEngine>>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    rejected: AtomicU64,
    next_conn: AtomicU64,
    /// Socket clones of the live connections, force-closed on
    /// shutdown so blocked readers unblock.
    conns: Mutex<HashMap<u64, Conn>>,
    addr: ServeAddr,
    max_connections: usize,
}

impl Shared {
    /// Wakes the acceptor (blocked in `accept`) with a throwaway
    /// connection so it observes the shutdown flag.
    fn wake_acceptor(&self) {
        let _ = Conn::connect(&self.addr);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks;
/// [`Server::spawn`] runs it on a background thread and returns a
/// [`ServerHandle`].
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` and wraps `engine` for serving.
    pub fn bind(addr: &ServeAddr, engine: SimEngine, cfg: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine: Arc::new(RwLock::new(engine)),
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                next_conn: AtomicU64::new(0),
                conns: Mutex::new(HashMap::new()),
                addr: resolved,
                max_connections: cfg.max_connections,
            }),
        })
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> ServeAddr {
        self.shared.addr.clone()
    }

    /// The served session, shared with every connection (tests use
    /// this as the in-process oracle handle).
    pub fn engine(&self) -> Arc<RwLock<SimEngine>> {
        Arc::clone(&self.shared.engine)
    }

    /// Serves until a `SHUTDOWN` frame arrives (or
    /// [`ServerHandle::shutdown`] is called on a spawned server).
    /// Returns after every connection thread has exited.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match self.listener.accept() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failures (fd exhaustion under
                    // churn, aborted connections) must not take the
                    // whole daemon down with every in-flight session:
                    // back off briefly and keep accepting.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("dgs-serve: accept failed ({e}); retrying");
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
            let shared = Arc::clone(&shared);
            if active > shared.max_connections {
                // Admission control: answer the handshake with a typed
                // Busy rejection on a short-lived thread (never block
                // the acceptor on a slow client).
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || reject_busy(conn));
            } else {
                std::thread::spawn(move || {
                    let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                    if let Ok(clone) = conn.try_clone() {
                        shared.conns.lock().insert(id, clone);
                    }
                    let _ = serve_connection(conn, &shared);
                    shared.conns.lock().remove(&id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
        // Unblock readers, then wait for the connection threads.
        for (_, conn) in shared.conns.lock().iter() {
            let _ = conn.shutdown();
        }
        while shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let ServeAddr::Unix(path) = &shared.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread,
        }
    }
}

/// A running, spawned server.
pub struct ServerHandle {
    addr: ServeAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// What clients should dial.
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// The shared session (the tests' oracle handle).
    pub fn engine(&self) -> Arc<RwLock<SimEngine>> {
        Arc::clone(&self.shared.engine)
    }

    /// Connections rejected by admission control so far.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Stops the server and joins it.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_acceptor();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Reads the handshake and answers `Busy` (over-capacity path).
fn reject_busy(mut conn: Conn) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    if let Ok(Some((frame::HELLO, _))) = read_frame(&mut conn) {
        let (ty, payload) = Response::Error {
            code: ErrorCode::Busy,
            message: "server at connection capacity, retry later".into(),
        }
        .encode();
        let _ = write_frame(&mut conn, ty, &payload);
    }
}

/// Performs the handshake, then serves request frames until the peer
/// closes or the server shuts down.
fn serve_connection(mut conn: Conn, shared: &Shared) -> Result<(), ServeError> {
    // Handshake: HELLO(magic, client max version) -> WELCOME(magic,
    // negotiated version). A bad magic means the peer is not speaking
    // this protocol at all — answer with a typed error and hang up.
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let Some((ty, payload)) = read_frame(&mut conn)? else {
        return Ok(());
    };
    if ty != frame::HELLO || payload.len() != 5 || payload[..4] != WIRE_MAGIC {
        send(
            &mut conn,
            Response::Error {
                code: ErrorCode::Malformed,
                message: "expected HELLO(magic, version)".into(),
            },
        )?;
        return Ok(());
    }
    let theirs = payload[4];
    if theirs < 1 {
        send(
            &mut conn,
            Response::Error {
                code: ErrorCode::Malformed,
                message: format!(
                    "peer offered protocol v{theirs}; this server speaks v1..=v{WIRE_VERSION}"
                ),
            },
        )?;
        return Ok(());
    }
    let version = theirs.min(WIRE_VERSION);
    let mut welcome = Vec::with_capacity(5);
    welcome.extend_from_slice(&WIRE_MAGIC);
    welcome.push(version);
    write_frame(&mut conn, frame::WELCOME, &welcome)?;
    conn.set_read_timeout(None)?;

    loop {
        let Some((ty, payload)) = read_frame(&mut conn)? else {
            return Ok(());
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            send(
                &mut conn,
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                },
            )?;
            return Ok(());
        }
        let req = match Request::decode(ty, &payload) {
            Ok(req) => req,
            Err(e) => {
                // Frames are length-delimited, so the stream is still
                // in sync: report and keep serving.
                send(
                    &mut conn,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        let wants_shutdown = matches!(req, Request::Shutdown);
        let resp = execute(&req, shared);
        shared.served.fetch_add(1, Ordering::SeqCst);
        send(&mut conn, resp)?;
        if wants_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake_acceptor();
            return Ok(());
        }
    }
}

fn send(conn: &mut Conn, resp: Response) -> Result<(), ServeError> {
    let (ty, payload) = resp.encode();
    write_frame(conn, ty, &payload)?;
    Ok(())
}

fn dgs_error(e: &DgsError) -> Response {
    Response::Error {
        code: ErrorCode::of_dgs(e),
        message: e.to_string(),
    }
}

/// Converts a run report into its wire answer (full relation rows).
fn answer_of_report(report: &RunReport) -> Answer {
    let rows = (0..report.relation.query_nodes())
        .map(|u| {
            report
                .relation
                .matches_of(QNodeId(u as u16))
                .iter()
                .map(|v| v.0)
                .collect()
        })
        .collect();
    Answer {
        rows,
        is_match: report.is_match,
        algorithm: report.algorithm.to_owned(),
        plan: report.plan.to_string(),
        metrics: WireMetrics::of_run(&report.metrics),
    }
}

/// Runs one request against the shared session.
fn execute(req: &Request, shared: &Shared) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::GraphInfo => {
            let engine = shared.engine.read();
            let g = engine.graph();
            let frag = engine.fragmentation();
            Response::GraphInfo(GraphInfo {
                nodes: g.node_count() as u64,
                edges: g.edge_count() as u64,
                sites: frag.num_sites() as u16,
                vf: frag.vf() as u64,
                ef: frag.ef() as u64,
                label_bound: g.label_bound() as u64,
                generation: engine.generation(),
            })
        }
        Request::Query {
            pattern,
            algorithm,
            boolean,
        } => {
            let engine = shared.engine.read();
            let algo = algorithm.to_algorithm();
            if *boolean {
                match engine.query_boolean_with(&algo, pattern) {
                    Ok(report) => Response::Answer(Answer {
                        rows: Vec::new(),
                        is_match: report.is_match,
                        algorithm: report.algorithm.to_owned(),
                        plan: report.plan.to_string(),
                        metrics: WireMetrics::of_run(&report.metrics),
                    }),
                    Err(e) => dgs_error(&e),
                }
            } else {
                match engine.query_with(&algo, pattern) {
                    Ok(report) => Response::Answer(answer_of_report(&report)),
                    Err(e) => dgs_error(&e),
                }
            }
        }
        Request::QueryBatch {
            patterns,
            algorithm,
        } => {
            let engine = shared.engine.read();
            let batch = engine.query_batch_with(&algorithm.to_algorithm(), patterns);
            let items = batch
                .reports
                .iter()
                .map(|r| match r {
                    Ok(report) => Ok(answer_of_report(report)),
                    Err(e) => Err((ErrorCode::of_dgs(e), e.to_string())),
                })
                .collect();
            Response::BatchAnswer {
                items,
                total: WireMetrics::of_run(&batch.total),
            }
        }
        Request::ApplyDelta {
            insert_edges,
            delete_edges,
        } => {
            let delta = GraphDelta {
                insert_edges: insert_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
                delete_edges: delete_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
            };
            let mut engine = shared.engine.write();
            match engine.apply_delta(&delta) {
                Ok(report) => Response::DeltaApplied(DeltaSummary {
                    inserted: report.inserted as u64,
                    deleted: report.deleted as u64,
                    ignored: report.ignored as u64,
                    crossing_inserted: report.crossing_inserted as u64,
                    crossing_deleted: report.crossing_deleted as u64,
                    virtuals_created: report.virtuals_created as u64,
                    virtuals_retired: report.virtuals_retired as u64,
                    maintained_entries: report.maintained_entries as u64,
                    invalidated_entries: report.invalidated_entries as u64,
                    revoked_pairs: report.revoked_pairs,
                    generation: report.generation,
                }),
                Err(e) => dgs_error(&e),
            }
        }
        Request::CacheStats => {
            let engine = shared.engine.read();
            Response::CacheStats(engine.cache_stats().map(|s| WireCacheStats {
                entries: s.entries as u64,
                capacity: s.capacity as u64,
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                generation: s.generation,
            }))
        }
        Request::CompressionInfo => {
            let engine = shared.engine.read();
            let active = engine.compression_active();
            Response::CompressionInfo(engine.compression_note().map(|n| WireCompression {
                classes: n.classes as u64,
                ratio: n.ratio,
                method: n.method.to_owned(),
                active,
            }))
        }
        Request::LoadGraph { graph, options } => match build_session(graph, options) {
            Ok(engine) => {
                let (nodes, edges) = (graph.node_count() as u64, graph.edge_count() as u64);
                *shared.engine.write() = engine;
                Response::Loaded {
                    nodes,
                    edges,
                    sites: options.sites,
                }
            }
            Err(message) => Response::Error {
                code: ErrorCode::Malformed,
                message,
            },
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Builds a fresh session per `LOAD_GRAPH` options (outside the
/// engine lock — only the swap blocks traffic).
pub(crate) fn build_session(graph: &Graph, options: &SessionOptions) -> Result<SimEngine, String> {
    use crate::proto::WirePartitioner;
    let k = usize::from(options.sites);
    if k == 0 {
        return Err("sites must be >= 1".into());
    }
    if graph.node_count() == 0 {
        return Err("graph has no nodes".into());
    }
    let assignment = match options.partitioner {
        WirePartitioner::Hash => hash_partition(graph.node_count(), k, options.seed),
        WirePartitioner::Bfs => bfs_partition(graph, k, options.seed),
        WirePartitioner::Ldg => ldg_partition(graph, k, 0.1, options.seed),
        WirePartitioner::Tree => tree_partition(graph, k),
    };
    let frag = Arc::new(Fragmentation::build(graph, &assignment, k));
    let mut builder =
        SimEngine::builder(graph, frag).cache_capacity(options.cache_capacity as usize);
    if let Some(method) = options.compression {
        builder = builder
            .compress(method)
            .compression_threshold(options.compression_threshold);
    }
    Ok(builder.build())
}
