//! The serving daemon core: a thread-per-connection server hosting
//! named [`SimEngine`] sessions behind a [`SessionManager`].
//!
//! * **Sharing** — there is no lock around the engines on the serve
//!   path. Each engine is snapshot-isolated: queries clone the
//!   published generation snapshot and run lock-free; `APPLY_DELTA`
//!   builds the next generation off the read path and publishes it
//!   with an atomic swap. A delta is **not** a barrier — queries
//!   admitted before, during and after it all complete against
//!   exactly one generation.
//! * **Sessions** — the daemon hosts any number of named sessions
//!   (`SESSION_CREATE` / `SESSION_DROP`); every connection carries a
//!   route (default: the `"default"` session) that `SESSION_ROUTE`
//!   repoints, possibly at several sessions at once, in which case
//!   queries fan out and the per-shard relations are merged (see
//!   [`crate::session`]).
//! * **Admission control** — at most
//!   [`ServerConfig::max_connections`] connections are served at
//!   once. A connection over the limit still gets a well-formed
//!   answer: the server completes the handshake read and replies with
//!   an `ERROR (Busy)` frame before closing, so clients see typed
//!   backpressure ([`crate::ServeError::is_busy`]) instead of a
//!   hang-up, and can retry elsewhere/later.
//! * **Shutdown** — the `SHUTDOWN` frame (or
//!   [`ServerHandle::shutdown`]) stops the acceptor, then **drains**:
//!   in-flight requests finish and their responses are written in
//!   full; idle connections get a typed `ShuttingDown` error frame.
//!   Only connections still busy after [`ServerConfig::drain_grace`]
//!   are force-closed. A client mid-request therefore sees its answer
//!   or a typed error — never a short read.

use crate::error::{ErrorCode, ServeError};
use crate::proto::{
    frame, Answer, DeltaSummary, GraphInfo, Request, Response, SessionOptions, WireCacheStats,
    WireCompression, WireMetrics, WIRE_MAGIC, WIRE_VERSION,
};
use crate::session::{merge_answers, merge_metrics, session_info, Route, SessionManager};
use crate::transport::{Conn, Listener, ServeAddr};
use crate::wire::{read_frame, write_frame};
use dgs_core::{Algorithm, DgsError, GraphDelta, RunReport, SimEngine};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};
use dgs_partition::{bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently; further clients get a typed
    /// `Busy` rejection (admission-control backpressure).
    pub max_connections: usize,
    /// How long shutdown waits for in-flight requests to drain before
    /// force-closing the remaining sockets.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// State shared between the acceptor and the connection threads.
struct Shared {
    sessions: Arc<SessionManager>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    rejected: AtomicU64,
    next_conn: AtomicU64,
    /// Socket clones of the live connections; shutdown uses them to
    /// impose read timeouts (drain) and, past the grace period, to
    /// force-close blocked readers.
    conns: Mutex<HashMap<u64, Conn>>,
    addr: ServeAddr,
    max_connections: usize,
    drain_grace: Duration,
}

impl Shared {
    /// Wakes the acceptor (blocked in `accept`) with a throwaway
    /// connection so it observes the shutdown flag.
    fn wake_acceptor(&self) {
        let _ = Conn::connect(&self.addr);
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks;
/// [`Server::spawn`] runs it on a background thread and returns a
/// [`ServerHandle`].
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` and hosts `engine` as the `"default"` session.
    pub fn bind(addr: &ServeAddr, engine: SimEngine, cfg: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                sessions: Arc::new(SessionManager::new(engine)),
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                next_conn: AtomicU64::new(0),
                conns: Mutex::new(HashMap::new()),
                addr: resolved,
                max_connections: cfg.max_connections,
                drain_grace: cfg.drain_grace,
            }),
        })
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> ServeAddr {
        self.shared.addr.clone()
    }

    /// The `"default"` session's engine, shared with every connection
    /// (tests use this as the in-process oracle handle).
    ///
    /// # Panics
    /// If the default session was dropped or replaced via the wire.
    pub fn engine(&self) -> Arc<SimEngine> {
        self.shared
            .sessions
            .get(crate::session::DEFAULT_SESSION)
            .expect("default session is hosted")
    }

    /// The session registry (add sessions before `run`/`spawn`, or
    /// concurrently — the map is its own synchronization).
    pub fn sessions(&self) -> Arc<SessionManager> {
        Arc::clone(&self.shared.sessions)
    }

    /// Serves until a `SHUTDOWN` frame arrives (or
    /// [`ServerHandle::shutdown`] is called on a spawned server).
    /// Returns after every connection thread has exited.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match self.listener.accept() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failures (fd exhaustion under
                    // churn, aborted connections) must not take the
                    // whole daemon down with every in-flight session:
                    // back off briefly and keep accepting.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("dgs-serve: accept failed ({e}); retrying");
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
            let shared = Arc::clone(&shared);
            if active > shared.max_connections {
                // Admission control: answer the handshake with a typed
                // Busy rejection on a short-lived thread (never block
                // the acceptor on a slow client).
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || reject_busy(conn));
            } else {
                std::thread::spawn(move || {
                    let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                    if let Ok(clone) = conn.try_clone() {
                        shared.conns.lock().insert(id, clone);
                    }
                    let _ = serve_connection(conn, &shared);
                    shared.conns.lock().remove(&id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        }
        // Drain: in-flight requests finish and their responses go out
        // in full. Blocked readers get a short read timeout (set on
        // the socket clone, which shares the underlying socket) so
        // they observe the shutdown flag and answer a typed
        // ShuttingDown error instead of being cut off mid-frame. The
        // timeout is re-imposed each pass because connections may
        // still be inside a long request when an earlier pass ran.
        let deadline = Instant::now() + shared.drain_grace;
        while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            for (_, conn) in shared.conns.lock().iter() {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Stragglers past the grace period get force-closed.
        for (_, conn) in shared.conns.lock().iter() {
            let _ = conn.shutdown();
        }
        while shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let ServeAddr::Unix(path) = &shared.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread,
        }
    }
}

/// A running, spawned server.
pub struct ServerHandle {
    addr: ServeAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// What clients should dial.
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// The `"default"` session's engine (the tests' oracle handle).
    ///
    /// # Panics
    /// If the default session was dropped or replaced via the wire.
    pub fn engine(&self) -> Arc<SimEngine> {
        self.shared
            .sessions
            .get(crate::session::DEFAULT_SESSION)
            .expect("default session is hosted")
    }

    /// The session registry.
    pub fn sessions(&self) -> Arc<SessionManager> {
        Arc::clone(&self.shared.sessions)
    }

    /// Connections rejected by admission control so far.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Stops the server (drain, then force-close) and joins it.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_acceptor();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Reads the handshake and answers `Busy` (over-capacity path).
fn reject_busy(mut conn: Conn) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    if let Ok(Some((frame::HELLO, _))) = read_frame(&mut conn) {
        let (ty, payload) = Response::Error {
            code: ErrorCode::Busy,
            message: "server at connection capacity, retry later".into(),
        }
        .encode();
        let _ = write_frame(&mut conn, ty, &payload);
    }
}

/// True for the read-timeout kinds a drain-imposed `SO_RCVTIMEO`
/// produces (platform-dependently one or the other).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Performs the handshake, then serves request frames until the peer
/// closes or the server shuts down.
fn serve_connection(mut conn: Conn, shared: &Shared) -> Result<(), ServeError> {
    // Handshake: HELLO(magic, client max version) -> WELCOME(magic,
    // negotiated version). A bad magic means the peer is not speaking
    // this protocol at all — answer with a typed error and hang up.
    conn.set_read_timeout(Some(Duration::from_secs(10)))?;
    let Some((ty, payload)) = read_frame(&mut conn)? else {
        return Ok(());
    };
    if ty != frame::HELLO || payload.len() != 5 || payload[..4] != WIRE_MAGIC {
        send(
            &mut conn,
            Response::Error {
                code: ErrorCode::Malformed,
                message: "expected HELLO(magic, version)".into(),
            },
        )?;
        return Ok(());
    }
    let theirs = payload[4];
    if theirs < 1 {
        send(
            &mut conn,
            Response::Error {
                code: ErrorCode::Malformed,
                message: format!(
                    "peer offered protocol v{theirs}; this server speaks v1..=v{WIRE_VERSION}"
                ),
            },
        )?;
        return Ok(());
    }
    let version = theirs.min(WIRE_VERSION);
    let mut welcome = Vec::with_capacity(5);
    welcome.extend_from_slice(&WIRE_MAGIC);
    welcome.push(version);
    write_frame(&mut conn, frame::WELCOME, &welcome)?;
    conn.set_read_timeout(None)?;

    // Where this connection's requests go; SESSION_ROUTE repoints it.
    let mut route = Route::default();

    loop {
        let (ty, payload) = match read_frame(&mut conn) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            // A read timeout only ever fires while shutdown is
            // draining (the drain loop imposes it); tell the peer and
            // hang up cleanly — the response stream is framed and only
            // this thread writes it, so the error arrives intact.
            Err(ServeError::Io(e)) if is_timeout(&e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    send(
                        &mut conn,
                        Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server is shutting down".into(),
                        },
                    )?;
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            send(
                &mut conn,
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                },
            )?;
            return Ok(());
        }
        let req = match Request::decode(ty, &payload) {
            Ok(req) => req,
            Err(e) => {
                // Frames are length-delimited, so the stream is still
                // in sync: report and keep serving.
                send(
                    &mut conn,
                    Response::Error {
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        let wants_shutdown = matches!(req, Request::Shutdown);
        let resp = execute(&req, shared, &mut route);
        shared.served.fetch_add(1, Ordering::SeqCst);
        send(&mut conn, resp)?;
        if wants_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.wake_acceptor();
            return Ok(());
        }
    }
}

fn send(conn: &mut Conn, resp: Response) -> Result<(), ServeError> {
    let (ty, payload) = resp.encode();
    write_frame(conn, ty, &payload)?;
    Ok(())
}

fn dgs_error(e: &DgsError) -> Response {
    Response::Error {
        code: ErrorCode::of_dgs(e),
        message: e.to_string(),
    }
}

fn no_such_session(name: &str) -> Response {
    Response::Error {
        code: ErrorCode::NoSuchSession,
        message: format!("no session named {name:?} is hosted"),
    }
}

fn single_target_only(what: &str, n: usize) -> Response {
    Response::Error {
        code: ErrorCode::Unsupported,
        message: format!(
            "{what} needs a single-session route, but this connection is routed to {n} sessions; \
             SESSION_ROUTE to one session first"
        ),
    }
}

/// Converts a run report into its wire answer (full relation rows).
fn answer_of_report(report: &RunReport) -> Answer {
    let rows = (0..report.relation.query_nodes())
        .map(|u| {
            report
                .relation
                .matches_of(QNodeId(u as u16))
                .iter()
                .map(|v| v.0)
                .collect()
        })
        .collect();
    Answer {
        rows,
        is_match: report.is_match,
        algorithm: report.algorithm.to_owned(),
        plan: report.plan.to_string(),
        metrics: WireMetrics::of_run(&report.metrics),
    }
}

/// Resolves the connection's route, mapping a missing session to its
/// typed error (boxed: the happy path should not pay for the error
/// variant's size).
#[allow(clippy::type_complexity)]
fn resolve(shared: &Shared, route: &Route) -> Result<Vec<(String, Arc<SimEngine>)>, Box<Response>> {
    match shared.sessions.resolve(route) {
        Ok(engines) if engines.is_empty() => Err(Box::new(Response::Error {
            code: ErrorCode::NoSuchSession,
            message: "no sessions are hosted (all were dropped)".into(),
        })),
        Ok(engines) => Ok(engines),
        Err(name) => Err(Box::new(no_such_session(&name))),
    }
}

/// Runs one data-selecting query on every routed shard concurrently
/// and merges the relations (see [`crate::session::merge_answers`]).
fn fan_out_query(
    engines: &[(String, Arc<SimEngine>)],
    algo: &Algorithm,
    pattern: &Pattern,
) -> Result<Answer, DgsError> {
    let parts: Result<Vec<Answer>, DgsError> = std::thread::scope(|s| {
        let handles: Vec<_> = engines
            .iter()
            .map(|(_, engine)| {
                s.spawn(move || {
                    engine
                        .query_with(algo, pattern)
                        .map(|r| answer_of_report(&r))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard query thread panicked"))
            .collect()
    });
    parts.map(|parts| merge_answers(&parts))
}

/// Runs a batch on every routed shard concurrently and merges
/// item-wise; a shard error on an item wins over other shards'
/// answers for it (partial unions would be silently wrong).
fn fan_out_batch(
    engines: &[(String, Arc<SimEngine>)],
    algo: &Algorithm,
    patterns: &[Pattern],
) -> Response {
    let shard_batches: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = engines
            .iter()
            .map(|(_, engine)| s.spawn(move || engine.query_batch_with(algo, patterns)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard batch thread panicked"))
            .collect()
    });
    let mut total = WireMetrics::default();
    for batch in &shard_batches {
        merge_metrics(&mut total, &WireMetrics::of_run(&batch.total));
    }
    let items = (0..patterns.len())
        .map(|i| {
            let mut parts = Vec::with_capacity(shard_batches.len());
            for batch in &shard_batches {
                match &batch.reports[i] {
                    Ok(report) => parts.push(answer_of_report(report)),
                    Err(e) => return Err((ErrorCode::of_dgs(e), e.to_string())),
                }
            }
            Ok(merge_answers(&parts))
        })
        .collect();
    Response::BatchAnswer { items, total }
}

/// Runs one request against the routed session(s).
fn execute(req: &Request, shared: &Shared, route: &mut Route) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::GraphInfo => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("GRAPH_INFO", engines.len());
            }
            let engine = &engines[0].1;
            let g = engine.graph();
            let frag = engine.fragmentation();
            Response::GraphInfo(GraphInfo {
                nodes: g.node_count() as u64,
                edges: g.edge_count() as u64,
                sites: frag.num_sites() as u16,
                vf: frag.vf() as u64,
                ef: frag.ef() as u64,
                label_bound: g.label_bound() as u64,
                generation: engine.generation(),
            })
        }
        Request::Query {
            pattern,
            algorithm,
            boolean,
        } => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            let algo = algorithm.to_algorithm();
            if engines.len() > 1 {
                // Fan-out runs data-selecting even for Boolean
                // queries: is_match must come from the *merged*
                // relation's totality — OR-ing per-shard flags would
                // claim matches no union supports per query node.
                return match fan_out_query(&engines, &algo, pattern) {
                    Ok(mut answer) => {
                        if *boolean {
                            answer.rows = Vec::new();
                        }
                        Response::Answer(answer)
                    }
                    Err(e) => dgs_error(&e),
                };
            }
            let engine = &engines[0].1;
            if *boolean {
                match engine.query_boolean_with(&algo, pattern) {
                    Ok(report) => Response::Answer(Answer {
                        rows: Vec::new(),
                        is_match: report.is_match,
                        algorithm: report.algorithm.to_owned(),
                        plan: report.plan.to_string(),
                        metrics: WireMetrics::of_run(&report.metrics),
                    }),
                    Err(e) => dgs_error(&e),
                }
            } else {
                match engine.query_with(&algo, pattern) {
                    Ok(report) => Response::Answer(answer_of_report(&report)),
                    Err(e) => dgs_error(&e),
                }
            }
        }
        Request::QueryBatch {
            patterns,
            algorithm,
        } => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            let algo = algorithm.to_algorithm();
            if engines.len() > 1 {
                return fan_out_batch(&engines, &algo, patterns);
            }
            let batch = engines[0].1.query_batch_with(&algo, patterns);
            let items = batch
                .reports
                .iter()
                .map(|r| match r {
                    Ok(report) => Ok(answer_of_report(report)),
                    Err(e) => Err((ErrorCode::of_dgs(e), e.to_string())),
                })
                .collect();
            Response::BatchAnswer {
                items,
                total: WireMetrics::of_run(&batch.total),
            }
        }
        Request::ApplyDelta {
            insert_edges,
            delete_edges,
        } => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("APPLY_DELTA", engines.len());
            }
            let delta = GraphDelta {
                insert_edges: insert_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
                delete_edges: delete_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
            };
            // No lock: the engine serializes writers internally and
            // queries keep running against the published snapshot
            // while the next generation is built.
            match engines[0].1.apply_delta(&delta) {
                Ok(report) => Response::DeltaApplied(DeltaSummary {
                    inserted: report.inserted as u64,
                    deleted: report.deleted as u64,
                    ignored: report.ignored as u64,
                    crossing_inserted: report.crossing_inserted as u64,
                    crossing_deleted: report.crossing_deleted as u64,
                    virtuals_created: report.virtuals_created as u64,
                    virtuals_retired: report.virtuals_retired as u64,
                    maintained_entries: report.maintained_entries as u64,
                    invalidated_entries: report.invalidated_entries as u64,
                    revoked_pairs: report.revoked_pairs,
                    generation: report.generation,
                }),
                Err(e) => dgs_error(&e),
            }
        }
        Request::CacheStats => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("CACHE_STATS", engines.len());
            }
            Response::CacheStats(engines[0].1.cache_stats().map(|s| WireCacheStats {
                entries: s.entries as u64,
                capacity: s.capacity as u64,
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                generation: s.generation,
            }))
        }
        Request::CompressionInfo => {
            let engines = match resolve(shared, route) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("COMPRESSION_INFO", engines.len());
            }
            let engine = &engines[0].1;
            let active = engine.compression_active();
            Response::CompressionInfo(engine.compression_note().map(|n| WireCompression {
                classes: n.classes as u64,
                ratio: n.ratio,
                method: n.method.to_owned(),
                active,
            }))
        }
        Request::LoadGraph { graph, options } => {
            let name = match route {
                Route::Single(name) => name.clone(),
                Route::Many(_) | Route::All => {
                    return single_target_only("LOAD_GRAPH", shared.sessions.len())
                }
            };
            // Build off-path; only the map swap is synchronized.
            match build_session(graph, options) {
                Ok(engine) => {
                    let (nodes, edges) = (graph.node_count() as u64, graph.edge_count() as u64);
                    shared.sessions.insert(&name, engine);
                    Response::Loaded {
                        nodes,
                        edges,
                        sites: options.sites,
                    }
                }
                Err(message) => Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                },
            }
        }
        Request::SessionCreate {
            name,
            graph,
            options,
        } => match build_session(graph, options) {
            Ok(engine) => {
                let engine = shared.sessions.insert(name, engine);
                Response::SessionCreated(session_info(name, &engine))
            }
            Err(message) => Response::Error {
                code: ErrorCode::Malformed,
                message,
            },
        },
        Request::SessionList => Response::Sessions(shared.sessions.infos()),
        Request::SessionDrop { name } => {
            if shared.sessions.remove(name) {
                Response::SessionDropped
            } else {
                no_such_session(name)
            }
        }
        Request::SessionRoute { sessions } => {
            let new_route = Route::of_names(sessions.clone());
            // Named routes are validated now (typed error instead of a
            // silently broken connection); Route::All re-resolves on
            // every request by design.
            match shared.sessions.resolve(&new_route) {
                Ok(engines) => {
                    let n = engines.len() as u64;
                    *route = new_route;
                    Response::SessionRouted { sessions: n }
                }
                Err(name) => no_such_session(&name),
            }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Builds a fresh session per `LOAD_GRAPH` / `SESSION_CREATE` options
/// (off any lock — only the registry swap is synchronized).
pub(crate) fn build_session(graph: &Graph, options: &SessionOptions) -> Result<SimEngine, String> {
    use crate::proto::WirePartitioner;
    let k = usize::from(options.sites);
    if k == 0 {
        return Err("sites must be >= 1".into());
    }
    if graph.node_count() == 0 {
        return Err("graph has no nodes".into());
    }
    let assignment = match options.partitioner {
        WirePartitioner::Hash => hash_partition(graph.node_count(), k, options.seed),
        WirePartitioner::Bfs => bfs_partition(graph, k, options.seed),
        WirePartitioner::Ldg => ldg_partition(graph, k, 0.1, options.seed),
        WirePartitioner::Tree => tree_partition(graph, k),
    };
    let frag = Arc::new(Fragmentation::build(graph, &assignment, k));
    let mut builder =
        SimEngine::builder(graph, frag).cache_capacity(options.cache_capacity as usize);
    if let Some(method) = options.compression {
        builder = builder
            .compress(method)
            .compression_threshold(options.compression_threshold);
    }
    Ok(builder.build())
}
