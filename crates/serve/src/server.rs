//! The serving daemon core: a nonblocking readiness-loop server
//! hosting named [`SimEngine`] sessions behind a [`SessionManager`].
//!
//! * **Architecture** — one **event thread** owns every socket: it
//!   accepts, reads request frames into per-connection incremental
//!   buffers ([`crate::wire::FrameBuffer`]), and flushes encoded
//!   responses from per-connection write queues, multiplexed with the
//!   `poll(2)` shim in [`crate::poll`]. A small fixed **worker pool**
//!   decodes and executes requests and hands encoded response frames
//!   back through a completion queue (waking the poller via a
//!   self-pipe). A connection therefore costs two buffers, not an OS
//!   thread — 10k idle-or-bursty clients are just 10k pollfds.
//! * **Pipelining** — at wire v3 every request carries a varint id
//!   the response echoes, so one connection can keep many requests in
//!   flight and take answers out of order as workers finish them.
//!   `SESSION_ROUTE` and `SHUTDOWN` are ordering **barriers**: they
//!   wait for the connection's in-flight requests and block later
//!   ones until done, so a pipelined route change still applies to
//!   exactly the requests after it. v1/v2 connections (no ids on the
//!   wire) are serialized per connection — responses match requests
//!   by order, as before.
//! * **Sharing** — there is no lock around the engines on the serve
//!   path. Each engine is snapshot-isolated: queries clone the
//!   published generation snapshot and run lock-free; `APPLY_DELTA`
//!   builds the next generation off the read path and publishes it
//!   with an atomic swap.
//! * **Admission control** — at most
//!   [`ServerConfig::max_connections`] connections are served at
//!   once. A connection over the limit still gets a well-formed
//!   answer: the server completes the handshake read and replies with
//!   an `ERROR (Busy)` frame before closing — and that rejection is
//!   tracked like any other connection, so shutdown drains the `Busy`
//!   frame out in full instead of racing process exit.
//! * **Shutdown** — the `SHUTDOWN` frame (or
//!   [`ServerHandle::shutdown`]) stops accepting, then **drains**:
//!   in-flight requests finish and their responses are written in
//!   full; requests not yet started and idle connections get a typed
//!   `ShuttingDown` error frame. Only connections still unflushed
//!   after [`ServerConfig::drain_grace`] are force-closed. A client
//!   mid-request therefore sees its answer or a typed error — never a
//!   short read.

use crate::error::{ErrorCode, ServeError};
use crate::poll::{PollSet, WakeHandle, WakePipe};
use crate::proto::{
    frame, Answer, DeltaSummary, GraphInfo, Request, Response, SessionOptions, WireCacheStats,
    WireCompression, WireMetrics, WireTrace, WIRE_MAGIC, WIRE_VERSION,
};
use crate::session::{merge_answers, merge_metrics, session_info, Route, SessionManager};
use crate::subscribe::{SubObs, SubscriptionRegistry, DEFAULT_SUB_QUEUE_MAX};
use crate::transport::{Conn, Listener, ServeAddr};
use crate::wire::{encode_frame_into, split_request_id, FrameBuffer};
use dgs_core::{Algorithm, DgsError, GraphDelta, RunReport, SimEngine};
use dgs_graph::{Graph, NodeId, Pattern, QNodeId};
use dgs_net::{Counter, Gauge, Histo, LogLevel, Logger, MetricsRegistry, MetricsSnapshot};
use dgs_partition::{bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently; further clients get a typed
    /// `Busy` rejection (admission-control backpressure).
    pub max_connections: usize,
    /// How long shutdown waits for in-flight requests and unflushed
    /// responses to drain before force-closing the remaining sockets.
    pub drain_grace: Duration,
    /// Threads in the request-execution worker pool (`0` = derive
    /// from the host's parallelism, clamped to 2..=8).
    pub worker_threads: usize,
    /// Requests one v3 connection may have in flight or queued before
    /// the event loop stops reading from it (TCP backpressure).
    /// v1/v2 connections are always serialized at 1.
    pub max_pipeline: usize,
    /// Push frames one subscription may have queued before it
    /// overflows: the backlog is discarded and replaced by a single
    /// terminal `SUB_EVENT(overflow)`, so a subscriber that stops
    /// reading never grows server memory unboundedly.
    pub max_sub_queue: usize,
    /// Host a live metrics registry (`METRICS` frame, text endpoint,
    /// per-request latency histograms). `false` turns every handle
    /// into a no-op and snapshots come back empty.
    pub metrics_enabled: bool,
    /// When set, a second plain-TCP listener serves the Prometheus
    /// text exposition (`GET` anything → `text/plain; version=0.0.4`)
    /// from the same event loop.
    pub metrics_addr: Option<ServeAddr>,
    /// Requests slower than this many milliseconds land in the
    /// slow-query ring dumped by the `TRACE` frame. `None` disables
    /// capture (the default); `Some(0)` traces **every** request —
    /// the ring is bounded, so that is cheap and is how `dgsq trace`
    /// is used as a flight recorder.
    pub slow_ms: Option<u64>,
    /// Stderr log verbosity (leveled, per-target rate-limited).
    pub log_level: LogLevel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            drain_grace: Duration::from_secs(5),
            worker_threads: 0,
            max_pipeline: 128,
            max_sub_queue: DEFAULT_SUB_QUEUE_MAX,
            metrics_enabled: true,
            metrics_addr: None,
            slow_ms: None,
            log_level: LogLevel::Warn,
        }
    }
}

// Workers oversubscribe cores: requests block on I/O-ish work
// (scoped fan-out joins, delta maintenance) and a floor of 4 keeps a
// short query from queueing behind slow writes even on a 1-core box.
fn default_workers() -> usize {
    (std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        * 2)
    .clamp(4, 16)
}

/// One decoded-enough request handed to the worker pool: the frame
/// body stays raw so even `LOAD_GRAPH`-sized decodes happen off the
/// event thread.
struct Job {
    conn_id: u64,
    request_id: u64,
    version: u8,
    ty: u8,
    body: Vec<u8>,
    route: Arc<Mutex<Route>>,
    /// True for barrier frames (`SESSION_ROUTE`/`SHUTDOWN`): the
    /// completion reopens the connection's dispatch.
    release_barrier: bool,
    /// When the event thread queued the job (worker-pool wait time).
    enqueued: Instant,
}

/// One finished request: a fully encoded response frame ready for the
/// connection's write queue.
struct Completion {
    conn_id: u64,
    frame: Vec<u8>,
    release_barrier: bool,
    wants_shutdown: bool,
}

/// The worker pool's job queue (std mutex + condvar — the only
/// blocking wait in the server).
struct JobQueue {
    inner: StdMutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            inner: StdMutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut g = self.inner.lock().expect("job queue poisoned");
        g.0.push_back(job);
        self.cv.notify_one();
    }

    /// Blocks for the next job; `None` once closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut g = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = g.0.pop_front() {
                return Some(job);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("job queue poisoned").1 = true;
        self.cv.notify_all();
    }
}

/// Recycled response-frame buffers: workers encode into a pooled
/// `Vec`, the event thread returns it after the flush — steady-state
/// serving allocates nothing per response.
struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

/// Don't hoard buffers that ballooned on one giant answer.
const POOL_MAX_BUF: usize = 1 << 20;
/// Enough pooled buffers to cover every worker plus queued flushes.
const POOL_MAX_LEN: usize = 64;

impl BufferPool {
    fn new() -> BufferPool {
        BufferPool {
            bufs: Mutex::new(Vec::new()),
        }
    }

    fn get(&self) -> Vec<u8> {
        self.bufs.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > POOL_MAX_BUF {
            return;
        }
        buf.clear();
        let mut g = self.bufs.lock();
        if g.len() < POOL_MAX_LEN {
            g.push(buf);
        }
    }
}

// ---- observability ----------------------------------------------------

/// The label value for a request frame type.
fn frame_name(ty: u8) -> &'static str {
    match ty {
        frame::PING => "PING",
        frame::GRAPH_INFO => "GRAPH_INFO",
        frame::QUERY => "QUERY",
        frame::QUERY_BATCH => "QUERY_BATCH",
        frame::APPLY_DELTA => "APPLY_DELTA",
        frame::CACHE_STATS => "CACHE_STATS",
        frame::COMPRESSION_INFO => "COMPRESSION_INFO",
        frame::LOAD_GRAPH => "LOAD_GRAPH",
        frame::SHUTDOWN => "SHUTDOWN",
        frame::SESSION_CREATE => "SESSION_CREATE",
        frame::SESSION_LIST => "SESSION_LIST",
        frame::SESSION_DROP => "SESSION_DROP",
        frame::SESSION_ROUTE => "SESSION_ROUTE",
        frame::SUBSCRIBE => "SUBSCRIBE",
        frame::UNSUBSCRIBE => "UNSUBSCRIBE",
        frame::METRICS => "METRICS",
        frame::TRACE => "TRACE",
        _ => "OTHER",
    }
}

/// Every request frame type that gets its own latency series.
const REQUEST_FRAMES: [u8; 17] = [
    frame::PING,
    frame::GRAPH_INFO,
    frame::QUERY,
    frame::QUERY_BATCH,
    frame::APPLY_DELTA,
    frame::CACHE_STATS,
    frame::COMPRESSION_INFO,
    frame::LOAD_GRAPH,
    frame::SHUTDOWN,
    frame::SESSION_CREATE,
    frame::SESSION_LIST,
    frame::SESSION_DROP,
    frame::SESSION_ROUTE,
    frame::SUBSCRIBE,
    frame::UNSUBSCRIBE,
    frame::METRICS,
    frame::TRACE,
];

/// Pre-resolved metric handles for the serving hot path: every
/// increment is one atomic op on an `Arc` fixed at bind time — no
/// registry lookup per request, and a disabled registry makes each
/// handle a no-op.
struct ServerObs {
    conns_accepted: Counter,
    conns_rejected: Counter,
    accept_errors: Counter,
    requests_total: Counter,
    /// Jobs queued for the worker pool right now.
    queue_depth: Gauge,
    /// Time a job sat queued before a worker picked it up.
    worker_wait_ns: Histo,
    /// Queue + execute + encode latency, one series per frame type.
    request_ns: HashMap<u8, Histo>,
    request_ns_other: Histo,
    deltas_applied: Counter,
    delta_maintained: Counter,
    delta_invalidated: Counter,
    slow_queries: Counter,
    /// Push frames parked across every subscription queue (synced at
    /// scrape time).
    sub_queue_frames: Gauge,
}

impl ServerObs {
    fn new(reg: &MetricsRegistry) -> ServerObs {
        let request_ns = REQUEST_FRAMES
            .iter()
            .map(|&ty| {
                let name = format!("dgsd_request_ns{{frame=\"{}\"}}", frame_name(ty));
                (ty, reg.histogram(&name))
            })
            .collect();
        ServerObs {
            conns_accepted: reg.counter("dgsd_connections_accepted_total"),
            conns_rejected: reg.counter("dgsd_connections_rejected_total"),
            accept_errors: reg.counter("dgsd_accept_errors_total"),
            requests_total: reg.counter("dgsd_requests_total"),
            queue_depth: reg.gauge("dgsd_job_queue_depth"),
            worker_wait_ns: reg.histogram("dgsd_worker_wait_ns"),
            request_ns,
            request_ns_other: reg.histogram("dgsd_request_ns{frame=\"OTHER\"}"),
            deltas_applied: reg.counter("dgsd_deltas_applied_total"),
            delta_maintained: reg.counter("dgsd_delta_maintained_entries_total"),
            delta_invalidated: reg.counter("dgsd_delta_invalidated_entries_total"),
            slow_queries: reg.counter("dgsd_slow_queries_total"),
            sub_queue_frames: reg.gauge("dgsd_sub_queue_frames"),
        }
    }

    fn request_histo(&self, ty: u8) -> &Histo {
        self.request_ns.get(&ty).unwrap_or(&self.request_ns_other)
    }

    /// The subscription registry's counter handles, resolved from the
    /// same registry so they appear in the same exposition.
    fn sub_obs(reg: &MetricsRegistry) -> SubObs {
        SubObs {
            active: reg.gauge("dgsd_subscriptions_active"),
            pushed: reg.counter("dgsd_sub_diffs_pushed_total"),
            overflows: reg.counter("dgsd_sub_overflows_total"),
        }
    }
}

/// Slow requests kept for the `TRACE` frame (oldest evicted first).
const SLOW_LOG_CAP: usize = 256;

/// What `execute` learned about a request, threaded back to the
/// worker loop for the slow-query log.
#[derive(Default)]
struct TraceCapture {
    session: String,
    algorithm: String,
    plan: String,
    site_ops: Vec<u64>,
    site_msgs: Vec<u64>,
    generation: u64,
}

/// Records what the slow-query log wants from a completed run.
fn note_trace(trace: &mut TraceCapture, session: &str, report: &RunReport) {
    trace.session = session.to_owned();
    trace.algorithm = report.algorithm.to_owned();
    trace.plan = report.plan.to_string();
    trace.site_ops = report.metrics.site_ops.clone();
    trace.site_msgs = report.metrics.site_msgs.clone();
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A session name as a Prometheus label value (quotes and
/// backslashes escaped).
fn label_escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Refreshes scrape-time gauges: per-session engine counters (the
/// engines own them; the registry mirrors them when someone looks)
/// and subscription queue occupancy.
fn refresh_gauges(shared: &Shared) {
    if !shared.registry.is_enabled() {
        return;
    }
    for (name, engine) in shared.sessions.list() {
        let stats = engine.stats();
        let label = label_escape(&name);
        let set = |family: &str, v: u64| {
            shared
                .registry
                .gauge(&format!("{family}{{session=\"{label}\"}}"))
                .set(v);
        };
        set("dgsd_session_generation", engine.generation());
        set("dgsd_session_queries", stats.queries());
        set("dgsd_session_cache_hits", stats.cache_hits());
        set("dgsd_session_deltas", stats.deltas());
    }
    shared
        .obs
        .sub_queue_frames
        .set(shared.subs.queued_frames() as u64);
}

/// State shared between the event thread, the worker pool and
/// [`ServerHandle`]s.
struct Shared {
    sessions: Arc<SessionManager>,
    shutdown: AtomicBool,
    served: AtomicU64,
    rejected: AtomicU64,
    addr: ServeAddr,
    max_connections: usize,
    drain_grace: Duration,
    max_pipeline: usize,
    worker_threads: usize,
    jobs: JobQueue,
    completions: Mutex<Vec<Completion>>,
    pool: BufferPool,
    wake: WakeHandle,
    /// Live match subscriptions (wire v4).
    subs: SubscriptionRegistry,
    /// Connections that gained queued push frames since the event
    /// loop last looked; workers push here and wake the poller.
    sub_dirty: Mutex<Vec<u64>>,
    /// The server-wide metrics registry (`disabled()` when metrics
    /// are off — every handle is then a no-op).
    registry: MetricsRegistry,
    /// Pre-resolved hot-path handles into `registry`.
    obs: ServerObs,
    /// The slow-query ring (bounded at [`SLOW_LOG_CAP`]).
    slow_log: Mutex<VecDeque<WireTrace>>,
    /// Slow-query threshold in nanoseconds; `None` = capture off,
    /// `Some(0)` = trace everything.
    slow_ns: Option<u64>,
    /// Leveled, rate-limited stderr logger.
    log: Logger,
    /// The text-exposition endpoint's resolved address, when bound.
    metrics_addr: Option<ServeAddr>,
}

/// A bound, not-yet-running server. [`Server::run`] blocks;
/// [`Server::spawn`] runs it on a background thread and returns a
/// [`ServerHandle`].
pub struct Server {
    listener: Listener,
    /// The optional Prometheus text-exposition listener, polled by
    /// the same event loop.
    metrics_listener: Option<Listener>,
    wake_pipe: WakePipe,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` and hosts `engine` as the `"default"` session.
    pub fn bind(addr: &ServeAddr, engine: SimEngine, cfg: ServerConfig) -> io::Result<Server> {
        let listener = Listener::bind(addr)?;
        let resolved = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(maddr) => Some(Listener::bind(maddr)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let registry = if cfg.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let obs = ServerObs::new(&registry);
        let sub_obs = ServerObs::sub_obs(&registry);
        let wake_pipe = WakePipe::new()?;
        let wake = wake_pipe.handle();
        Ok(Server {
            listener,
            metrics_listener,
            wake_pipe,
            shared: Arc::new(Shared {
                sessions: Arc::new(SessionManager::new(engine)),
                shutdown: AtomicBool::new(false),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                addr: resolved,
                max_connections: cfg.max_connections,
                drain_grace: cfg.drain_grace,
                max_pipeline: cfg.max_pipeline.max(1),
                worker_threads: if cfg.worker_threads == 0 {
                    default_workers()
                } else {
                    cfg.worker_threads
                },
                jobs: JobQueue::new(),
                completions: Mutex::new(Vec::new()),
                pool: BufferPool::new(),
                wake,
                subs: SubscriptionRegistry::with_obs(cfg.max_sub_queue, sub_obs),
                sub_dirty: Mutex::new(Vec::new()),
                registry,
                obs,
                slow_log: Mutex::new(VecDeque::new()),
                slow_ns: cfg.slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
                log: Logger::new(cfg.log_level),
                metrics_addr,
            }),
        })
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> ServeAddr {
        self.shared.addr.clone()
    }

    /// The `"default"` session's engine, shared with every connection
    /// (tests use this as the in-process oracle handle).
    ///
    /// # Panics
    /// If the default session was dropped or replaced via the wire.
    pub fn engine(&self) -> Arc<SimEngine> {
        self.shared
            .sessions
            .get(crate::session::DEFAULT_SESSION)
            .expect("default session is hosted")
    }

    /// The session registry (add sessions before `run`/`spawn`, or
    /// concurrently — the map is its own synchronization).
    pub fn sessions(&self) -> Arc<SessionManager> {
        Arc::clone(&self.shared.sessions)
    }

    /// Where the Prometheus text exposition will be served, when
    /// [`ServerConfig::metrics_addr`] was set (ephemeral port
    /// resolved).
    pub fn metrics_addr(&self) -> Option<&ServeAddr> {
        self.shared.metrics_addr.as_ref()
    }

    /// Serves until a `SHUTDOWN` frame arrives (or
    /// [`ServerHandle::shutdown`] is called on a spawned server).
    /// Returns after the drain completes and the worker pool exits.
    pub fn run(self) -> io::Result<()> {
        let shared = self.shared;
        let workers: Vec<_> = (0..shared.worker_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let result = event_loop(
            &self.listener,
            self.metrics_listener.as_ref(),
            self.wake_pipe,
            &shared,
        );
        shared.jobs.close();
        for w in workers {
            let _ = w.join();
        }
        if let ServeAddr::Unix(path) = &shared.addr {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread,
        }
    }
}

/// A running, spawned server.
pub struct ServerHandle {
    addr: ServeAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// What clients should dial.
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// The `"default"` session's engine (the tests' oracle handle).
    ///
    /// # Panics
    /// If the default session was dropped or replaced via the wire.
    pub fn engine(&self) -> Arc<SimEngine> {
        self.shared
            .sessions
            .get(crate::session::DEFAULT_SESSION)
            .expect("default session is hosted")
    }

    /// The session registry.
    pub fn sessions(&self) -> Arc<SessionManager> {
        Arc::clone(&self.shared.sessions)
    }

    /// Connections rejected by admission control so far.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Subscriptions currently live across every connection
    /// (overflowed-but-undrained ones no longer count).
    pub fn live_subscriptions(&self) -> usize {
        self.shared.subs.live_count()
    }

    /// A live snapshot of the server metrics registry, with the
    /// scrape-time gauges (per-session engine counters, subscription
    /// queue occupancy) refreshed first. Empty when metrics are
    /// disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        refresh_gauges(&self.shared);
        self.shared.registry.snapshot()
    }

    /// Where the Prometheus text exposition is served, when
    /// [`ServerConfig::metrics_addr`] was set (ephemeral port
    /// resolved).
    pub fn metrics_addr(&self) -> Option<&ServeAddr> {
        self.shared.metrics_addr.as_ref()
    }

    /// Stops the server (drain, then force-close) and joins it.
    pub fn shutdown(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

// ---- the worker pool --------------------------------------------------

/// Pulls jobs until the queue closes: decode, execute, encode the
/// response into a pooled frame buffer, hand it back, wake the
/// poller. A panicking request (a shard bug, a pathological pattern)
/// becomes a typed `Internal` error instead of a dead worker.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.jobs.pop() {
        let queue_ns = elapsed_ns(job.enqueued);
        shared.obs.queue_depth.dec();
        shared.obs.worker_wait_ns.record(queue_ns);
        let exec_start = Instant::now();
        let mut trace = TraceCapture::default();
        let (resp, wants_shutdown) = match Request::decode(job.ty, &job.body) {
            Ok(req) => {
                let wants_shutdown = matches!(req, Request::Shutdown);
                let resp = catch_unwind(AssertUnwindSafe(|| {
                    execute(
                        &req,
                        shared,
                        &job.route,
                        job.conn_id,
                        job.version,
                        &mut trace,
                    )
                }))
                .unwrap_or_else(|_| Response::Error {
                    code: ErrorCode::Internal,
                    message: "request execution panicked on the server".into(),
                });
                (resp, wants_shutdown)
            }
            // Frames are length-delimited, so the stream is still in
            // sync: report and keep serving.
            Err(e) => (
                Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                },
                false,
            ),
        };
        let exec_ns = elapsed_ns(exec_start);
        let encode_start = Instant::now();
        let mut buf = shared.pool.get();
        let id = (job.version >= 3).then_some(job.request_id);
        // Encode at the *connection's* version: a v3 peer must not see
        // the v4 DELTA_APPLIED extension.
        if encode_frame_into(&mut buf, id, |b| resp.encode_into_v(b, job.version)).is_err() {
            // The answer outgrew MAX_FRAME; the error that replaces it
            // cannot (it is a short string).
            let resp = Response::Error {
                code: ErrorCode::Internal,
                message: "response exceeded the maximum frame size".into(),
            };
            encode_frame_into(&mut buf, id, |b| resp.encode_into_v(b, job.version))
                .expect("error frame fits MAX_FRAME");
        }
        let encode_ns = elapsed_ns(encode_start);
        let total_ns = queue_ns.saturating_add(exec_ns).saturating_add(encode_ns);
        shared.obs.requests_total.inc();
        shared.obs.request_histo(job.ty).record(total_ns);
        if shared.slow_ns.is_some_and(|ns| total_ns >= ns) {
            shared.obs.slow_queries.inc();
            shared.log.warn(
                "slow",
                &format!(
                    "{} took {:.1} ms (queue {:.1} ms, exec {:.1} ms) on conn {}",
                    frame_name(job.ty),
                    total_ns as f64 / 1e6,
                    queue_ns as f64 / 1e6,
                    exec_ns as f64 / 1e6,
                    job.conn_id
                ),
            );
            let mut slow = shared.slow_log.lock();
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(WireTrace {
                conn_id: job.conn_id,
                request_id: job.request_id,
                ty: job.ty,
                session: trace.session,
                queue_ns,
                exec_ns,
                encode_ns,
                total_ns,
                algorithm: trace.algorithm,
                plan: trace.plan,
                site_ops: trace.site_ops,
                site_msgs: trace.site_msgs,
                generation: trace.generation,
            });
        }
        shared.served.fetch_add(1, Ordering::SeqCst);
        shared.completions.lock().push(Completion {
            conn_id: job.conn_id,
            frame: buf,
            release_barrier: job.release_barrier,
            wants_shutdown,
        });
        shared.wake.wake();
    }
}

// ---- the event loop ---------------------------------------------------

/// How long a fresh connection may sit before completing the
/// handshake (slow-loris guard; pre-handshake sockets hold no route
/// or session state, so cutting them is free).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

enum Phase {
    /// Waiting for `HELLO`; cut at `deadline`. `reject` marks an
    /// over-capacity connection whose `HELLO` gets `Busy`.
    Handshake { deadline: Instant, reject: bool },
    /// Handshake done, version negotiated.
    Serving,
}

/// Per-connection event-loop state: buffers, not a thread.
struct ConnState {
    conn: Conn,
    phase: Phase,
    version: u8,
    rbuf: FrameBuffer,
    /// Encoded frames awaiting flush; `out_pos` indexes into the
    /// front frame (partial writes are routine under poll).
    out: VecDeque<Vec<u8>>,
    out_pos: usize,
    /// Parsed requests not yet dispatched to the worker pool.
    pending: VecDeque<(u64, u8, Vec<u8>)>,
    in_flight: usize,
    /// A barrier frame (`SESSION_ROUTE`/`SHUTDOWN`) is executing;
    /// dispatch is paused until its completion releases it.
    barrier: bool,
    route: Arc<Mutex<Route>>,
    /// No more reads; flush `out` and whatever is in flight, then
    /// close.
    closing: bool,
    /// The final drain-time `ShuttingDown` notice was queued.
    notified_shutdown: bool,
}

impl ConnState {
    fn new(conn: Conn, reject: bool) -> ConnState {
        ConnState {
            conn,
            phase: Phase::Handshake {
                deadline: Instant::now() + HANDSHAKE_TIMEOUT,
                reject,
            },
            version: 0,
            rbuf: FrameBuffer::new(),
            out: VecDeque::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            in_flight: 0,
            barrier: false,
            route: Arc::new(Mutex::new(Route::default())),
            closing: false,
            notified_shutdown: false,
        }
    }

    fn rejecting(&self) -> bool {
        matches!(self.phase, Phase::Handshake { reject: true, .. })
    }

    /// Work left that the drain must wait for.
    fn draining(&self) -> bool {
        self.in_flight > 0 || !self.pending.is_empty() || !self.out.is_empty()
    }

    /// Queues one encoded response frame (an owned, non-pooled error
    /// or handshake frame).
    fn push_frame(&mut self, id: Option<u64>, resp: &Response) {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, id, |b| resp.encode_into(b)).expect("small frame fits");
        self.out.push_back(buf);
    }

    /// The connection-level id for unsolicited server frames: v3
    /// reserves 0; pre-v3 frames carry no id at all.
    fn conn_level_id(&self) -> Option<u64> {
        (self.version >= 3).then_some(0)
    }
}

enum Token {
    Wake,
    Listener,
    Conn(u64),
    MetricsListener,
    MetricsConn(u64),
}

/// One plain-HTTP scrape connection on the metrics endpoint: read
/// until the header terminator (or EOF), write one `text/plain`
/// exposition, close. No keep-alive — scrapers open a fresh
/// connection per scrape, and a half-open peer is cut at `deadline`.
struct MetricsConn {
    conn: Conn,
    rbuf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    deadline: Instant,
    responded: bool,
}

fn event_loop(
    listener: &Listener,
    metrics: Option<&Listener>,
    mut wake_pipe: WakePipe,
    shared: &Shared,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    if let Some(m) = metrics {
        m.set_nonblocking(true)?;
    }
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut mconns: HashMap<u64, MetricsConn> = HashMap::new();
    let mut next_mconn: u64 = 0;
    let mut next_conn: u64 = 0;
    // Admitted (non-rejecting) connections, tracked incrementally so
    // admission control is O(1) per accept.
    let mut admitted: usize = 0;
    let mut poll = PollSet::new();
    let mut tokens: Vec<Token> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    // Connections whose queues changed this iteration and want an
    // opportunistic flush without waiting for the next poll round.
    let mut touched: Vec<u64> = Vec::new();

    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + shared.drain_grace);
            // One final accept sweep: peers whose connect() already
            // succeeded against the kernel backlog deserve a typed
            // `Busy`/`ShuttingDown` answer to their HELLO, not the
            // reset they would get when the listener closes.
            accept_burst(listener, shared, &mut conns, &mut next_conn, &mut admitted);
            for (&id, c) in conns.iter_mut() {
                begin_drain(id, c, shared);
            }
        }
        // Sweep: drop connections that finished (or died), answer the
        // drain notice once a draining connection's last response
        // lands, and enforce deadlines.
        let now = Instant::now();
        let force_close = matches!(drain_deadline, Some(dl) if now >= dl);
        conns.retain(|&id, c| {
            if shutting && !c.notified_shutdown && c.in_flight == 0 && c.pending.is_empty() {
                begin_drain(id, c, shared);
            }
            let expired = match c.phase {
                Phase::Handshake { deadline, .. } => now >= deadline,
                Phase::Serving => false,
            };
            let done = c.closing && !c.draining();
            if force_close || expired || done {
                if !c.rejecting() {
                    admitted -= 1;
                }
                for buf in c.out.drain(..) {
                    shared.pool.put(buf);
                }
                // A dead socket's subscriptions go with it (nothing to
                // notify — there is no peer left to read the event).
                shared.subs.drop_conn(id);
                false
            } else {
                true
            }
        });
        // Scrape connections never block shutdown: they are dropped
        // once draining starts, finished ones leave, half-open ones
        // are cut at their deadline.
        mconns.retain(|_, m| {
            let done = m.responded && m.out_pos >= m.out.len() && !m.out.is_empty();
            !(shutting || done || now >= m.deadline)
        });
        if shutting && conns.is_empty() {
            return Ok(());
        }

        poll.clear();
        tokens.clear();
        poll.push(wake_pipe.poll_fd(), true, false);
        tokens.push(Token::Wake);
        if !shutting {
            poll.push(listener.as_raw_fd(), true, false);
            tokens.push(Token::Listener);
            if let Some(m) = metrics {
                poll.push(m.as_raw_fd(), true, false);
                tokens.push(Token::MetricsListener);
            }
        }
        for (&id, m) in mconns.iter() {
            poll.push(m.conn.as_raw_fd(), !m.responded, !m.out.is_empty());
            tokens.push(Token::MetricsConn(id));
        }
        for (&id, c) in conns.iter() {
            let cap = if c.version >= 3 {
                shared.max_pipeline
            } else {
                1
            };
            let want_read = !c.closing && c.pending.len() + c.in_flight < cap;
            let want_write = !c.out.is_empty();
            if want_read || want_write {
                poll.push(c.conn.as_raw_fd(), want_read, want_write);
                tokens.push(Token::Conn(id));
            }
        }
        // Deadlines (handshake cutoffs, the drain grace) need the
        // poller to wake without fd activity.
        let timeout = if drain_deadline.is_some()
            || !mconns.is_empty()
            || conns
                .values()
                .any(|c| matches!(c.phase, Phase::Handshake { .. }))
        {
            Some(Duration::from_millis(100))
        } else {
            None
        };
        poll.poll(timeout)?;

        touched.clear();
        for (idx, tok) in tokens.iter().enumerate() {
            match tok {
                Token::Wake => {
                    if poll.readable(idx) {
                        wake_pipe.drain();
                    }
                }
                Token::Listener => {
                    if poll.readable(idx) {
                        accept_burst(listener, shared, &mut conns, &mut next_conn, &mut admitted);
                    }
                }
                Token::Conn(id) => {
                    if poll.readable(idx) {
                        if let Some(c) = conns.get_mut(id) {
                            handle_read(*id, c, shared, shutting);
                        }
                    }
                    touched.push(*id);
                }
                Token::MetricsListener => {
                    if poll.readable(idx) {
                        if let Some(m) = metrics {
                            accept_metrics(m, &mut mconns, &mut next_mconn);
                        }
                    }
                }
                Token::MetricsConn(id) => {
                    if let Some(m) = mconns.get_mut(id) {
                        if service_metrics_conn(m, shared, poll.readable(idx)).is_err() {
                            mconns.remove(id);
                        }
                    }
                }
            }
        }
        // Completions: append encoded responses to their connections'
        // write queues (responses for connections that died mid-query
        // recycle straight back to the pool).
        for comp in shared.completions.lock().drain(..) {
            if comp.wants_shutdown {
                shared.shutdown.store(true, Ordering::SeqCst);
            }
            match conns.get_mut(&comp.conn_id) {
                Some(c) => {
                    c.in_flight -= 1;
                    if comp.release_barrier {
                        c.barrier = false;
                    }
                    c.out.push_back(comp.frame);
                    pump_dispatch(comp.conn_id, c, shared, shutting);
                    touched.push(comp.conn_id);
                }
                None => shared.pool.put(comp.frame),
            }
        }
        // Subscription pushes: workers queued MATCH_DIFF/SUB_EVENT
        // frames in the registry and marked their connections dirty;
        // move them into the write queues here (the event thread is
        // the only socket writer).
        let dirty: Vec<u64> = std::mem::take(&mut *shared.sub_dirty.lock());
        for id in dirty {
            match conns.get_mut(&id) {
                Some(c) if !c.closing => {
                    pump_subscriptions(id, c, shared);
                    touched.push(id);
                }
                _ => shared.subs.drop_conn(id),
            }
        }
        // Opportunistic flush: most responses go out here, in the
        // same iteration they were produced, saving a poll round.
        // After a full flush, pull any push frames still parked in
        // the registry (they were gated on the out-queue length) and
        // flush again, so a draining socket keeps its diff stream
        // moving without waiting for the next delta.
        for id in touched.drain(..) {
            if let Some(c) = conns.get_mut(&id) {
                loop {
                    if flush_writes(c, shared).is_err() {
                        c.closing = true;
                        c.out.clear();
                        c.pending.clear();
                        break;
                    }
                    if c.closing || !c.out.is_empty() || !shared.subs.has_frames(id) {
                        break;
                    }
                    pump_subscriptions(id, c, shared);
                }
            }
        }
    }
}

/// Write-queue gate for push frames: a subscription burst fills the
/// out queue at most this far, leaving the rest parked in the
/// registry's bounded per-subscription queues.
const SUB_PUMP_GATE: usize = 64;

/// Moves queued push frames of `conn_id` into its write queue, up to
/// the gate.
fn pump_subscriptions(conn_id: u64, c: &mut ConnState, shared: &Shared) {
    while c.out.len() < SUB_PUMP_GATE {
        let budget = SUB_PUMP_GATE - c.out.len();
        let frames = shared.subs.take_frames(conn_id, budget);
        if frames.is_empty() {
            return;
        }
        c.out.extend(frames);
    }
}

/// Accepts pending scrape connections on the metrics listener.
fn accept_metrics(listener: &Listener, mconns: &mut HashMap<u64, MetricsConn>, next: &mut u64) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // WouldBlock or a transient failure: the next poll round
            // retries; scrapes are best-effort.
            Err(_) => return,
        };
        if conn.set_nonblocking(true).is_err() {
            continue;
        }
        let id = *next;
        *next += 1;
        mconns.insert(
            id,
            MetricsConn {
                conn,
                rbuf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                deadline: Instant::now() + HANDSHAKE_TIMEOUT,
                responded: false,
            },
        );
    }
}

/// Drives one scrape connection: read until the request headers end
/// (or EOF), render the exposition once, flush. `Err` means the
/// socket is finished — flushed in full or failed — and should be
/// dropped either way.
fn service_metrics_conn(m: &mut MetricsConn, shared: &Shared, readable: bool) -> Result<(), ()> {
    if readable && !m.responded {
        let mut chunk = [0u8; 4096];
        loop {
            match m.conn.read(&mut chunk) {
                // EOF before the headers ended: answer what we have —
                // `nc addr port < /dev/null` still gets the text.
                Ok(0) => {
                    m.responded = true;
                    break;
                }
                Ok(n) => {
                    m.rbuf.extend_from_slice(&chunk[..n]);
                    if m.rbuf.len() > 16 * 1024 {
                        return Err(()); // not a scrape request
                    }
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        if m.rbuf.windows(4).any(|w| w == b"\r\n\r\n") {
            m.responded = true;
        }
        if m.responded {
            refresh_gauges(shared);
            let body = shared.registry.snapshot().to_text();
            m.out = format!(
                "HTTP/1.0 200 OK\r\n\
                 Content-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
            .into_bytes();
        }
    }
    while m.out_pos < m.out.len() {
        match m.conn.write(&m.out[m.out_pos..]) {
            Ok(0) => return Err(()),
            Ok(n) => m.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    if m.responded && !m.out.is_empty() {
        Err(()) // fully flushed: close
    } else {
        Ok(())
    }
}

/// Accepts until `WouldBlock`; over-capacity connections are admitted
/// far enough to answer their handshake with `Busy`.
fn accept_burst(
    listener: &Listener,
    shared: &Shared,
    conns: &mut HashMap<u64, ConnState>,
    next_conn: &mut u64,
    admitted: &mut usize,
) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Transient accept failures (fd exhaustion under
                // churn, aborted connections) must not take the whole
                // daemon down with every in-flight session.
                shared.obs.accept_errors.inc();
                shared
                    .log
                    .warn("accept", &format!("accept failed ({e}); continuing"));
                return;
            }
        };
        if conn.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = conn.set_nodelay();
        let reject = *admitted >= shared.max_connections;
        if !reject {
            *admitted += 1;
        }
        shared.obs.conns_accepted.inc();
        let id = *next_conn;
        *next_conn += 1;
        conns.insert(id, ConnState::new(conn, reject));
    }
}

/// Reads everything the socket has, then parses and routes the
/// complete frames.
fn handle_read(conn_id: u64, c: &mut ConnState, shared: &Shared, shutting: bool) {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match c.conn.read(&mut chunk) {
            Ok(0) => {
                // Peer closed its write side: no more requests, but
                // in-flight responses still flush.
                c.closing = true;
                break;
            }
            Ok(n) => {
                c.rbuf.extend(&chunk[..n]);
                if n < chunk.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.closing = true;
                c.out.clear();
                c.pending.clear();
                return;
            }
        }
    }
    loop {
        match c.rbuf.next_frame() {
            Ok(Some((ty, payload))) => process_frame(conn_id, c, shared, shutting, ty, &payload),
            Ok(None) => break,
            Err(e) => {
                // Framing-level corruption (an oversized length):
                // unlike a bad payload, the stream cannot resync —
                // report once and hang up.
                c.push_frame(
                    c.conn_level_id(),
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: ServeError::from(e).to_string(),
                    },
                );
                c.closing = true;
                break;
            }
        }
        if c.closing {
            break;
        }
    }
}

/// Handles one complete inbound frame: handshake, or queue-and-pump.
fn process_frame(
    conn_id: u64,
    c: &mut ConnState,
    shared: &Shared,
    shutting: bool,
    ty: u8,
    payload: &[u8],
) {
    match c.phase {
        Phase::Handshake { reject, .. } => {
            // HELLO(magic, client max version). Trailing bytes after
            // the version are *tolerated* (a future client's
            // extensions), not rejected: forward compatibility is the
            // whole point of the version byte.
            if ty != frame::HELLO || payload.len() < 5 || payload[..4] != WIRE_MAGIC {
                c.push_frame(
                    None,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: "expected HELLO(magic, version)".into(),
                    },
                );
                c.closing = true;
                return;
            }
            let theirs = payload[4];
            if theirs < 1 {
                c.push_frame(
                    None,
                    &Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!(
                            "peer offered protocol v{theirs}; this server speaks v1..=v{WIRE_VERSION}"
                        ),
                    },
                );
                c.closing = true;
                return;
            }
            if reject {
                // Admission control: a typed Busy answer, drained in
                // full even when shutdown races the flush.
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                shared.obs.conns_rejected.inc();
                c.push_frame(
                    None,
                    &Response::Error {
                        code: ErrorCode::Busy,
                        message: "server at connection capacity, retry later".into(),
                    },
                );
                c.closing = true;
                return;
            }
            if shutting {
                c.push_frame(
                    None,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                );
                c.closing = true;
                return;
            }
            c.version = theirs.min(WIRE_VERSION);
            let mut welcome = Vec::with_capacity(5);
            welcome.extend_from_slice(&WIRE_MAGIC);
            welcome.push(c.version);
            let mut buf = Vec::new();
            buf.extend_from_slice(&(welcome.len() as u32).to_le_bytes());
            buf.push(frame::WELCOME);
            buf.extend_from_slice(&welcome);
            c.out.push_back(buf);
            c.phase = Phase::Serving;
        }
        Phase::Serving => {
            let (id, body) = if c.version >= 3 {
                match split_request_id(payload) {
                    Ok((id, rest)) => (id, rest.to_vec()),
                    Err(e) => {
                        c.push_frame(
                            c.conn_level_id(),
                            &Response::Error {
                                code: ErrorCode::Malformed,
                                message: e.to_string(),
                            },
                        );
                        c.closing = true;
                        return;
                    }
                }
            } else {
                (0, payload.to_vec())
            };
            c.pending.push_back((id, ty, body));
            pump_dispatch(conn_id, c, shared, shutting);
        }
    }
}

/// Moves pending requests into the worker pool, respecting the
/// pipeline cap and barrier frames. During a drain, undispatched
/// requests are answered with a typed `ShuttingDown` instead.
fn pump_dispatch(conn_id: u64, c: &mut ConnState, shared: &Shared, shutting: bool) {
    if shutting {
        while let Some((id, _, _)) = c.pending.pop_front() {
            let id = (c.version >= 3).then_some(id);
            c.push_frame(
                id,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is shutting down".into(),
                },
            );
        }
        return;
    }
    let cap = if c.version >= 3 {
        shared.max_pipeline
    } else {
        1
    };
    while !c.barrier && c.in_flight < cap {
        let Some(&(_, ty, _)) = c.pending.front() else {
            break;
        };
        // Barriers serialize against everything on this connection:
        // a pipelined SESSION_ROUTE applies to exactly the requests
        // behind it, and a SHUTDOWN response follows the answers of
        // the requests ahead of it.
        let is_barrier = ty == frame::SESSION_ROUTE || ty == frame::SHUTDOWN;
        if is_barrier && c.in_flight > 0 {
            break;
        }
        let (id, ty, body) = c.pending.pop_front().expect("front exists");
        c.in_flight += 1;
        c.barrier = is_barrier;
        shared.obs.queue_depth.inc();
        shared.jobs.push(Job {
            conn_id,
            request_id: id,
            version: c.version,
            ty,
            body,
            route: Arc::clone(&c.route),
            release_barrier: is_barrier,
            enqueued: Instant::now(),
        });
    }
}

/// Marks a connection for drain: undispatched requests answer
/// `ShuttingDown`; once nothing is in flight, every live
/// subscription gets a terminal `SUB_EVENT(draining)`, then one final
/// connection-level `ShuttingDown` notice goes out and the
/// connection closes after the flush.
fn begin_drain(conn_id: u64, c: &mut ConnState, shared: &Shared) {
    match c.phase {
        Phase::Handshake { reject, .. } => {
            // Nothing was promised yet — except a queued Busy frame,
            // which `draining()` keeps alive until flushed.
            if !reject {
                c.closing = true;
            }
        }
        Phase::Serving => {
            while let Some((id, _, _)) = c.pending.pop_front() {
                let id = (c.version >= 3).then_some(id);
                c.push_frame(
                    id,
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                );
            }
            if c.in_flight == 0 && !c.notified_shutdown {
                c.notified_shutdown = true;
                // Pending diffs first, then the typed drain event per
                // subscription, then the connection-level notice — the
                // client sees a complete, terminated stream.
                pump_subscriptions(conn_id, c, shared);
                for frame in shared.subs.drain_conn(conn_id) {
                    c.out.push_back(frame);
                }
                c.push_frame(
                    c.conn_level_id(),
                    &Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    },
                );
                c.closing = true;
            }
        }
    }
}

/// Writes as much of the out queue as the socket takes; fully flushed
/// frames recycle to the buffer pool. Queued frames go to the kernel
/// as one gather-write (`writev`) — under pipelining a burst of
/// responses costs one syscall, not one per frame.
fn flush_writes(c: &mut ConnState, shared: &Shared) -> io::Result<()> {
    const IOV_BATCH: usize = 64;
    while !c.out.is_empty() {
        let mut iov: Vec<io::IoSlice<'_>> = Vec::with_capacity(c.out.len().min(IOV_BATCH));
        for (i, buf) in c.out.iter().take(IOV_BATCH).enumerate() {
            let skip = if i == 0 { c.out_pos } else { 0 };
            iov.push(io::IoSlice::new(&buf[skip..]));
        }
        match c.conn.write_vectored(&iov) {
            Ok(0) => return Err(io::Error::other("socket write returned 0")),
            Ok(mut n) => {
                n += c.out_pos;
                c.out_pos = 0;
                while let Some(front) = c.out.front() {
                    if n < front.len() {
                        c.out_pos = n;
                        break;
                    }
                    n -= front.len();
                    let buf = c.out.pop_front().expect("front exists");
                    shared.pool.put(buf);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---- request execution ------------------------------------------------

fn dgs_error(e: &DgsError) -> Response {
    Response::Error {
        code: ErrorCode::of_dgs(e),
        message: e.to_string(),
    }
}

fn no_such_session(name: &str) -> Response {
    Response::Error {
        code: ErrorCode::NoSuchSession,
        message: format!("no session named {name:?} is hosted"),
    }
}

fn single_target_only(what: &str, n: usize) -> Response {
    Response::Error {
        code: ErrorCode::Unsupported,
        message: format!(
            "{what} needs a single-session route, but this connection is routed to {n} sessions; \
             SESSION_ROUTE to one session first"
        ),
    }
}

/// Converts a run report into its wire answer (full relation rows).
fn answer_of_report(report: &RunReport) -> Answer {
    let rows = (0..report.relation.query_nodes())
        .map(|u| {
            report
                .relation
                .matches_of(QNodeId(u as u16))
                .iter()
                .map(|v| v.0)
                .collect()
        })
        .collect();
    Answer {
        rows,
        is_match: report.is_match,
        algorithm: report.algorithm.to_owned(),
        plan: report.plan.to_string(),
        metrics: WireMetrics::of_run(&report.metrics),
    }
}

/// Resolves a route snapshot, mapping a missing session to its typed
/// error (boxed: the happy path should not pay for the error
/// variant's size).
#[allow(clippy::type_complexity)]
fn resolve(shared: &Shared, route: &Route) -> Result<Vec<(String, Arc<SimEngine>)>, Box<Response>> {
    match shared.sessions.resolve(route) {
        Ok(engines) if engines.is_empty() => Err(Box::new(Response::Error {
            code: ErrorCode::NoSuchSession,
            message: "no sessions are hosted (all were dropped)".into(),
        })),
        Ok(engines) => Ok(engines),
        Err(name) => Err(Box::new(no_such_session(&name))),
    }
}

/// Runs `f` once per routed shard concurrently. A shard error — or a
/// shard *panic*, which must answer a typed error rather than kill
/// the connection — wins over the other shards' answers.
fn fan_out<T, F>(engines: &[(String, Arc<SimEngine>)], f: F) -> Result<Vec<T>, Box<Response>>
where
    T: Send,
    F: Fn(&SimEngine) -> Result<T, DgsError> + Sync,
{
    let joined: Vec<std::thread::Result<Result<T, DgsError>>> = std::thread::scope(|s| {
        let handles: Vec<_> = engines
            .iter()
            .map(|(_, engine)| s.spawn(|| f(engine)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::with_capacity(joined.len());
    for (result, (name, _)) in joined.into_iter().zip(engines) {
        match result {
            Ok(Ok(v)) => out.push(v),
            Ok(Err(e)) => return Err(Box::new(dgs_error(&e))),
            Err(_) => {
                return Err(Box::new(Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("shard query panicked in session {name:?}"),
                }));
            }
        }
    }
    Ok(out)
}

/// Runs one data-selecting query on every routed shard concurrently
/// and merges the relations (see [`crate::session::merge_answers`]).
fn fan_out_query(
    engines: &[(String, Arc<SimEngine>)],
    algo: &Algorithm,
    pattern: &Pattern,
) -> Response {
    match fan_out(engines, |engine| {
        engine
            .query_with(algo, pattern)
            .map(|r| answer_of_report(&r))
    }) {
        Ok(parts) => Response::Answer(merge_answers(&parts)),
        Err(resp) => *resp,
    }
}

/// Runs a batch on every routed shard concurrently and merges
/// item-wise; a shard error on an item wins over other shards'
/// answers for it (partial unions would be silently wrong).
fn fan_out_batch(
    engines: &[(String, Arc<SimEngine>)],
    algo: &Algorithm,
    patterns: &[Pattern],
) -> Response {
    let shard_batches = match fan_out(
        engines,
        |engine| Ok(engine.query_batch_with(algo, patterns)),
    ) {
        Ok(batches) => batches,
        Err(resp) => return *resp,
    };
    let mut total = WireMetrics::default();
    for batch in &shard_batches {
        merge_metrics(&mut total, &WireMetrics::of_run(&batch.total));
    }
    let items = (0..patterns.len())
        .map(|i| {
            let mut parts = Vec::with_capacity(shard_batches.len());
            for batch in &shard_batches {
                match &batch.reports[i] {
                    Ok(report) => parts.push(answer_of_report(report)),
                    Err(e) => return Err((ErrorCode::of_dgs(e), e.to_string())),
                }
            }
            Ok(merge_answers(&parts))
        })
        .collect();
    Response::BatchAnswer { items, total }
}

/// Queues subscription push activity for the event loop: remembers
/// which connections gained frames and wakes the poller.
fn note_sub_dirty(shared: &Shared, dirty: Vec<u64>) {
    if dirty.is_empty() {
        return;
    }
    shared.sub_dirty.lock().extend(dirty);
    shared.wake.wake();
}

/// Runs one request against the routed session(s). `route` is the
/// connection's shared route cell; barrier dispatch in the event loop
/// guarantees `SESSION_ROUTE` never executes concurrently with other
/// requests on the same connection. `conn_id`/`version` identify the
/// connection for subscription ownership and version gating. `trace`
/// collects plan/per-site details for the slow-query log.
fn execute(
    req: &Request,
    shared: &Shared,
    route: &Mutex<Route>,
    conn_id: u64,
    version: u8,
    trace: &mut TraceCapture,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::GraphInfo => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("GRAPH_INFO", engines.len());
            }
            let engine = &engines[0].1;
            let g = engine.graph();
            let frag = engine.fragmentation();
            Response::GraphInfo(GraphInfo {
                nodes: g.node_count() as u64,
                edges: g.edge_count() as u64,
                sites: frag.num_sites() as u16,
                vf: frag.vf() as u64,
                ef: frag.ef() as u64,
                label_bound: g.label_bound() as u64,
                generation: engine.generation(),
            })
        }
        Request::Query {
            pattern,
            algorithm,
            boolean,
        } => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            let algo = algorithm.to_algorithm();
            if engines.len() > 1 {
                // Fan-out runs data-selecting even for Boolean
                // queries: is_match must come from the *merged*
                // relation's totality — OR-ing per-shard flags would
                // claim matches no union supports per query node.
                return match fan_out_query(&engines, &algo, pattern) {
                    Response::Answer(mut answer) => {
                        if *boolean {
                            answer.rows = Vec::new();
                        }
                        Response::Answer(answer)
                    }
                    resp => resp,
                };
            }
            let engine = &engines[0].1;
            trace.generation = engine.generation();
            if *boolean {
                match engine.query_boolean_with(&algo, pattern) {
                    Ok(report) => {
                        trace.session = engines[0].0.clone();
                        trace.algorithm = report.algorithm.to_owned();
                        trace.plan = report.plan.to_string();
                        trace.site_ops = report.metrics.site_ops.clone();
                        trace.site_msgs = report.metrics.site_msgs.clone();
                        Response::Answer(Answer {
                            rows: Vec::new(),
                            is_match: report.is_match,
                            algorithm: report.algorithm.to_owned(),
                            plan: report.plan.to_string(),
                            metrics: WireMetrics::of_run(&report.metrics),
                        })
                    }
                    Err(e) => dgs_error(&e),
                }
            } else {
                match engine.query_with(&algo, pattern) {
                    Ok(report) => {
                        note_trace(trace, &engines[0].0, &report);
                        Response::Answer(answer_of_report(&report))
                    }
                    Err(e) => dgs_error(&e),
                }
            }
        }
        Request::QueryBatch {
            patterns,
            algorithm,
        } => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            let algo = algorithm.to_algorithm();
            if engines.len() > 1 {
                return fan_out_batch(&engines, &algo, patterns);
            }
            let batch = engines[0].1.query_batch_with(&algo, patterns);
            trace.session = engines[0].0.clone();
            trace.generation = engines[0].1.generation();
            trace.site_ops = batch.total.site_ops.clone();
            trace.site_msgs = batch.total.site_msgs.clone();
            let items = batch
                .reports
                .iter()
                .map(|r| match r {
                    Ok(report) => Ok(answer_of_report(report)),
                    Err(e) => Err((ErrorCode::of_dgs(e), e.to_string())),
                })
                .collect();
            Response::BatchAnswer {
                items,
                total: WireMetrics::of_run(&batch.total),
            }
        }
        Request::ApplyDelta {
            insert_edges,
            delete_edges,
        } => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("APPLY_DELTA", engines.len());
            }
            let delta = GraphDelta {
                insert_edges: insert_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
                delete_edges: delete_edges
                    .iter()
                    .map(|&(u, v)| (NodeId(u), NodeId(v)))
                    .collect(),
            };
            // No lock: the engine serializes writers internally and
            // queries keep running against the published snapshot
            // while the next generation is built.
            match engines[0].1.apply_delta(&delta) {
                Ok(report) => {
                    shared.obs.deltas_applied.inc();
                    shared
                        .obs
                        .delta_maintained
                        .add(report.maintained_entries as u64);
                    shared
                        .obs
                        .delta_invalidated
                        .add(report.invalidated_entries as u64);
                    trace.session = engines[0].0.clone();
                    trace.generation = report.generation;
                    // Feed the digest to live subscriptions before
                    // answering: the diff frames queue behind this
                    // response in the connection's write order.
                    let dirty = shared.subs.on_delta(&engines[0].0, &engines[0].1, &report);
                    note_sub_dirty(shared, dirty);
                    Response::DeltaApplied(DeltaSummary {
                        inserted: report.inserted as u64,
                        deleted: report.deleted as u64,
                        ignored: report.ignored as u64,
                        crossing_inserted: report.crossing_inserted as u64,
                        crossing_deleted: report.crossing_deleted as u64,
                        virtuals_created: report.virtuals_created as u64,
                        virtuals_retired: report.virtuals_retired as u64,
                        maintained_entries: report.maintained_entries as u64,
                        invalidated_entries: report.invalidated_entries as u64,
                        revoked_pairs: report.revoked_pairs,
                        generation: report.generation,
                        resurrected_pairs: report.resurrected_pairs,
                    })
                }
                Err(e) => dgs_error(&e),
            }
        }
        Request::CacheStats => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("CACHE_STATS", engines.len());
            }
            Response::CacheStats(engines[0].1.cache_stats().map(|s| WireCacheStats {
                entries: s.entries as u64,
                capacity: s.capacity as u64,
                hits: s.hits,
                misses: s.misses,
                evictions: s.evictions,
                generation: s.generation,
            }))
        }
        Request::CompressionInfo => {
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("COMPRESSION_INFO", engines.len());
            }
            let engine = &engines[0].1;
            let active = engine.compression_active();
            Response::CompressionInfo(engine.compression_note().map(|n| WireCompression {
                classes: n.classes as u64,
                ratio: n.ratio,
                method: n.method.to_owned(),
                active,
            }))
        }
        Request::LoadGraph { graph, options } => {
            let name = match &*route.lock() {
                Route::Single(name) => name.clone(),
                // The error names the *route's* target count, not the
                // server-wide session count — Route::All resolves at
                // request time, so only it consults the registry.
                Route::Many(names) => return single_target_only("LOAD_GRAPH", names.len()),
                Route::All => return single_target_only("LOAD_GRAPH", shared.sessions.len()),
            };
            // Build off-path; only the map swap is synchronized.
            match build_session(graph, options) {
                Ok(engine) => {
                    let (nodes, edges) = (graph.node_count() as u64, graph.edge_count() as u64);
                    shared.sessions.insert(&name, engine);
                    // A replaced session's subscriptions refer to the
                    // old engine's state: terminate them with a typed
                    // event rather than stream diffs against a graph
                    // the subscriber never saw.
                    note_sub_dirty(shared, shared.subs.drop_session(&name));
                    Response::Loaded {
                        nodes,
                        edges,
                        sites: options.sites,
                    }
                }
                Err(message) => Response::Error {
                    code: ErrorCode::Malformed,
                    message,
                },
            }
        }
        Request::SessionCreate {
            name,
            graph,
            options,
        } => match build_session(graph, options) {
            Ok(engine) => {
                let engine = shared.sessions.insert(name, engine);
                note_sub_dirty(shared, shared.subs.drop_session(name));
                Response::SessionCreated(session_info(name, &engine))
            }
            Err(message) => Response::Error {
                code: ErrorCode::Malformed,
                message,
            },
        },
        Request::SessionList => Response::Sessions(shared.sessions.infos()),
        Request::SessionDrop { name } => {
            if shared.sessions.remove(name) {
                // Every subscription on the dropped session ends with
                // a typed SUB_EVENT(session_dropped) push.
                note_sub_dirty(shared, shared.subs.drop_session(name));
                Response::SessionDropped
            } else {
                no_such_session(name)
            }
        }
        Request::SessionRoute { sessions } => {
            let new_route = Route::of_names(sessions.clone());
            // Named routes are validated now (typed error instead of a
            // silently broken connection); Route::All re-resolves on
            // every request by design.
            match shared.sessions.resolve(&new_route) {
                Ok(engines) => {
                    let n = engines.len() as u64;
                    *route.lock() = new_route;
                    Response::SessionRouted { sessions: n }
                }
                Err(name) => no_such_session(&name),
            }
        }
        Request::Subscribe { pattern, algorithm } => {
            if version < 4 {
                return Response::Error {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "SUBSCRIBE needs wire v4, but this connection negotiated v{version}"
                    ),
                };
            }
            let engines = match resolve(shared, &route.lock().clone()) {
                Ok(e) => e,
                Err(resp) => return *resp,
            };
            if engines.len() > 1 {
                return single_target_only("SUBSCRIBE", engines.len());
            }
            let (name, engine) = &engines[0];
            match shared
                .subs
                .subscribe(conn_id, name, engine, pattern, *algorithm)
            {
                Ok((sub_id, generation, rows)) => Response::Subscribed {
                    sub_id,
                    generation,
                    rows,
                },
                Err(e) => dgs_error(&e),
            }
        }
        Request::Unsubscribe { sub_id } => {
            if shared.subs.unsubscribe(conn_id, *sub_id) {
                Response::Unsubscribed
            } else {
                Response::Error {
                    code: ErrorCode::NoSuchSubscription,
                    message: format!("this connection holds no subscription with id {sub_id}"),
                }
            }
        }
        Request::Metrics => {
            if version < 4 {
                return Response::Error {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "METRICS needs wire v4, but this connection negotiated v{version}"
                    ),
                };
            }
            refresh_gauges(shared);
            Response::Metrics(shared.registry.snapshot())
        }
        Request::Trace => {
            if version < 4 {
                return Response::Error {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "TRACE needs wire v4, but this connection negotiated v{version}"
                    ),
                };
            }
            // Newest first: the request someone is chasing is almost
            // always the latest one.
            Response::Trace(shared.slow_log.lock().iter().rev().cloned().collect())
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

/// Builds a fresh session per `LOAD_GRAPH` / `SESSION_CREATE` options
/// (off any lock — only the registry swap is synchronized).
pub(crate) fn build_session(graph: &Graph, options: &SessionOptions) -> Result<SimEngine, String> {
    use crate::proto::WirePartitioner;
    let k = usize::from(options.sites);
    if k == 0 {
        return Err("sites must be >= 1".into());
    }
    if graph.node_count() == 0 {
        return Err("graph has no nodes".into());
    }
    let assignment = match options.partitioner {
        WirePartitioner::Hash => hash_partition(graph.node_count(), k, options.seed),
        WirePartitioner::Bfs => bfs_partition(graph, k, options.seed),
        WirePartitioner::Ldg => ldg_partition(graph, k, 0.1, options.seed),
        WirePartitioner::Tree => tree_partition(graph, k),
    };
    let frag = Arc::new(Fragmentation::build(graph, &assignment, k));
    let mut builder =
        SimEngine::builder(graph, frag).cache_capacity(options.cache_capacity as usize);
    if let Some(method) = options.compression {
        builder = builder
            .compress(method)
            .compression_threshold(options.compression_threshold);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::generate::social::fig1;

    fn shard_engines(n: usize) -> Vec<(String, Arc<SimEngine>)> {
        (0..n)
            .map(|i| {
                let w = fig1();
                let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
                (
                    format!("shard{i}"),
                    Arc::new(SimEngine::builder(&w.graph, frag).build()),
                )
            })
            .collect()
    }

    #[test]
    fn fan_out_answers_a_typed_error_when_a_shard_panics() {
        let engines = shard_engines(3);
        let mut calls = 0usize;
        let calls_ptr = std::sync::atomic::AtomicUsize::new(0);
        let result: Result<Vec<u32>, Box<Response>> = fan_out(&engines, |_| {
            if calls_ptr.fetch_add(1, Ordering::SeqCst) == 1 {
                panic!("injected shard failure");
            }
            Ok(7)
        });
        calls += calls_ptr.load(Ordering::SeqCst);
        assert!(calls >= 2);
        match result {
            Err(resp) => match *resp {
                Response::Error { code, message } => {
                    assert_eq!(code, ErrorCode::Internal);
                    assert!(message.contains("panicked"), "{message}");
                    assert!(message.contains("shard"), "names the session: {message}");
                }
                other => panic!("expected Response::Error, got {other:?}"),
            },
            Ok(_) => panic!("a panicking shard must not produce an answer"),
        }
    }

    #[test]
    fn fan_out_typed_dgs_errors_win_over_panics_only_when_first() {
        let engines = shard_engines(2);
        let result: Result<Vec<u32>, Box<Response>> = fan_out(&engines, |_| {
            Err(DgsError::Unsupported {
                algorithm: "injected",
                reason: "test".into(),
            })
        });
        match result {
            Err(resp) => match *resp {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
                other => panic!("expected Response::Error, got {other:?}"),
            },
            Ok(_) => panic!("shard errors must propagate"),
        }
    }

    #[test]
    fn fan_out_collects_per_shard_values_in_engine_order() {
        let engines = shard_engines(3);
        let idx = std::sync::atomic::AtomicUsize::new(0);
        let got: Vec<usize> =
            fan_out(&engines, |_| Ok(idx.fetch_add(1, Ordering::SeqCst))).unwrap();
        assert_eq!(got.len(), 3);
    }
}
