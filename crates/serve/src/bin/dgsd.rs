//! `dgsd` — the dgs serving daemon.
//!
//! ```text
//! dgsd --listen ADDR --graph FILE [--sites K] [--partition hash|bfs|ldg|tree]
//!      [--seed S] [--cache N] [--compress simeq|bisim] [--compress-threshold X]
//!      [--max-conns N] [--sessions NAME=FILE[,NAME=FILE...]] [--grace MS]
//!      [--workers N]
//! ```
//!
//! The daemon runs one event thread multiplexing every connection
//! over nonblocking sockets plus `--workers` request-execution
//! threads (default 0 = derived from the host's parallelism), so
//! `--max-conns` bounds admission, not the thread count.
//!
//! **Worker mode** (`dgsd --worker [--listen HOST:PORT]`) turns the
//! process into a socket-executor worker instead of a serving daemon:
//! it hosts one or more sites of a remote coordinator's runs
//! (`dgsq query --executor socket --attach ...`, or
//! `SimEngineBuilder::build_socket` attaching to its address). The
//! worker announces `listening on <addr>` on stdout once bound and
//! exits when a coordinator sends a shutdown. See the "Site frames"
//! section of `docs/PROTOCOL.md`.
//!
//! `ADDR` is `tcp:host:port`, bare `host:port`, or `unix:/path.sock`.
//! The graph file may be text or binary (`dgsq convert`); binary is
//! the format to cold-load big RMAT graphs from. The session is built
//! once at startup exactly like `SimEngine::builder` in-process —
//! structural facts, optional compression leg, pattern-result cache —
//! and then served to every connection as the `"default"` session.
//! `--sessions` hosts additional named sessions (each built from its
//! own graph file with the same sites/partition/cache options);
//! clients pick one with `SESSION_ROUTE` (`dgsq --session NAME`,
//! `dgsload --session NAME`) or create/drop more at runtime. Stop the
//! daemon with `dgsq shutdown --remote ADDR` — in-flight requests
//! drain for up to `--grace` milliseconds (default 5000) before
//! stragglers are cut — or SIGKILL; a stale Unix socket file is
//! reclaimed on the next start.

use dgs_core::{CompressionMethod, SimEngine};
use dgs_graph::io as gio;
use dgs_net::LogLevel;
use dgs_partition::{bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation};
use dgs_serve::{ServeAddr, Server, ServerConfig};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::exit;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("dgsd: {msg}");
    exit(2);
}

const ALLOWED: &[&str] = &[
    "listen",
    "graph",
    "sites",
    "partition",
    "seed",
    "cache",
    "compress",
    "compress-threshold",
    "max-conns",
    "sessions",
    "grace",
    "workers",
    "metrics",
    "metrics-addr",
    "slow-ms",
    "log-level",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  dgsd --listen tcp:HOST:PORT|unix:/PATH.sock --graph FILE\n       \
         [--sites K] [--partition hash|bfs|ldg|tree] [--seed S]\n       \
         [--cache N] [--compress simeq|bisim] [--compress-threshold X] [--max-conns N]\n       \
         [--sessions NAME=FILE[,NAME=FILE...]] [--grace MS] [--workers N]\n       \
         [--metrics on|off] [--metrics-addr tcp:HOST:PORT] [--slow-ms MS]\n       \
         [--log-level error|warn|info|debug]\n  \
         dgsd --worker [--listen HOST:PORT]   (socket-executor worker process)"
    );
    exit(2);
}

/// `dgsd --worker`: host sites of a remote coordinator's runs (the
/// bind/announce/serve loop is shared with `dgsq worker`).
fn run_worker(flags: &HashMap<String, String>) -> ! {
    let listen = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    if let Err(e) = dgs_core::remote::run_worker_cli("dgsd-worker", listen) {
        fail(&format!("worker failed: {e}"));
    }
    println!("dgsd-worker: shut down cleanly");
    exit(0);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| fail(&format!("expected a --flag, got '{}'", args[i])));
        if !ALLOWED.contains(&key) {
            fail(&format!(
                "unknown flag --{key} (allowed: {})",
                ALLOWED
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("--{key} requires a value")));
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    flags
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--{key}: cannot parse '{v}'"))),
    }
}

/// Loads a graph file and builds one serving session from the shared
/// CLI options (partitioner, cache, compression).
fn build_engine(
    graph_path: &str,
    flags: &HashMap<String, String>,
) -> (dgs_graph::Graph, SimEngine) {
    let f =
        File::open(graph_path).unwrap_or_else(|e| fail(&format!("cannot open {graph_path}: {e}")));
    let g = gio::read_graph_auto(BufReader::new(f))
        .unwrap_or_else(|e| fail(&format!("{graph_path}: {e}")));

    let k: usize = num(flags, "sites", 4);
    let seed: u64 = num(flags, "seed", 1);
    if k == 0 {
        fail("--sites must be >= 1");
    }
    let assignment = match flags.get("partition").map(String::as_str).unwrap_or("hash") {
        "hash" => hash_partition(g.node_count(), k, seed),
        "bfs" => bfs_partition(&g, k, seed),
        "ldg" => ldg_partition(&g, k, 0.1, seed),
        "tree" => tree_partition(&g, k),
        other => fail(&format!("unknown partitioner '{other}'")),
    };
    let frag = Arc::new(Fragmentation::build(&g, &assignment, k));
    let mut builder = SimEngine::builder(&g, frag).cache_capacity(num(flags, "cache", 128));
    if let Some(method) = flags.get("compress") {
        builder = builder.compress(match method.as_str() {
            "simeq" => {
                if g.node_count() > 20_000 {
                    fail("simeq compression holds an O(|V|^2) table; use --compress bisim for graphs this large");
                }
                CompressionMethod::SimEq
            }
            "bisim" => CompressionMethod::Bisim,
            other => fail(&format!("unknown compression method '{other}'")),
        });
        builder = builder.compression_threshold(num(flags, "compress-threshold", 0.5));
    }
    let engine = builder.build();
    (g, engine)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        usage();
    }
    if let Some(pos) = args.iter().position(|a| a == "--worker") {
        args.remove(pos);
        let flags = parse_flags(&args);
        for key in flags.keys() {
            if key != "listen" {
                fail(&format!("--{key} does not apply in --worker mode"));
            }
        }
        run_worker(&flags);
    }
    let flags = parse_flags(&args);
    let listen = flags
        .get("listen")
        .unwrap_or_else(|| fail("--listen required"));
    let addr = ServeAddr::parse(listen)
        .unwrap_or_else(|| fail(&format!("unparseable --listen address '{listen}'")));
    let graph_path = flags
        .get("graph")
        .unwrap_or_else(|| fail("--graph required"));

    let (g, engine) = build_engine(graph_path, &flags);
    let k: usize = num(&flags, "sites", 4);

    let metrics_enabled = match flags.get("metrics").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => fail(&format!("--metrics takes on|off, got '{other}'")),
    };
    let metrics_addr = flags.get("metrics-addr").map(|s| {
        ServeAddr::parse(s)
            .unwrap_or_else(|| fail(&format!("unparseable --metrics-addr address '{s}'")))
    });
    let log_level = match flags.get("log-level") {
        None => LogLevel::Warn,
        Some(s) => LogLevel::parse(s).unwrap_or_else(|| {
            fail(&format!(
                "--log-level takes error|warn|info|debug, got '{s}'"
            ))
        }),
    };
    let cfg = ServerConfig {
        max_connections: num(&flags, "max-conns", 64),
        drain_grace: std::time::Duration::from_millis(num(&flags, "grace", 5000)),
        worker_threads: num(&flags, "workers", 0),
        metrics_enabled,
        metrics_addr,
        // `--slow-ms 0` traces every request; omitting the flag
        // leaves capture off.
        slow_ms: flags.get("slow-ms").map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("--slow-ms: cannot parse '{v}'")))
        }),
        log_level,
        ..ServerConfig::default()
    };
    let server = Server::bind(&addr, engine, cfg)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));

    // Additional named sessions, each from its own graph file but
    // sharing the partition/cache/compression options.
    if let Some(spec) = flags.get("sessions") {
        let sessions = server.sessions();
        for entry in spec.split(',') {
            let (name, path) = entry
                .split_once('=')
                .unwrap_or_else(|| fail(&format!("--sessions: '{entry}' is not NAME=FILE")));
            if name.is_empty() || name == "default" {
                fail(&format!(
                    "--sessions: '{name}' is not a usable session name"
                ));
            }
            let (sg, sengine) = build_engine(path, &flags);
            sessions.insert(name, sengine);
            println!(
                "dgsd: session '{name}' <- {path} (|V| = {}, |E| = {})",
                sg.node_count(),
                sg.edge_count()
            );
        }
    }

    println!(
        "dgsd: serving {graph_path} (|V| = {}, |E| = {}, {k} sites) on {}",
        g.node_count(),
        g.edge_count(),
        server.local_addr()
    );
    if let Some(maddr) = server.metrics_addr() {
        println!("dgsd: metrics exposition on {maddr}");
    }
    if let Err(e) = server.run() {
        fail(&format!("server failed: {e}"));
    }
    println!("dgsd: shut down cleanly");
}
