//! `dgsload` — open- and closed-loop traffic generator for `dgsd`.
//!
//! ```text
//! dgsload --addr ADDR [--clients N] [--requests R] [--mode closed|open]
//!         [--rate RPS] [--batch B] [--deltas EVERY] [--pattern FILE[,FILE...]]
//!         [--seed S]
//! ```
//!
//! Closed loop (default): each client keeps one request outstanding —
//! the classic saturation benchmark. Open loop: requests launch on a
//! fixed fleet-wide schedule of `--rate` per second, so server
//! slowdowns surface as queueing delay in the tail percentiles
//! instead of being absorbed by the clients.
//!
//! The report prints completed/errored counts, throughput, and
//! p50/p95/p99/max latency from the merged per-client
//! `LatencyHistogram`s. Exit status is nonzero when any request
//! errored, which is what the CI smoke job asserts on.
//!
//! `--session NAME` routes every client at a named server session,
//! and `--pipeline D` keeps `D` requests in flight per connection
//! (wire v3). `--ping 1` swaps queries for `PING`s — the pure
//! protocol microbenchmark the CI pipelining gate measures. `--json PATH` additionally writes the run as a
//! versioned `ServingSnapshot` (the `BENCH_serving.json` artifact),
//! and `--baseline PATH` compares against a committed snapshot,
//! exiting nonzero when throughput or a latency quantile regressed
//! more than 20% — that is the CI perf gate.
//!
//! **Sweep mode** (`--sweep N1,N2,...`) replaces the load run with
//! the open-loop connection-count sweep: per step it holds that many
//! connections open, drives a constant-rate `PING` schedule through
//! at most `--senders` of them, and reports throughput + p99. The
//! snapshot is a `ConnSweepSnapshot` (the `BENCH_connsweep.json`
//! artifact); `--json`/`--baseline` gate it the same way.
//!
//! **Subscribe mode** (`--subscribe 1`) runs the live-subscription
//! churn experiment instead: `--sessions` sessions are created, each
//! with `--subscribers` subscribers holding open `MATCH_DIFF` streams
//! (wire v4), and a writer storms the first session with `--batches`
//! delta batches of `--ops` edge ops. Each subscriber reconstructs
//! the match set from its diffs and checks it against a final
//! re-query, so the run is self-verifying; the report is diff count
//! plus delivery-latency percentiles, snapshotted as a
//! `SubscribeSnapshot` (the `BENCH_subscribe.json` artifact) and
//! gated by `--json`/`--baseline` the same way.

use dgs_graph::io as gio;
use dgs_net::{ConnSweepSnapshot, ObsSnapshot, ServingSnapshot, SubscribeSnapshot};
use dgs_serve::{
    run_conn_sweep, run_load, run_subscribe, ConnSweepConfig, LoadConfig, LoadMode, ServeAddr,
    SubscribeConfig,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("dgsload: {msg}");
    exit(2);
}

const ALLOWED: &[&str] = &[
    "addr",
    "clients",
    "requests",
    "mode",
    "rate",
    "batch",
    "deltas",
    "pattern",
    "seed",
    "session",
    "json",
    "baseline",
    "pipeline",
    "sweep",
    "senders",
    "ping",
    "subscribe",
    "sessions",
    "subscribers",
    "nodes",
    "batches",
    "ops",
    "obs-on",
    "obs-off",
    "max-overhead",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  dgsload --addr tcp:HOST:PORT|unix:/PATH.sock [--clients N] [--requests R]\n          \
         [--mode closed|open] [--rate RPS] [--batch B] [--deltas EVERY]\n          \
         [--pattern FILE[,FILE...]] [--seed S] [--session NAME] [--pipeline D]\n          \
         [--ping 1] [--json SNAPSHOT.json] [--baseline SNAPSHOT.json]\n  \
         dgsload --addr ADDR --sweep N1,N2,... [--rate RPS] [--requests R] [--senders N]\n          \
         [--json SNAPSHOT.json] [--baseline SNAPSHOT.json]   (connection-count sweep)\n  \
         dgsload --addr ADDR --subscribe 1 [--sessions N] [--subscribers N] [--nodes N]\n          \
         [--batches N] [--ops N] [--seed S] [--json SNAPSHOT.json] [--baseline SNAPSHOT.json]\n          \
         (live-subscription churn: writer storms one session, subscribers verify the diff stream)\n  \
         dgsload --obs-on ON.json --obs-off OFF.json [--json BENCH_obs.json] [--max-overhead PCT]\n          \
         (gate the instrumentation overhead between two quiet-ping serving snapshots)"
    );
    exit(2);
}

/// `dgsload --obs-on/--obs-off`: compare two quiet-ping serving
/// snapshots — one taken against a daemon with metrics on, one with
/// `--metrics off` — and gate the instrumentation overhead (the
/// `BENCH_obs.json` artifact).
fn run_obs_mode(flags: &HashMap<String, String>) -> ! {
    let read = |key: &str| {
        let path = flags
            .get(key)
            .unwrap_or_else(|| fail(&format!("--{key} SNAPSHOT.json required in obs mode")));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        ServingSnapshot::parse_json(&text)
            .unwrap_or_else(|| fail(&format!("{path}: not a serving snapshot this build reads")))
    };
    let on = read("obs-on");
    let off = read("obs-off");
    let snapshot = ObsSnapshot::of_runs(&on, &off);
    println!(
        "dgsload: instrumentation overhead — p50 {:.1} us (metrics on) vs {:.1} us (off): {:+.2}%",
        snapshot.p50_on_us, snapshot.p50_off_us, snapshot.overhead_pct
    );
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  snapshot written to {path}");
    }
    let max_pct: f64 = num(flags, "max-overhead", 10.0);
    let verdicts = snapshot.gate(max_pct, 25.0);
    if verdicts.is_empty() {
        println!("  within the {max_pct:.0}% overhead gate");
        exit(0);
    }
    for v in &verdicts {
        eprintln!("dgsload: OVERHEAD: {v}");
    }
    exit(1);
}

/// `dgsload --subscribe`: the live-subscription churn run, with its
/// own snapshot artifact and regression gate.
fn run_subscribe_mode(flags: &HashMap<String, String>, addr: ServeAddr) -> ! {
    let cfg = SubscribeConfig {
        addr,
        sessions: num(flags, "sessions", 2),
        subscribers: num(flags, "subscribers", 2),
        nodes: num(flags, "nodes", 600),
        batches: num(flags, "batches", 40),
        ops_per_batch: num(flags, "ops", 20),
        seed: num(flags, "seed", 7),
    };
    if cfg.sessions == 0 || cfg.subscribers == 0 || cfg.batches == 0 {
        fail("--sessions, --subscribers and --batches must be >= 1");
    }
    println!(
        "dgsload: subscription churn — {} sessions x {} subscribers, {} batches x {} ops \
         storming churn-0",
        cfg.sessions, cfg.subscribers, cfg.batches, cfg.ops_per_batch
    );
    let report = run_subscribe(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let h = &report.histogram;
    println!(
        "  {} diffs delivered over {} batches in {:.2} s  ({} errors)",
        report.diffs,
        report.batches,
        report.elapsed.as_secs_f64(),
        report.errors
    );
    println!(
        "  diff latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        ms(h.p50()),
        ms(h.p95()),
        ms(h.p99()),
        ms(h.max())
    );
    let snapshot = SubscribeSnapshot::of_run(h, report.diffs, report.batches, report.errors);
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  snapshot written to {path}");
    }
    let mut regressed = false;
    if let Some(path) = flags.get("baseline") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}")));
        let baseline = SubscribeSnapshot::parse_json(&text).unwrap_or_else(|| {
            fail(&format!(
                "{path}: not a subscription snapshot this build reads"
            ))
        });
        let verdicts = snapshot.regressions(&baseline, 0.25, 2000.0);
        if verdicts.is_empty() {
            println!("  baseline {path}: within tolerance");
        } else {
            for v in &verdicts {
                eprintln!("dgsload: REGRESSION vs {path}: {v}");
            }
            regressed = true;
        }
    }
    if report.errors > 0 {
        eprintln!("dgsload: {} subscription errors", report.errors);
        exit(1);
    }
    exit(i32::from(regressed));
}

/// `dgsload --sweep`: the connection-count sweep, with its own
/// snapshot artifact and regression gate.
fn run_sweep_mode(flags: &HashMap<String, String>, addr: ServeAddr, spec: &str) -> ! {
    let steps: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("--sweep: '{s}' is not a connection count")))
        })
        .collect();
    if steps.is_empty() || steps.contains(&0) {
        fail("--sweep needs a comma-separated list of counts >= 1");
    }
    let cfg = ConnSweepConfig {
        addr,
        steps,
        rate: num(flags, "rate", 2000.0),
        requests_per_step: num(flags, "requests", 4000),
        active_senders: num(flags, "senders", 64),
    };
    if cfg.rate <= 0.0 {
        fail("--rate must be positive");
    }
    println!(
        "dgsload: connection sweep over {:?} ({:.0} req/s open loop, {} requests/step, <= {} senders)",
        cfg.steps, cfg.rate, cfg.requests_per_step, cfg.active_senders
    );
    let snapshot = run_conn_sweep(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let mut errored = false;
    for s in &snapshot.steps {
        println!(
            "  {:>6} conns: {:>8.1} req/s  p99 {:>9.1} us  ({} completed, {} errors)",
            s.connections, s.throughput, s.p99_us, s.completed, s.errors
        );
        errored |= s.errors > 0;
    }
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  snapshot written to {path}");
    }
    let mut regressed = false;
    if let Some(path) = flags.get("baseline") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}")));
        let baseline = ConnSweepSnapshot::parse_json(&text).unwrap_or_else(|| {
            fail(&format!(
                "{path}: not a conn-sweep snapshot this build reads"
            ))
        });
        let verdicts = snapshot.regressions(&baseline, 0.25, 2000.0);
        if verdicts.is_empty() {
            println!("  baseline {path}: within tolerance");
        } else {
            for v in &verdicts {
                eprintln!("dgsload: REGRESSION vs {path}: {v}");
            }
            regressed = true;
        }
    }
    if errored {
        eprintln!("dgsload: sweep steps reported errors");
        exit(1);
    }
    exit(i32::from(regressed));
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| fail(&format!("expected a --flag, got '{}'", args[i])));
        if !ALLOWED.contains(&key) {
            fail(&format!(
                "unknown flag --{key} (allowed: {})",
                ALLOWED
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("--{key} requires a value")));
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    flags
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--{key}: cannot parse '{v}'"))),
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1.0e6
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        usage();
    }
    let flags = parse_flags(&args);
    // Obs mode compares two already-written snapshots; no daemon
    // involved, so it runs before --addr is required.
    if flags.contains_key("obs-on") || flags.contains_key("obs-off") {
        run_obs_mode(&flags);
    }
    let addr_s = flags.get("addr").unwrap_or_else(|| fail("--addr required"));
    let addr =
        ServeAddr::parse(addr_s).unwrap_or_else(|| fail(&format!("unparseable --addr '{addr_s}'")));
    if let Some(spec) = flags.get("sweep") {
        run_sweep_mode(&flags, addr, spec);
    }
    if num::<usize>(&flags, "subscribe", 0) != 0 {
        run_subscribe_mode(&flags, addr);
    }
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("closed") {
        "closed" => LoadMode::Closed,
        "open" => {
            let rate: f64 = num(&flags, "rate", 100.0);
            if rate <= 0.0 {
                fail("--rate must be positive in open mode");
            }
            LoadMode::Open { rate }
        }
        other => fail(&format!("unknown mode '{other}'")),
    };
    let patterns = match flags.get("pattern") {
        None => Vec::new(),
        Some(arg) => arg
            .split(',')
            .map(|path| {
                let f =
                    File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
                gio::read_pattern_auto(BufReader::new(f))
                    .unwrap_or_else(|e| fail(&format!("{path}: {e}")))
            })
            .collect(),
    };

    let cfg = LoadConfig {
        addr,
        clients: num(&flags, "clients", 8),
        requests_per_client: num(&flags, "requests", 50),
        mode,
        delta_every: num(&flags, "deltas", 0),
        batch_size: num(&flags, "batch", 1),
        seed: num(&flags, "seed", 1),
        patterns,
        session: flags.get("session").cloned(),
        pipeline: num(&flags, "pipeline", 1),
        pings: num::<usize>(&flags, "ping", 0) != 0,
    };
    if cfg.clients == 0 || cfg.requests_per_client == 0 {
        fail("--clients and --requests must be >= 1");
    }
    if cfg.pipeline == 0 {
        fail("--pipeline must be >= 1");
    }
    println!(
        "dgsload: {} clients x {} requests, {} mode{}{}{}{} -> {}",
        cfg.clients,
        cfg.requests_per_client,
        match cfg.mode {
            LoadMode::Closed => "closed-loop".to_owned(),
            LoadMode::Open { rate } => format!("open-loop ({rate:.0} req/s)"),
        },
        if cfg.delta_every > 0 {
            format!(", delta every {} requests", cfg.delta_every)
        } else {
            String::new()
        },
        match &cfg.session {
            Some(name) => format!(", session '{name}'"),
            None => String::new(),
        },
        if cfg.pipeline > 1 {
            format!(", pipeline depth {}", cfg.pipeline)
        } else {
            String::new()
        },
        if cfg.pings { ", pings" } else { "" },
        addr_s
    );

    let report = run_load(&cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let h = &report.histogram;
    println!(
        "  completed {} / errored {}  in {:.2} s  ({:.1} req/s)",
        report.completed,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput()
    );
    println!(
        "  latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms  (mean {:.3} ms)",
        ms(h.p50()),
        ms(h.p95()),
        ms(h.p99()),
        ms(h.max()),
        h.mean() / 1.0e6
    );
    println!("  cache hits: {}", report.cache_hits);
    if report.failed_connects > 0 {
        println!("  failed connects: {}", report.failed_connects);
    }

    let snapshot = ServingSnapshot::of_run(
        h,
        report.completed,
        report.errors,
        report.elapsed.as_secs_f64(),
    );
    if let Some(path) = flags.get("json") {
        std::fs::write(path, snapshot.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("  snapshot written to {path}");
    }
    let mut regressed = false;
    if let Some(path) = flags.get("baseline") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}")));
        let baseline = ServingSnapshot::parse_json(&text)
            .unwrap_or_else(|| fail(&format!("{path}: not a serving snapshot this build reads")));
        let verdicts = snapshot.regressions(&baseline, 0.20, 500.0);
        if verdicts.is_empty() {
            println!("  baseline {path}: within tolerance");
        } else {
            for v in &verdicts {
                eprintln!("dgsload: REGRESSION vs {path}: {v}");
            }
            regressed = true;
        }
    }
    if report.errors > 0 {
        eprintln!("dgsload: {} requests errored", report.errors);
        exit(1);
    }
    if regressed {
        exit(1);
    }
}
