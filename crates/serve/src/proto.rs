//! The message layer: typed requests and responses over
//! [`crate::wire`] frames.
//!
//! The protocol carries the whole `SimEngine` session surface:
//! `QUERY`/`QUERY_BATCH` (answers ship the match relation, the plan
//! explanation and the run metrics), `APPLY_DELTA`, `CACHE_STATS`,
//! `COMPRESSION_INFO`, `GRAPH_INFO`, `LOAD_GRAPH` (session
//! replacement), the v2 `SESSION_*` frames (named-session hosting,
//! per-connection routing and query fan-out) and the `SHUTDOWN`
//! admin frame. Graphs and patterns
//! reuse the binary encoding of `dgs_graph::io` verbatim, so a file
//! written by `dgsq convert` is byte-for-byte what `LOAD_GRAPH`
//! ships.
//!
//! Every decoder is total: corrupt payloads yield
//! [`ServeError::Corrupt`], never a panic — see the roundtrip and
//! corruption proptests in `tests/serve.rs`.

use crate::error::{ErrorCode, ServeError};
use crate::wire::{put_bytes, put_f64, put_str, put_u16, put_u8, put_varint, Reader};
use dgs_core::{Algorithm, CompressionMethod};
use dgs_graph::{io as gio, Graph, NodeId, Pattern};
use dgs_net::{HistogramSummary, MetricsSnapshot, RunMetrics};
use dgs_sim::MatchRelation;

/// Magic the handshake frames carry ("DGSW": dgs wire).
pub const WIRE_MAGIC: [u8; 4] = *b"DGSW";
/// The highest protocol version this build speaks. v2 added the
/// `SESSION_*` frames (multi-session hosting + routing); v3 prefixes
/// every post-handshake payload with a varint **request id** echoed
/// in the matching response, so one connection can pipeline requests
/// and take responses out of order. v1/v2 peers negotiate down and
/// keep the id-less one-at-a-time framing. v4 adds **live match
/// subscriptions**: `SUBSCRIBE`/`UNSUBSCRIBE` requests plus the
/// server-pushed `MATCH_DIFF`/`SUB_EVENT` frames, which travel under
/// the reserved request id 0 and interleave with pipelined responses
/// on the same connection; `DELTA_APPLIED` grows a trailing
/// `resurrected_pairs` counter. v≤3 peers negotiate down: they never
/// see push frames or the trailing counter, and a `SUBSCRIBE` from
/// them is refused with a typed `Unsupported` error.
pub const WIRE_VERSION: u8 = 4;

/// Frame type bytes. Requests are `0x1x`, responses `0x2x`, the error
/// response is `0x3f`; handshake frames are `0x0x`.
pub mod frame {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;

    pub const PING: u8 = 0x10;
    pub const GRAPH_INFO: u8 = 0x11;
    pub const QUERY: u8 = 0x12;
    pub const QUERY_BATCH: u8 = 0x13;
    pub const APPLY_DELTA: u8 = 0x14;
    pub const CACHE_STATS: u8 = 0x15;
    pub const COMPRESSION_INFO: u8 = 0x16;
    pub const LOAD_GRAPH: u8 = 0x17;
    pub const SHUTDOWN: u8 = 0x18;
    pub const SESSION_CREATE: u8 = 0x19;
    pub const SESSION_LIST: u8 = 0x1a;
    pub const SESSION_DROP: u8 = 0x1b;
    pub const SESSION_ROUTE: u8 = 0x1c;
    pub const SUBSCRIBE: u8 = 0x1d;
    pub const UNSUBSCRIBE: u8 = 0x1e;
    pub const METRICS: u8 = 0x1f;

    pub const PONG: u8 = 0x20;
    pub const GRAPH_INFO_R: u8 = 0x21;
    pub const ANSWER: u8 = 0x22;
    pub const BATCH_ANSWER: u8 = 0x23;
    pub const DELTA_APPLIED: u8 = 0x24;
    pub const CACHE_STATS_R: u8 = 0x25;
    pub const COMPRESSION_INFO_R: u8 = 0x26;
    pub const LOADED: u8 = 0x27;
    pub const SHUTTING_DOWN: u8 = 0x28;
    pub const SESSION_CREATED: u8 = 0x29;
    pub const SESSION_LIST_R: u8 = 0x2a;
    pub const SESSION_DROPPED: u8 = 0x2b;
    pub const SESSION_ROUTED: u8 = 0x2c;
    pub const SUBSCRIBED: u8 = 0x2d;
    pub const UNSUBSCRIBED: u8 = 0x2e;
    pub const METRICS_R: u8 = 0x2f;

    /// Server-pushed (v4): a subscription's match-set delta. Travels
    /// under request id 0, never in answer to a request.
    pub const MATCH_DIFF: u8 = 0x30;
    /// Server-pushed (v4): a subscription lifecycle event (overflow,
    /// session dropped, server draining). Travels under request id 0.
    pub const SUB_EVENT: u8 = 0x31;

    /// Request (v4): dump the server's slow-query trace ring.
    pub const TRACE: u8 = 0x32;
    /// Response to [`TRACE`].
    pub const TRACE_R: u8 = 0x33;

    pub const ERROR: u8 = 0x3f;
}

/// The engine selector as it travels on the wire (the names the CLI
/// exposes; `DgpmConfig` details stay server-side defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireAlgorithm {
    Auto = 0,
    Dgpm = 1,
    DgpmNopt = 2,
    Dgpms = 3,
    Dgpmd = 4,
    Dgpmt = 5,
    MatchCentral = 6,
    DisHhk = 7,
    DMes = 8,
}

impl WireAlgorithm {
    /// Parses the CLI spelling (`auto`, `dgpm`, `dgpm-nopt`, ...).
    pub fn parse(s: &str) -> Option<WireAlgorithm> {
        Some(match s {
            "auto" => WireAlgorithm::Auto,
            "dgpm" => WireAlgorithm::Dgpm,
            "dgpm-nopt" => WireAlgorithm::DgpmNopt,
            "dgpms" => WireAlgorithm::Dgpms,
            "dgpmd" => WireAlgorithm::Dgpmd,
            "dgpmt" => WireAlgorithm::Dgpmt,
            "match" => WireAlgorithm::MatchCentral,
            "dishhk" => WireAlgorithm::DisHhk,
            "dmes" => WireAlgorithm::DMes,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Result<WireAlgorithm, ServeError> {
        Ok(match v {
            0 => WireAlgorithm::Auto,
            1 => WireAlgorithm::Dgpm,
            2 => WireAlgorithm::DgpmNopt,
            3 => WireAlgorithm::Dgpms,
            4 => WireAlgorithm::Dgpmd,
            5 => WireAlgorithm::Dgpmt,
            6 => WireAlgorithm::MatchCentral,
            7 => WireAlgorithm::DisHhk,
            8 => WireAlgorithm::DMes,
            other => {
                return Err(ServeError::corrupt(format!(
                    "unknown algorithm byte {other}"
                )));
            }
        })
    }

    /// The engine the server runs for this selector.
    pub fn to_algorithm(self) -> Algorithm {
        match self {
            WireAlgorithm::Auto => Algorithm::Auto,
            WireAlgorithm::Dgpm => Algorithm::dgpm(),
            WireAlgorithm::DgpmNopt => Algorithm::dgpm_nopt(),
            WireAlgorithm::Dgpms => Algorithm::Dgpms,
            WireAlgorithm::Dgpmd => Algorithm::Dgpmd,
            WireAlgorithm::Dgpmt => Algorithm::Dgpmt,
            WireAlgorithm::MatchCentral => Algorithm::MatchCentral,
            WireAlgorithm::DisHhk => Algorithm::DisHhk,
            WireAlgorithm::DMes => Algorithm::DMes,
        }
    }
}

/// Partitioner selector for `LOAD_GRAPH`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WirePartitioner {
    Hash = 0,
    Bfs = 1,
    Ldg = 2,
    Tree = 3,
}

impl WirePartitioner {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<WirePartitioner> {
        Some(match s {
            "hash" => WirePartitioner::Hash,
            "bfs" => WirePartitioner::Bfs,
            "ldg" => WirePartitioner::Ldg,
            "tree" => WirePartitioner::Tree,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Result<WirePartitioner, ServeError> {
        Ok(match v {
            0 => WirePartitioner::Hash,
            1 => WirePartitioner::Bfs,
            2 => WirePartitioner::Ldg,
            3 => WirePartitioner::Tree,
            other => {
                return Err(ServeError::corrupt(format!(
                    "unknown partitioner byte {other}"
                )));
            }
        })
    }
}

/// Session knobs shipped with `LOAD_GRAPH` (mirrors the
/// `SimEngineBuilder` surface the daemon exposes).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionOptions {
    /// Number of sites to fragment over.
    pub sites: u16,
    /// Which partitioner assigns nodes to sites.
    pub partitioner: WirePartitioner,
    /// Partitioner seed.
    pub seed: u64,
    /// Pattern-result cache capacity (`0` disables).
    pub cache_capacity: u32,
    /// Compression method for the session's `Gc` leg, if any.
    pub compression: Option<CompressionMethod>,
    /// Ratio threshold below which `Auto` answers on `Gc`.
    pub compression_threshold: f64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            sites: 4,
            partitioner: WirePartitioner::Hash,
            seed: 1,
            cache_capacity: 128,
            compression: None,
            compression_threshold: 0.5,
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Ask about the loaded graph and fragmentation.
    GraphInfo,
    /// One query against the session.
    Query {
        /// The pattern.
        pattern: Pattern,
        /// Which engine (checked server-side, as in-process).
        algorithm: WireAlgorithm,
        /// Boolean query: only `is_match` comes back, no relation.
        boolean: bool,
    },
    /// A batch of queries, amortizing the query broadcast.
    QueryBatch {
        /// The patterns, answered in input order.
        patterns: Vec<Pattern>,
        /// Which engine.
        algorithm: WireAlgorithm,
    },
    /// Absorb a batch of edge updates into the session.
    ApplyDelta {
        /// Edges to insert.
        insert_edges: Vec<(u32, u32)>,
        /// Edges to delete.
        delete_edges: Vec<(u32, u32)>,
    },
    /// Counters of the pattern-result cache.
    CacheStats,
    /// The session's compressed-leg summary.
    CompressionInfo,
    /// Replace the routed session with a freshly built one (admin).
    LoadGraph {
        /// The new data graph.
        graph: Graph,
        /// Session build options.
        options: SessionOptions,
    },
    /// Stop the daemon (admin).
    Shutdown,
    /// Create (or replace) a named session built from a shipped graph.
    SessionCreate {
        /// The session name (routing key).
        name: String,
        /// The session's data graph.
        graph: Graph,
        /// Session build options.
        options: SessionOptions,
    },
    /// List the hosted sessions.
    SessionList,
    /// Drop a named session.
    SessionDrop {
        /// The session to drop.
        name: String,
    },
    /// Point this connection's subsequent requests at `sessions`:
    /// one name routes to that session; several fan queries out
    /// across them; an **empty** list fans out across every session
    /// the server hosts at query time.
    SessionRoute {
        /// Target sessions (empty = all, resolved per request).
        sessions: Vec<String>,
    },
    /// Register a live match subscription on the routed session
    /// (wire v4; needs a single-session route). The response carries
    /// the initial snapshot; the server then pushes `MATCH_DIFF`
    /// frames as deltas apply.
    Subscribe {
        /// The pattern to watch.
        pattern: Pattern,
        /// Which engine answers the snapshot (and any maintenance
        /// fallback re-query).
        algorithm: WireAlgorithm,
    },
    /// Tear down a subscription this connection registered (wire v4).
    Unsubscribe {
        /// The id `SUBSCRIBED` returned.
        sub_id: u64,
    },
    /// Fetch a point-in-time snapshot of the server's metrics
    /// registry (wire v4).
    Metrics,
    /// Dump the server's slow-query trace ring, newest first
    /// (wire v4).
    Trace,
}

/// Metric counters shipped back with every answer — the wire subset
/// of [`RunMetrics`] (per-site breakdowns stay server-side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    pub data_bytes: u64,
    pub data_messages: u64,
    pub control_bytes: u64,
    pub control_messages: u64,
    pub result_bytes: u64,
    pub result_messages: u64,
    pub total_ops: u64,
    pub virtual_time_ns: u64,
    pub quiescence_rounds: u64,
    pub cache_hits: u64,
}

impl WireMetrics {
    /// The wire subset of a run's metrics.
    pub fn of_run(m: &RunMetrics) -> WireMetrics {
        WireMetrics {
            data_bytes: m.data_bytes,
            data_messages: m.data_messages,
            control_bytes: m.control_bytes,
            control_messages: m.control_messages,
            result_bytes: m.result_bytes,
            result_messages: m.result_messages,
            total_ops: m.total_ops,
            virtual_time_ns: m.virtual_time_ns,
            quiescence_rounds: m.quiescence_rounds,
            cache_hits: m.cache_hits,
        }
    }

    /// Virtual response time in ms (the paper's PT unit).
    pub fn virtual_time_ms(&self) -> f64 {
        self.virtual_time_ns as f64 / 1.0e6
    }

    /// Data shipment in KB (the paper's DS unit).
    pub fn data_kb(&self) -> f64 {
        self.data_bytes as f64 / 1024.0
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for v in [
            self.data_bytes,
            self.data_messages,
            self.control_bytes,
            self.control_messages,
            self.result_bytes,
            self.result_messages,
            self.total_ops,
            self.virtual_time_ns,
            self.quiescence_rounds,
            self.cache_hits,
        ] {
            put_varint(buf, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireMetrics, ServeError> {
        let mut vals = [0u64; 10];
        for v in &mut vals {
            *v = r.varint("metric")?;
        }
        let [data_bytes, data_messages, control_bytes, control_messages, result_bytes, result_messages, total_ops, virtual_time_ns, quiescence_rounds, cache_hits] =
            vals;
        Ok(WireMetrics {
            data_bytes,
            data_messages,
            control_bytes,
            control_messages,
            result_bytes,
            result_messages,
            total_ops,
            virtual_time_ns,
            quiescence_rounds,
            cache_hits,
        })
    }
}

/// One query's answer as it travels on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// Sorted matches per query node (empty for Boolean queries).
    pub rows: Vec<Vec<u32>>,
    /// Whether `G` matches `Q`.
    pub is_match: bool,
    /// Display name of the engine that ran.
    pub algorithm: String,
    /// The rendered plan explanation.
    pub plan: String,
    /// Run metrics.
    pub metrics: WireMetrics,
}

impl Answer {
    /// Rebuilds the match relation (`Q(G)`'s maximum relation).
    pub fn relation(&self) -> MatchRelation {
        MatchRelation::from_lists(
            self.rows
                .iter()
                .map(|row| row.iter().map(|&v| NodeId(v)).collect())
                .collect(),
        )
    }

    /// The paper's data-selecting answer size: 0 when some query node
    /// has no match, the relation size otherwise.
    pub fn answer_pairs(&self) -> usize {
        if self.is_match {
            self.rows.iter().map(Vec::len).sum()
        } else {
            0
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        encode_rows(buf, &self.rows);
        put_u8(buf, u8::from(self.is_match));
        put_str(buf, &self.algorithm);
        put_str(buf, &self.plan);
        self.metrics.encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Answer, ServeError> {
        let rows = decode_rows(r)?;
        let is_match = r.u8("is_match")? != 0;
        let algorithm = r.str_("algorithm")?;
        let plan = r.str_("plan")?;
        let metrics = WireMetrics::decode(r)?;
        Ok(Answer {
            rows,
            is_match,
            algorithm,
            plan,
            metrics,
        })
    }
}

/// The loaded graph/fragmentation summary (`GRAPH_INFO`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphInfo {
    pub nodes: u64,
    pub edges: u64,
    pub sites: u16,
    /// Total fragment nodes `|Vf|` (virtual nodes included).
    pub vf: u64,
    /// Total fragment edges `|Ef|`.
    pub ef: u64,
    /// Exclusive upper bound on label values.
    pub label_bound: u64,
    /// The session's current graph generation.
    pub generation: u64,
}

/// The delta-application summary (`DELTA_APPLIED`), mirroring
/// `dgs_core::DeltaReport`'s counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    pub inserted: u64,
    pub deleted: u64,
    pub ignored: u64,
    pub crossing_inserted: u64,
    pub crossing_deleted: u64,
    pub virtuals_created: u64,
    pub virtuals_retired: u64,
    pub maintained_entries: u64,
    pub invalidated_entries: u64,
    pub revoked_pairs: u64,
    pub generation: u64,
    /// Pairs the insertion-side maintenance revived (v4 extension:
    /// encoded only to v4 peers, decoded from the trailing bytes when
    /// present — a v3 server's 11-counter payload leaves it 0).
    pub resurrected_pairs: u64,
}

/// One subscription's match-set delta as pushed in a `MATCH_DIFF`
/// frame: the pairs that entered and left the match relation at
/// `generation`, in the *subscriber's* pattern numbering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchDiff {
    /// Which subscription this diff belongs to.
    pub sub_id: u64,
    /// The graph generation whose delta produced this diff.
    pub generation: u64,
    /// `(query node, data node)` pairs that entered the match set.
    pub added: Vec<(u16, u32)>,
    /// `(query node, data node)` pairs that left the match set.
    pub removed: Vec<(u16, u32)>,
}

impl MatchDiff {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.sub_id);
        put_varint(buf, self.generation);
        for pairs in [&self.added, &self.removed] {
            put_varint(buf, pairs.len() as u64);
            for &(q, v) in pairs.iter() {
                put_u16(buf, q);
                put_varint(buf, u64::from(v));
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<MatchDiff, ServeError> {
        let sub_id = r.varint("sub id")?;
        let generation = r.varint("generation")?;
        let mut lists = [Vec::new(), Vec::new()];
        for pairs in &mut lists {
            let n = r.count("diff pair count")?;
            pairs.reserve(n);
            for _ in 0..n {
                let q = r.u16("diff query node")?;
                let v = r.varint("diff data node")?;
                if v > u64::from(u32::MAX) {
                    return Err(ServeError::corrupt("diff data node exceeds u32"));
                }
                pairs.push((q, v as u32));
            }
        }
        let [added, removed] = lists;
        Ok(MatchDiff {
            sub_id,
            generation,
            added,
            removed,
        })
    }
}

/// One traced request from the server's slow-query ring (`TRACE_R`):
/// where its wall-clock went (decode+queue wait, execute, encode) and
/// — for query frames — the plan explanation and the per-site
/// op/message breakdown the answer's [`WireMetrics`] discards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTrace {
    /// The server-side connection id the request arrived on.
    pub conn_id: u64,
    /// The pipelined request id (0 on a v1/v2 connection).
    pub request_id: u64,
    /// The request's frame type byte.
    pub ty: u8,
    /// The routed session the request executed against.
    pub session: String,
    /// Nanoseconds from socket read to a worker picking the job up.
    pub queue_ns: u64,
    /// Nanoseconds spent executing (plan + run for queries).
    pub exec_ns: u64,
    /// Nanoseconds spent encoding the response frame.
    pub encode_ns: u64,
    /// Total nanoseconds from socket read to response handoff.
    pub total_ns: u64,
    /// Display name of the engine that ran (queries; empty otherwise).
    pub algorithm: String,
    /// The rendered plan explanation (queries; empty otherwise).
    pub plan: String,
    /// Charged operations per worker site (queries).
    pub site_ops: Vec<u64>,
    /// Messages sent per worker site (queries).
    pub site_msgs: Vec<u64>,
    /// The session's graph generation when the request ran.
    pub generation: u64,
}

impl WireTrace {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.conn_id);
        put_varint(buf, self.request_id);
        put_u8(buf, self.ty);
        put_str(buf, &self.session);
        for v in [self.queue_ns, self.exec_ns, self.encode_ns, self.total_ns] {
            put_varint(buf, v);
        }
        put_str(buf, &self.algorithm);
        put_str(buf, &self.plan);
        for list in [&self.site_ops, &self.site_msgs] {
            put_varint(buf, list.len() as u64);
            for &v in list.iter() {
                put_varint(buf, v);
            }
        }
        put_varint(buf, self.generation);
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireTrace, ServeError> {
        let conn_id = r.varint("trace conn id")?;
        let request_id = r.varint("trace request id")?;
        let ty = r.u8("trace frame type")?;
        let session = r.str_("trace session")?;
        let queue_ns = r.varint("trace queue ns")?;
        let exec_ns = r.varint("trace exec ns")?;
        let encode_ns = r.varint("trace encode ns")?;
        let total_ns = r.varint("trace total ns")?;
        let algorithm = r.str_("trace algorithm")?;
        let plan = r.str_("trace plan")?;
        let mut lists = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = r.count("trace site count")?;
            list.reserve(n);
            for _ in 0..n {
                list.push(r.varint("trace site value")?);
            }
        }
        let [site_ops, site_msgs] = lists;
        let generation = r.varint("trace generation")?;
        Ok(WireTrace {
            conn_id,
            request_id,
            ty,
            session,
            queue_ns,
            exec_ns,
            encode_ns,
            total_ns,
            algorithm,
            plan,
            site_ops,
            site_msgs,
            generation,
        })
    }
}

/// [`MetricsSnapshot`] codec for the `METRICS_R` frame: the schema
/// version, then three counted `(name, values...)` lists.
fn encode_metrics_snapshot(buf: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_varint(buf, u64::from(snap.version));
    put_varint(buf, snap.counters.len() as u64);
    for (name, value) in &snap.counters {
        put_str(buf, name);
        put_varint(buf, *value);
    }
    put_varint(buf, snap.gauges.len() as u64);
    for (name, value) in &snap.gauges {
        put_str(buf, name);
        put_varint(buf, *value);
    }
    put_varint(buf, snap.histograms.len() as u64);
    for h in &snap.histograms {
        put_str(buf, &h.name);
        for v in [h.count, h.min, h.max, h.p50, h.p95, h.p99] {
            put_varint(buf, v);
        }
    }
}

fn decode_metrics_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, ServeError> {
    let version = r.varint("metrics version")?;
    if version > u64::from(u32::MAX) {
        return Err(ServeError::corrupt("metrics version exceeds u32"));
    }
    let n = r.count("metrics counter count")?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str_("counter name")?;
        counters.push((name, r.varint("counter value")?));
    }
    let n = r.count("metrics gauge count")?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str_("gauge name")?;
        gauges.push((name, r.varint("gauge value")?));
    }
    let n = r.count("metrics histogram count")?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str_("histogram name")?;
        let mut vals = [0u64; 6];
        for v in &mut vals {
            *v = r.varint("histogram summary value")?;
        }
        let [count, min, max, p50, p95, p99] = vals;
        histograms.push(HistogramSummary {
            name,
            count,
            min,
            max,
            p50,
            p95,
            p99,
        });
    }
    Ok(MetricsSnapshot {
        version: version as u32,
        counters,
        gauges,
        histograms,
    })
}

/// Why the server pushed a `SUB_EVENT` frame for a subscription. All
/// three terminate the subscription: no further `MATCH_DIFF` frames
/// follow for its id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubEventKind {
    /// The subscriber fell too far behind: its bounded diff queue
    /// overflowed and the queued diffs were discarded. Re-subscribe
    /// for a fresh snapshot.
    Overflow = 0,
    /// The subscribed session was dropped (or replaced wholesale).
    SessionDropped = 1,
    /// The server is draining for shutdown.
    Draining = 2,
}

impl SubEventKind {
    fn from_u8(v: u8) -> Result<SubEventKind, ServeError> {
        Ok(match v {
            0 => SubEventKind::Overflow,
            1 => SubEventKind::SessionDropped,
            2 => SubEventKind::Draining,
            other => {
                return Err(ServeError::corrupt(format!(
                    "unknown subscription event byte {other}"
                )));
            }
        })
    }
}

/// Pattern-result cache counters (`CACHE_STATS`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireCacheStats {
    pub entries: u64,
    pub capacity: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub generation: u64,
}

/// Compressed-leg summary (`COMPRESSION_INFO`).
#[derive(Clone, Debug, PartialEq)]
pub struct WireCompression {
    pub classes: u64,
    pub ratio: f64,
    pub method: String,
    pub active: bool,
}

/// One hosted session as reported by `SESSION_LIST` /
/// `SESSION_CREATED`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionInfo {
    /// The routing key.
    pub name: String,
    /// Data-graph nodes.
    pub nodes: u64,
    /// Data-graph edges.
    pub edges: u64,
    /// Fragmentation sites.
    pub sites: u16,
    /// The session's current graph generation.
    pub generation: u64,
}

impl SessionInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, &self.name);
        put_varint(buf, self.nodes);
        put_varint(buf, self.edges);
        put_u16(buf, self.sites);
        put_varint(buf, self.generation);
    }

    fn decode(r: &mut Reader<'_>) -> Result<SessionInfo, ServeError> {
        Ok(SessionInfo {
            name: r.str_("session name")?,
            nodes: r.varint("nodes")?,
            edges: r.varint("edges")?,
            sites: r.u16("sites")?,
            generation: r.varint("generation")?,
        })
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    GraphInfo(GraphInfo),
    Answer(Answer),
    /// Per-query outcomes in input order plus the batch totals.
    BatchAnswer {
        items: Vec<Result<Answer, (ErrorCode, String)>>,
        total: WireMetrics,
    },
    DeltaApplied(DeltaSummary),
    /// `None` when the session's cache is disabled.
    CacheStats(Option<WireCacheStats>),
    /// `None` when the session was built without compression.
    CompressionInfo(Option<WireCompression>),
    Loaded {
        nodes: u64,
        edges: u64,
        sites: u16,
    },
    ShuttingDown,
    /// The created (or replaced) session's summary.
    SessionCreated(SessionInfo),
    /// Every hosted session, sorted by name.
    Sessions(Vec<SessionInfo>),
    /// The named session is gone.
    SessionDropped,
    /// The route was installed; `sessions` is how many sessions it
    /// resolved to at install time (for the empty fan-out-all route,
    /// the count hosted right now).
    SessionRouted {
        sessions: u64,
    },
    /// The subscription is live: its id, the generation of the
    /// initial snapshot, and the snapshot's match rows (one sorted
    /// list per query node, the submitted pattern's numbering). Every
    /// later `MATCH_DIFF` for `sub_id` applies on top of these rows.
    Subscribed {
        sub_id: u64,
        generation: u64,
        rows: Vec<Vec<u32>>,
    },
    /// The subscription is gone; no further pushes for its id.
    Unsubscribed,
    /// A point-in-time snapshot of the server's metrics registry
    /// (empty when the registry is disabled).
    Metrics(MetricsSnapshot),
    /// The slow-query trace ring, newest first.
    Trace(Vec<WireTrace>),
    /// Server-pushed (request id 0): one subscription's match-set
    /// delta.
    MatchDiff(MatchDiff),
    /// Server-pushed (request id 0): a subscription terminated.
    SubEvent {
        sub_id: u64,
        kind: SubEventKind,
    },
    Error {
        code: ErrorCode,
        message: String,
    },
}

/// Sorted match rows, delta-encoded per row (the `ANSWER` layout,
/// shared with `SUBSCRIBED`).
fn encode_rows(buf: &mut Vec<u8>, rows: &[Vec<u32>]) {
    put_varint(buf, rows.len() as u64);
    for row in rows {
        put_varint(buf, row.len() as u64);
        let mut prev = 0u32;
        for (i, &v) in row.iter().enumerate() {
            if i == 0 {
                put_varint(buf, u64::from(v));
            } else {
                put_varint(buf, u64::from(v.wrapping_sub(prev)));
            }
            prev = v;
        }
    }
}

fn decode_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<u32>>, ServeError> {
    let nq = r.count("query-node count")?;
    let mut rows = Vec::with_capacity(nq);
    for _ in 0..nq {
        let len = r.count("row length")?;
        let mut row = Vec::with_capacity(len);
        let mut prev = 0u64;
        for i in 0..len {
            let raw = r.varint("match id")?;
            let v = if i == 0 {
                raw
            } else {
                prev.checked_add(raw)
                    .ok_or_else(|| ServeError::corrupt("match-id gap overflows"))?
            };
            if v > u64::from(u32::MAX) {
                return Err(ServeError::corrupt("match id exceeds u32"));
            }
            prev = v;
            row.push(v as u32);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn encode_pattern(buf: &mut Vec<u8>, q: &Pattern) {
    let mut b = Vec::new();
    gio::write_pattern_binary(q, &mut b).expect("infallible Vec write");
    put_bytes(buf, &b);
}

fn decode_pattern(r: &mut Reader<'_>) -> Result<Pattern, ServeError> {
    let b = r.bytes("pattern")?;
    gio::read_pattern_binary(b).map_err(|e| ServeError::corrupt(format!("bad pattern: {e}")))
}

fn encode_edges(buf: &mut Vec<u8>, edges: &[(u32, u32)]) {
    put_varint(buf, edges.len() as u64);
    for &(u, v) in edges {
        put_varint(buf, u64::from(u));
        put_varint(buf, u64::from(v));
    }
}

fn decode_edges(r: &mut Reader<'_>, what: &str) -> Result<Vec<(u32, u32)>, ServeError> {
    let n = r.count(what)?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let u = r.varint(what)?;
        let v = r.varint(what)?;
        if u > u64::from(u32::MAX) || v > u64::from(u32::MAX) {
            return Err(ServeError::corrupt(format!("{what} endpoint exceeds u32")));
        }
        edges.push((u as u32, v as u32));
    }
    Ok(edges)
}

/// The options + graph-blob tail shared by `LOAD_GRAPH` and
/// `SESSION_CREATE`.
fn encode_options_and_graph(buf: &mut Vec<u8>, options: &SessionOptions, graph: &Graph) {
    put_u16(buf, options.sites);
    put_u8(buf, options.partitioner as u8);
    put_varint(buf, options.seed);
    put_varint(buf, u64::from(options.cache_capacity));
    put_u8(
        buf,
        match options.compression {
            None => 0,
            Some(CompressionMethod::SimEq) => 1,
            Some(CompressionMethod::Bisim) => 2,
        },
    );
    put_f64(buf, options.compression_threshold);
    let mut g = Vec::new();
    gio::write_graph_binary(graph, &mut g).expect("infallible Vec write");
    put_bytes(buf, &g);
}

fn decode_options_and_graph(r: &mut Reader<'_>) -> Result<(SessionOptions, Graph), ServeError> {
    let sites = r.u16("sites")?;
    let partitioner = WirePartitioner::from_u8(r.u8("partitioner")?)?;
    let seed = r.varint("seed")?;
    let cache_capacity = r.varint("cache capacity")?;
    if cache_capacity > u64::from(u32::MAX) {
        return Err(ServeError::corrupt("cache capacity exceeds u32"));
    }
    let compression = match r.u8("compression")? {
        0 => None,
        1 => Some(CompressionMethod::SimEq),
        2 => Some(CompressionMethod::Bisim),
        other => {
            return Err(ServeError::corrupt(format!(
                "unknown compression byte {other}"
            )));
        }
    };
    let compression_threshold = r.f64("compression threshold")?;
    if !compression_threshold.is_finite() {
        return Err(ServeError::corrupt("compression threshold is not finite"));
    }
    let g = r.bytes("graph")?;
    let graph =
        gio::read_graph_binary(g).map_err(|e| ServeError::corrupt(format!("bad graph: {e}")))?;
    Ok((
        SessionOptions {
            sites,
            partitioner,
            seed,
            cache_capacity: cache_capacity as u32,
            compression,
            compression_threshold,
        },
        graph,
    ))
}

impl Request {
    /// Serializes to `(frame type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        let ty = self.encode_into(&mut buf);
        (ty, buf)
    }

    /// Appends the payload to `buf` (which may carry a frame header
    /// or a v3 request-id prefix already) and returns the frame type.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> u8 {
        match self {
            Request::Ping => frame::PING,
            Request::GraphInfo => frame::GRAPH_INFO,
            Request::Query {
                pattern,
                algorithm,
                boolean,
            } => {
                put_u8(buf, *algorithm as u8);
                put_u8(buf, u8::from(*boolean));
                encode_pattern(buf, pattern);
                frame::QUERY
            }
            Request::QueryBatch {
                patterns,
                algorithm,
            } => {
                put_u8(buf, *algorithm as u8);
                put_varint(buf, patterns.len() as u64);
                for q in patterns {
                    encode_pattern(buf, q);
                }
                frame::QUERY_BATCH
            }
            Request::ApplyDelta {
                insert_edges,
                delete_edges,
            } => {
                encode_edges(buf, insert_edges);
                encode_edges(buf, delete_edges);
                frame::APPLY_DELTA
            }
            Request::CacheStats => frame::CACHE_STATS,
            Request::CompressionInfo => frame::COMPRESSION_INFO,
            Request::LoadGraph { graph, options } => {
                encode_options_and_graph(buf, options, graph);
                frame::LOAD_GRAPH
            }
            Request::Shutdown => frame::SHUTDOWN,
            Request::SessionCreate {
                name,
                graph,
                options,
            } => {
                put_str(buf, name);
                encode_options_and_graph(buf, options, graph);
                frame::SESSION_CREATE
            }
            Request::SessionList => frame::SESSION_LIST,
            Request::SessionDrop { name } => {
                put_str(buf, name);
                frame::SESSION_DROP
            }
            Request::SessionRoute { sessions } => {
                put_varint(buf, sessions.len() as u64);
                for name in sessions {
                    put_str(buf, name);
                }
                frame::SESSION_ROUTE
            }
            Request::Subscribe { pattern, algorithm } => {
                put_u8(buf, *algorithm as u8);
                encode_pattern(buf, pattern);
                frame::SUBSCRIBE
            }
            Request::Unsubscribe { sub_id } => {
                put_varint(buf, *sub_id);
                frame::UNSUBSCRIBE
            }
            Request::Metrics => frame::METRICS,
            Request::Trace => frame::TRACE,
        }
    }

    /// Decodes a request frame.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Request, ServeError> {
        let mut r = Reader::new(payload);
        let req = match ty {
            frame::PING => Request::Ping,
            frame::GRAPH_INFO => Request::GraphInfo,
            frame::QUERY => {
                let algorithm = WireAlgorithm::from_u8(r.u8("algorithm")?)?;
                let boolean = r.u8("boolean flag")? != 0;
                let pattern = decode_pattern(&mut r)?;
                Request::Query {
                    pattern,
                    algorithm,
                    boolean,
                }
            }
            frame::QUERY_BATCH => {
                let algorithm = WireAlgorithm::from_u8(r.u8("algorithm")?)?;
                let n = r.count("batch size")?;
                let mut patterns = Vec::with_capacity(n);
                for _ in 0..n {
                    patterns.push(decode_pattern(&mut r)?);
                }
                Request::QueryBatch {
                    patterns,
                    algorithm,
                }
            }
            frame::APPLY_DELTA => {
                let insert_edges = decode_edges(&mut r, "insert edges")?;
                let delete_edges = decode_edges(&mut r, "delete edges")?;
                Request::ApplyDelta {
                    insert_edges,
                    delete_edges,
                }
            }
            frame::CACHE_STATS => Request::CacheStats,
            frame::COMPRESSION_INFO => Request::CompressionInfo,
            frame::LOAD_GRAPH => {
                let (options, graph) = decode_options_and_graph(&mut r)?;
                Request::LoadGraph { graph, options }
            }
            frame::SHUTDOWN => Request::Shutdown,
            frame::SESSION_CREATE => {
                let name = r.str_("session name")?;
                let (options, graph) = decode_options_and_graph(&mut r)?;
                Request::SessionCreate {
                    name,
                    graph,
                    options,
                }
            }
            frame::SESSION_LIST => Request::SessionList,
            frame::SESSION_DROP => {
                let name = r.str_("session name")?;
                Request::SessionDrop { name }
            }
            frame::SESSION_ROUTE => {
                let n = r.count("route size")?;
                let mut sessions = Vec::with_capacity(n);
                for _ in 0..n {
                    sessions.push(r.str_("session name")?);
                }
                Request::SessionRoute { sessions }
            }
            frame::SUBSCRIBE => {
                let algorithm = WireAlgorithm::from_u8(r.u8("algorithm")?)?;
                let pattern = decode_pattern(&mut r)?;
                Request::Subscribe { pattern, algorithm }
            }
            frame::UNSUBSCRIBE => Request::Unsubscribe {
                sub_id: r.varint("sub id")?,
            },
            frame::METRICS => Request::Metrics,
            frame::TRACE => Request::Trace,
            other => {
                return Err(ServeError::corrupt(format!(
                    "unknown request frame type {other:#04x}"
                )));
            }
        };
        r.finish("request")?;
        Ok(req)
    }
}

impl Response {
    /// Serializes to `(frame type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        let ty = self.encode_into(&mut buf);
        (ty, buf)
    }

    /// Appends the payload to `buf` (which may carry a frame header
    /// or a v3 request-id prefix already — this is what lets the
    /// server encode straight into a pooled frame buffer) and returns
    /// the frame type. Encodes at this build's own wire version; the
    /// server uses [`Response::encode_into_v`] with the connection's
    /// negotiated version instead.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> u8 {
        self.encode_into_v(buf, WIRE_VERSION)
    }

    /// Version-aware [`Response::encode_into`]: `wire_version` is the
    /// peer's negotiated version, so v≤3 peers never see the v4
    /// `DELTA_APPLIED` trailing extension their decoder would reject.
    pub fn encode_into_v(&self, buf: &mut Vec<u8>, wire_version: u8) -> u8 {
        match self {
            Response::Pong => frame::PONG,
            Response::GraphInfo(info) => {
                for v in [info.nodes, info.edges] {
                    put_varint(buf, v);
                }
                put_u16(buf, info.sites);
                for v in [info.vf, info.ef, info.label_bound, info.generation] {
                    put_varint(buf, v);
                }
                frame::GRAPH_INFO_R
            }
            Response::Answer(a) => {
                a.encode(buf);
                frame::ANSWER
            }
            Response::BatchAnswer { items, total } => {
                put_varint(buf, items.len() as u64);
                for item in items {
                    match item {
                        Ok(a) => {
                            put_u8(buf, 1);
                            a.encode(buf);
                        }
                        Err((code, message)) => {
                            put_u8(buf, 0);
                            put_u16(buf, code.to_u16());
                            put_str(buf, message);
                        }
                    }
                }
                total.encode(buf);
                frame::BATCH_ANSWER
            }
            Response::DeltaApplied(d) => {
                for v in [
                    d.inserted,
                    d.deleted,
                    d.ignored,
                    d.crossing_inserted,
                    d.crossing_deleted,
                    d.virtuals_created,
                    d.virtuals_retired,
                    d.maintained_entries,
                    d.invalidated_entries,
                    d.revoked_pairs,
                    d.generation,
                ] {
                    put_varint(buf, v);
                }
                if wire_version >= 4 {
                    put_varint(buf, d.resurrected_pairs);
                }
                frame::DELTA_APPLIED
            }
            Response::CacheStats(stats) => {
                match stats {
                    None => put_u8(buf, 0),
                    Some(s) => {
                        put_u8(buf, 1);
                        for v in [
                            s.entries,
                            s.capacity,
                            s.hits,
                            s.misses,
                            s.evictions,
                            s.generation,
                        ] {
                            put_varint(buf, v);
                        }
                    }
                }
                frame::CACHE_STATS_R
            }
            Response::CompressionInfo(info) => {
                match info {
                    None => put_u8(buf, 0),
                    Some(c) => {
                        put_u8(buf, 1);
                        put_varint(buf, c.classes);
                        put_f64(buf, c.ratio);
                        put_str(buf, &c.method);
                        put_u8(buf, u8::from(c.active));
                    }
                }
                frame::COMPRESSION_INFO_R
            }
            Response::Loaded {
                nodes,
                edges,
                sites,
            } => {
                put_varint(buf, *nodes);
                put_varint(buf, *edges);
                put_u16(buf, *sites);
                frame::LOADED
            }
            Response::ShuttingDown => frame::SHUTTING_DOWN,
            Response::SessionCreated(info) => {
                info.encode(buf);
                frame::SESSION_CREATED
            }
            Response::Sessions(infos) => {
                put_varint(buf, infos.len() as u64);
                for info in infos {
                    info.encode(buf);
                }
                frame::SESSION_LIST_R
            }
            Response::SessionDropped => frame::SESSION_DROPPED,
            Response::SessionRouted { sessions } => {
                put_varint(buf, *sessions);
                frame::SESSION_ROUTED
            }
            Response::Subscribed {
                sub_id,
                generation,
                rows,
            } => {
                put_varint(buf, *sub_id);
                put_varint(buf, *generation);
                encode_rows(buf, rows);
                frame::SUBSCRIBED
            }
            Response::Unsubscribed => frame::UNSUBSCRIBED,
            Response::Metrics(snap) => {
                encode_metrics_snapshot(buf, snap);
                frame::METRICS_R
            }
            Response::Trace(traces) => {
                put_varint(buf, traces.len() as u64);
                for t in traces {
                    t.encode(buf);
                }
                frame::TRACE_R
            }
            Response::MatchDiff(diff) => {
                diff.encode(buf);
                frame::MATCH_DIFF
            }
            Response::SubEvent { sub_id, kind } => {
                put_varint(buf, *sub_id);
                put_u8(buf, *kind as u8);
                frame::SUB_EVENT
            }
            Response::Error { code, message } => {
                put_u16(buf, code.to_u16());
                put_str(buf, message);
                frame::ERROR
            }
        }
    }

    /// Decodes a response frame.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Response, ServeError> {
        let mut r = Reader::new(payload);
        let resp = match ty {
            frame::PONG => Response::Pong,
            frame::GRAPH_INFO_R => {
                let nodes = r.varint("nodes")?;
                let edges = r.varint("edges")?;
                let sites = r.u16("sites")?;
                let vf = r.varint("vf")?;
                let ef = r.varint("ef")?;
                let label_bound = r.varint("label bound")?;
                let generation = r.varint("generation")?;
                Response::GraphInfo(GraphInfo {
                    nodes,
                    edges,
                    sites,
                    vf,
                    ef,
                    label_bound,
                    generation,
                })
            }
            frame::ANSWER => Response::Answer(Answer::decode(&mut r)?),
            frame::BATCH_ANSWER => {
                let n = r.count("batch size")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    match r.u8("item tag")? {
                        1 => items.push(Ok(Answer::decode(&mut r)?)),
                        0 => {
                            let code = ErrorCode::from_u16(r.u16("error code")?);
                            let message = r.str_("error message")?;
                            items.push(Err((code, message)));
                        }
                        other => {
                            return Err(ServeError::corrupt(format!(
                                "unknown batch item tag {other}"
                            )));
                        }
                    }
                }
                let total = WireMetrics::decode(&mut r)?;
                Response::BatchAnswer { items, total }
            }
            frame::DELTA_APPLIED => {
                let mut vals = [0u64; 11];
                for v in &mut vals {
                    *v = r.varint("delta counter")?;
                }
                let [inserted, deleted, ignored, crossing_inserted, crossing_deleted, virtuals_created, virtuals_retired, maintained_entries, invalidated_entries, revoked_pairs, generation] =
                    vals;
                // v4 extension: a trailing resurrected-pairs counter.
                // A v3 server's 11-counter payload leaves it 0.
                let resurrected_pairs = if r.remaining() > 0 {
                    r.varint("resurrected pairs")?
                } else {
                    0
                };
                Response::DeltaApplied(DeltaSummary {
                    inserted,
                    deleted,
                    ignored,
                    crossing_inserted,
                    crossing_deleted,
                    virtuals_created,
                    virtuals_retired,
                    maintained_entries,
                    invalidated_entries,
                    revoked_pairs,
                    generation,
                    resurrected_pairs,
                })
            }
            frame::CACHE_STATS_R => match r.u8("cache flag")? {
                0 => Response::CacheStats(None),
                1 => {
                    let mut vals = [0u64; 6];
                    for v in &mut vals {
                        *v = r.varint("cache counter")?;
                    }
                    let [entries, capacity, hits, misses, evictions, generation] = vals;
                    Response::CacheStats(Some(WireCacheStats {
                        entries,
                        capacity,
                        hits,
                        misses,
                        evictions,
                        generation,
                    }))
                }
                other => {
                    return Err(ServeError::corrupt(format!("unknown cache flag {other}")));
                }
            },
            frame::COMPRESSION_INFO_R => match r.u8("compression flag")? {
                0 => Response::CompressionInfo(None),
                1 => {
                    let classes = r.varint("classes")?;
                    let ratio = r.f64("ratio")?;
                    let method = r.str_("method")?;
                    let active = r.u8("active")? != 0;
                    Response::CompressionInfo(Some(WireCompression {
                        classes,
                        ratio,
                        method,
                        active,
                    }))
                }
                other => {
                    return Err(ServeError::corrupt(format!(
                        "unknown compression flag {other}"
                    )));
                }
            },
            frame::LOADED => {
                let nodes = r.varint("nodes")?;
                let edges = r.varint("edges")?;
                let sites = r.u16("sites")?;
                Response::Loaded {
                    nodes,
                    edges,
                    sites,
                }
            }
            frame::SHUTTING_DOWN => Response::ShuttingDown,
            frame::SESSION_CREATED => Response::SessionCreated(SessionInfo::decode(&mut r)?),
            frame::SESSION_LIST_R => {
                let n = r.count("session count")?;
                let mut infos = Vec::with_capacity(n);
                for _ in 0..n {
                    infos.push(SessionInfo::decode(&mut r)?);
                }
                Response::Sessions(infos)
            }
            frame::SESSION_DROPPED => Response::SessionDropped,
            frame::SESSION_ROUTED => Response::SessionRouted {
                sessions: r.varint("routed session count")?,
            },
            frame::SUBSCRIBED => {
                let sub_id = r.varint("sub id")?;
                let generation = r.varint("generation")?;
                let rows = decode_rows(&mut r)?;
                Response::Subscribed {
                    sub_id,
                    generation,
                    rows,
                }
            }
            frame::UNSUBSCRIBED => Response::Unsubscribed,
            frame::METRICS_R => Response::Metrics(decode_metrics_snapshot(&mut r)?),
            frame::TRACE_R => {
                let n = r.count("trace count")?;
                let mut traces = Vec::with_capacity(n);
                for _ in 0..n {
                    traces.push(WireTrace::decode(&mut r)?);
                }
                Response::Trace(traces)
            }
            frame::MATCH_DIFF => Response::MatchDiff(MatchDiff::decode(&mut r)?),
            frame::SUB_EVENT => {
                let sub_id = r.varint("sub id")?;
                let kind = SubEventKind::from_u8(r.u8("event kind")?)?;
                Response::SubEvent { sub_id, kind }
            }
            frame::ERROR => {
                let code = ErrorCode::from_u16(r.u16("error code")?);
                let message = r.str_("error message")?;
                Response::Error { code, message }
            }
            other => {
                return Err(ServeError::corrupt(format!(
                    "unknown response frame type {other:#04x}"
                )));
            }
        };
        r.finish("response")?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgs_graph::{Label, PatternBuilder};

    fn sample_pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(2));
        b.add_edge(a, c);
        b.add_edge(c, a);
        b.build()
    }

    #[test]
    fn request_roundtrip_query() {
        let req = Request::Query {
            pattern: sample_pattern(),
            algorithm: WireAlgorithm::Auto,
            boolean: false,
        };
        let (ty, payload) = req.encode();
        assert_eq!(Request::decode(ty, &payload).unwrap(), req);
    }

    #[test]
    fn response_roundtrip_answer() {
        let resp = Response::Answer(Answer {
            rows: vec![vec![0, 3, 17], vec![], vec![2]],
            is_match: false,
            algorithm: "dGPM".into(),
            plan: "dGPM (auto)".into(),
            metrics: WireMetrics {
                data_bytes: 123,
                virtual_time_ns: 456,
                ..WireMetrics::default()
            },
        });
        let (ty, payload) = resp.encode();
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
    }

    #[test]
    fn answer_relation_reconstruction() {
        let a = Answer {
            rows: vec![vec![5, 9], vec![1]],
            is_match: true,
            algorithm: "x".into(),
            plan: "p".into(),
            metrics: WireMetrics::default(),
        };
        let rel = a.relation();
        assert_eq!(
            rel.matches_of(dgs_graph::QNodeId(0)),
            &[NodeId(5), NodeId(9)]
        );
        assert_eq!(a.answer_pairs(), 3);
    }

    #[test]
    fn subscribe_roundtrips() {
        let req = Request::Subscribe {
            pattern: sample_pattern(),
            algorithm: WireAlgorithm::Auto,
        };
        let (ty, payload) = req.encode();
        assert_eq!(ty, frame::SUBSCRIBE);
        assert_eq!(Request::decode(ty, &payload).unwrap(), req);

        let req = Request::Unsubscribe { sub_id: 9000 };
        let (ty, payload) = req.encode();
        assert_eq!(Request::decode(ty, &payload).unwrap(), req);

        let resp = Response::Subscribed {
            sub_id: 7,
            generation: 42,
            rows: vec![vec![3, 4, 100], vec![]],
        };
        let (ty, payload) = resp.encode();
        assert_eq!(ty, frame::SUBSCRIBED);
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);

        let (ty, payload) = Response::Unsubscribed.encode();
        assert_eq!(
            Response::decode(ty, &payload).unwrap(),
            Response::Unsubscribed
        );
    }

    #[test]
    fn push_frames_roundtrip() {
        let resp = Response::MatchDiff(MatchDiff {
            sub_id: 3,
            generation: 17,
            added: vec![(0, 5), (2, 9)],
            removed: vec![(1, 1)],
        });
        let (ty, payload) = resp.encode();
        assert_eq!(ty, frame::MATCH_DIFF);
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);

        for kind in [
            SubEventKind::Overflow,
            SubEventKind::SessionDropped,
            SubEventKind::Draining,
        ] {
            let resp = Response::SubEvent { sub_id: 12, kind };
            let (ty, payload) = resp.encode();
            assert_eq!(ty, frame::SUB_EVENT);
            assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn delta_summary_extension_is_version_gated() {
        let d = DeltaSummary {
            inserted: 5,
            revoked_pairs: 2,
            resurrected_pairs: 11,
            generation: 3,
            ..DeltaSummary::default()
        };
        // A v3 peer gets the classic 11-counter payload; decoding it
        // leaves the extension 0.
        let mut v3 = Vec::new();
        let ty = Response::DeltaApplied(d.clone()).encode_into_v(&mut v3, 3);
        match Response::decode(ty, &v3).unwrap() {
            Response::DeltaApplied(got) => {
                assert_eq!(got.resurrected_pairs, 0);
                assert_eq!(got.inserted, 5);
            }
            other => panic!("expected DeltaApplied, got {other:?}"),
        }
        // A v4 peer sees the trailing counter.
        let mut v4 = Vec::new();
        let ty = Response::DeltaApplied(d.clone()).encode_into_v(&mut v4, 4);
        assert!(v4.len() > v3.len());
        match Response::decode(ty, &v4).unwrap() {
            Response::DeltaApplied(got) => assert_eq!(got, d),
            other => panic!("expected DeltaApplied, got {other:?}"),
        }
    }

    #[test]
    fn metrics_frames_roundtrip() {
        for req in [Request::Metrics, Request::Trace] {
            let (ty, payload) = req.encode();
            assert!(payload.is_empty());
            assert_eq!(Request::decode(ty, &payload).unwrap(), req);
        }
        let resp = Response::Metrics(MetricsSnapshot {
            version: 1,
            counters: vec![
                ("dgsd_connections_accepted_total".into(), 4),
                ("dgsd_requests_total{frame=\"QUERY\"}".into(), 17),
            ],
            gauges: vec![("dgsd_queue_depth".into(), 2)],
            histograms: vec![HistogramSummary {
                name: "dgsd_request_ns{frame=\"PING\"}".into(),
                count: 9,
                min: 100,
                max: 9000,
                p50: 300,
                p95: 7000,
                p99: 8500,
            }],
        });
        let (ty, payload) = resp.encode();
        assert_eq!(ty, frame::METRICS_R);
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
        // The disabled-registry snapshot travels too.
        let empty = Response::Metrics(MetricsSnapshot::default());
        let (ty, payload) = empty.encode();
        assert_eq!(Response::decode(ty, &payload).unwrap(), empty);
    }

    #[test]
    fn trace_frames_roundtrip() {
        let resp = Response::Trace(vec![
            WireTrace {
                conn_id: 3,
                request_id: 41,
                ty: frame::QUERY,
                session: "default".into(),
                queue_ns: 1200,
                exec_ns: 2_400_000,
                encode_ns: 800,
                total_ns: 2_402_000,
                algorithm: "dGPM".into(),
                plan: "dGPM (auto)".into(),
                site_ops: vec![10, 20, 30],
                site_msgs: vec![1, 2, 3],
                generation: 7,
            },
            WireTrace::default(),
        ]);
        let (ty, payload) = resp.encode();
        assert_eq!(ty, frame::TRACE_R);
        assert_eq!(Response::decode(ty, &payload).unwrap(), resp);
    }

    #[test]
    fn unknown_frame_types_are_corrupt_not_panic() {
        assert!(Request::decode(0xee, &[]).is_err());
        assert!(Response::decode(0xee, &[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (ty, mut payload) = Request::Ping.encode();
        payload.push(7);
        assert!(Request::decode(ty, &payload).is_err());
    }
}
