//! # dgs-serve
//!
//! The network serving layer of dgs: everything the in-process
//! [`SimEngine`](dgs_core::SimEngine) session offers —
//! `query`/`query_batch` with plans and metrics, `apply_delta`,
//! cache and compression stats, session replacement — carried over a
//! hand-rolled, versioned, length-prefixed binary wire protocol on
//! plain `std` TCP or Unix-domain sockets. No async runtime, no
//! serialization crates: frames are `[u32 LE length][u8 type]
//! [payload]` and payloads are varints, fixed little-endian integers
//! and length-prefixed strings (see `docs/PROTOCOL.md`).
//!
//! The pieces, bottom-up:
//!
//! | module | contents |
//! |--------|----------|
//! | [`wire`] | framing + primitive codecs; bounds-checked [`wire::Reader`] |
//! | [`proto`] | [`Request`]/[`Response`] frames, [`Answer`], version handshake |
//! | [`transport`] | [`ServeAddr`] (`tcp:`/`unix:` spellings), stream + listener |
//! | [`poll`] | the `poll(2)` readiness shim + self-pipe waker (std only) |
//! | [`session`] | [`SessionManager`]: named sessions, routing, fan-out merge |
//! | [`server`] | [`Server`]: readiness-loop daemon core (event thread + worker pool) with pipelining, admission control and drain shutdown |
//! | [`client`] | [`DgsClient`]: the typed client — blocking calls or pipelined submit/await |
//! | [`load`] | [`run_load`]: open-/closed-loop traffic generation |
//!
//! Queries never block behind a writer: every engine is
//! snapshot-isolated (reads run against an immutable, atomically
//! swapped generation snapshot), and a daemon hosts many engines as
//! named **sessions** — `SESSION_CREATE`/`SESSION_DROP` manage them,
//! `SESSION_ROUTE` points a connection at one or fans queries out
//! across several with per-query-node relation merge.
//!
//! Two binaries ship with the crate: **`dgsd`**, the daemon, and
//! **`dgsload`**, the traffic generator (throughput + p50/p95/p99
//! from [`dgs_net::LatencyHistogram`]). `dgsq --remote <addr>`
//! drives any daemon from the existing CLI.
//!
//! ## In-process quickstart
//!
//! ```
//! use dgs_serve::{DgsClient, Server, ServerConfig, ServeAddr, WireAlgorithm};
//! use dgs_core::SimEngine;
//! use dgs_graph::generate::social::fig1;
//! use dgs_partition::Fragmentation;
//! use std::sync::Arc;
//!
//! // Build a session and serve it on an ephemeral port.
//! let w = fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let engine = SimEngine::builder(&w.graph, frag).build();
//! let server = Server::bind(
//!     &ServeAddr::parse("127.0.0.1:0").unwrap(),
//!     engine,
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let handle = server.spawn();
//!
//! // Remote answers equal in-process answers.
//! let mut client = DgsClient::connect(handle.addr()).unwrap();
//! let answer = client.query(&w.pattern, WireAlgorithm::Auto).unwrap();
//! assert!(answer.is_match);
//! assert_eq!(answer.relation().len(), 11);
//!
//! drop(client);
//! handle.shutdown().unwrap();
//! ```

pub mod client;
pub mod error;
pub mod load;
pub mod poll;
pub mod proto;
pub mod server;
pub mod session;
pub mod subscribe;
pub mod transport;
pub mod wire;

pub use client::{DgsClient, SubscriptionEvent};
pub use error::{ErrorCode, ServeError};
pub use load::{
    mixed_pattern_pool, run_conn_sweep, run_load, run_subscribe, ConnSweepConfig, LoadConfig,
    LoadMode, LoadReport, SubscribeConfig, SubscribeReport,
};
pub use proto::{
    Answer, DeltaSummary, GraphInfo, MatchDiff, Request, Response, SessionInfo, SessionOptions,
    SubEventKind, WireAlgorithm, WireCacheStats, WireCompression, WireMetrics, WirePartitioner,
    WireTrace, WIRE_MAGIC, WIRE_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{merge_answers, Route, SessionManager, DEFAULT_SESSION};
pub use transport::{Conn, Listener, ServeAddr};
