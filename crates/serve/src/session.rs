//! Named sessions and shard routing.
//!
//! A daemon hosts a set of named [`SimEngine`] sessions behind a
//! [`SessionManager`]. Each connection carries a [`Route`] (default:
//! the `"default"` session); `SESSION_ROUTE` points it at another
//! session or fans queries out across several. The manager itself is
//! a plain name → `Arc<SimEngine>` map behind a mutex held only for
//! lookups and swaps — never across a query or a delta. The engines
//! are snapshot-isolated internally, so handing out `Arc` clones is
//! all the concurrency control the serve path needs: queries run
//! against whatever generation snapshot is published, writers build
//! the next generation off the read path.
//!
//! ## Fan-out semantics
//!
//! A fan-out route treats its sessions as **shards of one logical
//! graph** (disjoint node-id spaces or not — the merge is a plain
//! union). Graph simulation is preserved under disjoint union: the
//! maximum simulation of `Q` in `G₁ ⊎ G₂` is exactly the union of the
//! per-component maximum simulations, so merging per-shard relations
//! row-wise (sorted union per query node) reproduces the whole-graph
//! answer. `is_match` is recomputed from the *merged* rows — a query
//! node matchless on every shard is matchless overall — which is why
//! Boolean fan-out queries run data-selecting per shard first: OR-ing
//! per-shard `is_match` flags would wrongly claim a match that no
//! single shard (and no union) supports per query node. Metrics are
//! summed; the answer is labelled `fanout(k)` over the shard count.

use crate::proto::{Answer, SessionInfo, WireMetrics};
use dgs_core::SimEngine;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The session every connection starts routed to.
pub const DEFAULT_SESSION: &str = "default";

/// Where a connection's requests go.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// All requests hit this one session (admin frames included).
    Single(String),
    /// Queries fan out across these sessions; admin/write frames are
    /// refused (they need a single target).
    Many(Vec<String>),
    /// Queries fan out across every hosted session, resolved at
    /// request time.
    All,
}

impl Default for Route {
    fn default() -> Self {
        Route::Single(DEFAULT_SESSION.to_owned())
    }
}

impl Route {
    /// The wire form (`SESSION_ROUTE`'s name list) of this route.
    pub fn of_names(names: Vec<String>) -> Route {
        match names.len() {
            0 => Route::All,
            1 => Route::Single(names.into_iter().next().unwrap()),
            _ => Route::Many(names),
        }
    }
}

/// The named-session registry one daemon serves.
pub struct SessionManager {
    sessions: Mutex<BTreeMap<String, Arc<SimEngine>>>,
}

impl SessionManager {
    /// A manager hosting `engine` as the `"default"` session.
    pub fn new(engine: SimEngine) -> SessionManager {
        let mut map = BTreeMap::new();
        map.insert(DEFAULT_SESSION.to_owned(), Arc::new(engine));
        SessionManager {
            sessions: Mutex::new(map),
        }
    }

    /// The named session, if hosted.
    pub fn get(&self, name: &str) -> Option<Arc<SimEngine>> {
        self.sessions.lock().get(name).cloned()
    }

    /// Hosts (or replaces) `name`. The engine is built by the caller
    /// off the lock; only the map swap happens under it.
    pub fn insert(&self, name: &str, engine: SimEngine) -> Arc<SimEngine> {
        let engine = Arc::new(engine);
        self.sessions
            .lock()
            .insert(name.to_owned(), Arc::clone(&engine));
        engine
    }

    /// Drops `name`; `false` when it was not hosted. In-flight
    /// queries holding the `Arc` finish against their snapshot.
    pub fn remove(&self, name: &str) -> bool {
        self.sessions.lock().remove(name).is_some()
    }

    /// Number of hosted sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no session is hosted (every one was dropped).
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }

    /// Every hosted session, sorted by name.
    pub fn list(&self) -> Vec<(String, Arc<SimEngine>)> {
        self.sessions
            .lock()
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(e)))
            .collect()
    }

    /// The engines a route resolves to right now, sorted by name.
    /// `Err` names the first missing session.
    pub fn resolve(&self, route: &Route) -> Result<Vec<(String, Arc<SimEngine>)>, String> {
        match route {
            Route::Single(name) => match self.get(name) {
                Some(e) => Ok(vec![(name.clone(), e)]),
                None => Err(name.clone()),
            },
            Route::Many(names) => {
                let map = self.sessions.lock();
                let mut out = Vec::with_capacity(names.len());
                for name in names {
                    match map.get(name) {
                        Some(e) => out.push((name.clone(), Arc::clone(e))),
                        None => return Err(name.clone()),
                    }
                }
                Ok(out)
            }
            Route::All => Ok(self.list()),
        }
    }

    /// The `SESSION_LIST` summary of every hosted session.
    pub fn infos(&self) -> Vec<SessionInfo> {
        self.list()
            .into_iter()
            .map(|(name, engine)| session_info(&name, &engine))
            .collect()
    }
}

/// The wire summary of one session.
pub fn session_info(name: &str, engine: &SimEngine) -> SessionInfo {
    let g = engine.graph();
    SessionInfo {
        name: name.to_owned(),
        nodes: g.node_count() as u64,
        edges: g.edge_count() as u64,
        sites: engine.fragmentation().num_sites() as u16,
        generation: engine.generation(),
    }
}

/// Merges per-shard answers of **one** query into the disjoint-union
/// answer: per-query-node sorted union of the shard rows, `is_match`
/// recomputed from the merged rows, metrics summed.
pub fn merge_answers(parts: &[Answer]) -> Answer {
    let nq = parts.iter().map(|a| a.rows.len()).max().unwrap_or(0);
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); nq];
    let mut metrics = WireMetrics::default();
    for part in parts {
        for (u, row) in part.rows.iter().enumerate() {
            rows[u].extend_from_slice(row);
        }
        merge_metrics(&mut metrics, &part.metrics);
    }
    for row in &mut rows {
        row.sort_unstable();
        row.dedup();
    }
    let is_match = nq > 0 && rows.iter().all(|r| !r.is_empty());
    Answer {
        rows,
        is_match,
        algorithm: format!("fanout({})", parts.len()),
        plan: format!(
            "fan-out over {} session(s): per-shard {}, rows merged as sorted unions",
            parts.len(),
            parts.first().map(|a| a.algorithm.as_str()).unwrap_or("-")
        ),
        metrics,
    }
}

/// Field-wise sum (the wire metrics have no per-site vectors, so a
/// plain add is exact).
pub(crate) fn merge_metrics(total: &mut WireMetrics, part: &WireMetrics) {
    total.data_bytes += part.data_bytes;
    total.data_messages += part.data_messages;
    total.control_bytes += part.control_bytes;
    total.control_messages += part.control_messages;
    total.result_bytes += part.result_bytes;
    total.result_messages += part.result_messages;
    total.total_ops += part.total_ops;
    total.virtual_time_ns += part.virtual_time_ns;
    total.quiescence_rounds += part.quiescence_rounds;
    total.cache_hits += part.cache_hits;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(rows: Vec<Vec<u32>>, is_match: bool) -> Answer {
        Answer {
            rows,
            is_match,
            algorithm: "dGPM".into(),
            plan: "p".into(),
            metrics: WireMetrics {
                data_bytes: 10,
                total_ops: 3,
                ..WireMetrics::default()
            },
        }
    }

    #[test]
    fn merge_unions_rows_and_recomputes_is_match() {
        let a = answer(vec![vec![1, 5], vec![]], false);
        let b = answer(vec![vec![5, 9], vec![2]], true);
        let m = merge_answers(&[a, b]);
        assert_eq!(m.rows, vec![vec![1, 5, 9], vec![2]]);
        assert!(m.is_match, "union is total even though one shard isn't");
        assert_eq!(m.metrics.data_bytes, 20);
        assert_eq!(m.metrics.total_ops, 6);
        assert!(m.algorithm.starts_with("fanout(2)"));
    }

    #[test]
    fn merge_stays_matchless_when_a_row_is_empty_everywhere() {
        let a = answer(vec![vec![1], vec![]], false);
        let b = answer(vec![vec![2], vec![]], false);
        let m = merge_answers(&[a, b]);
        assert!(!m.is_match);
        assert_eq!(m.rows[1], Vec::<u32>::new());
    }

    #[test]
    fn route_of_names() {
        assert_eq!(Route::of_names(vec![]), Route::All);
        assert_eq!(Route::of_names(vec!["a".into()]), Route::Single("a".into()));
        assert_eq!(
            Route::of_names(vec!["a".into(), "b".into()]),
            Route::Many(vec!["a".into(), "b".into()])
        );
    }
}
