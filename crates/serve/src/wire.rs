//! Framing and primitive codecs of the wire protocol.
//!
//! The actual implementation lives in [`dgs_net::wire`] — it moved
//! down a layer so the cross-process `SocketExecutor` site frames and
//! the serving protocol share one set of codecs (and one set of
//! bounds checks). This module keeps the serving layer's historical
//! API: the same functions and [`Reader`], with every decode failure
//! surfaced as a typed [`ServeError`].
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! [u32 LE payload length] [u8 frame type] [payload bytes]
//! ```
//!
//! The length covers the payload only (not itself, not the type
//! byte) and is bounded by [`MAX_FRAME`] — a corrupt length is
//! refused *before* any allocation.

use crate::error::ServeError;
use dgs_net::wire::{self, FrameError};
use std::io::{self, Read, Write};

pub use dgs_net::wire::{
    put_bytes, put_f64, put_str, put_u16, put_u8, put_varint, FrameBuffer, MAX_FRAME,
};

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ServeError::Io(e),
            FrameError::Corrupt { message } => ServeError::Corrupt { message },
            FrameError::TooLarge { len, max } => ServeError::FrameTooLarge { len, max },
        }
    }
}

/// Writes one frame; see [`dgs_net::wire::write_frame`].
pub fn write_frame<W: Write>(w: &mut W, ty: u8, payload: &[u8]) -> io::Result<()> {
    wire::write_frame(w, ty, payload)
}

/// Reads one frame; `Ok(None)` on clean EOF **before** the first
/// length byte (the peer closed between frames). EOF anywhere else is
/// a truncation error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
    wire::read_frame(r).map_err(ServeError::from)
}

/// A **resumable** blocking frame reader: a [`FrameBuffer`] fed from
/// an [`io::Read`]. Unlike the one-shot [`read_frame`], a read that
/// stops mid-frame — a `SO_RCVTIMEO` timeout between the length
/// prefix and the payload, say — returns the io error but *keeps the
/// partial frame buffered*; the next call resumes exactly where the
/// stream stopped instead of desyncing on the payload bytes.
#[derive(Default)]
pub struct FrameReader {
    buf: FrameBuffer,
}

impl FrameReader {
    /// A reader with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads until one complete frame is available; `Ok(None)` on a
    /// clean EOF at a frame boundary. `WouldBlock`/`TimedOut` surface
    /// as [`ServeError::Io`] with all partial state preserved — call
    /// again to resume.
    #[allow(clippy::type_complexity)]
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
        loop {
            if let Some(f) = self.buf.next_frame()? {
                return Ok(Some(f));
            }
            let mut chunk = [0u8; 16 * 1024];
            match r.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.buffered() == 0 {
                        return Ok(None);
                    }
                    return Err(ServeError::corrupt("peer closed mid-frame"));
                }
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    /// Complete frames already buffered but not yet returned can make
    /// this nonzero even between requests; mid-frame bytes always do.
    pub fn buffered(&self) -> usize {
        self.buf.buffered()
    }
}

/// Builds one complete wire frame — `[u32 LE len][u8 type]` followed
/// by an optional varint request id (negotiated v3) and the payload —
/// into `buf`, which is cleared first. Encoding straight into a
/// caller-owned (pooled) buffer is what keeps the server's response
/// path allocation-free in steady state.
pub fn encode_frame_into<F: FnOnce(&mut Vec<u8>) -> u8>(
    buf: &mut Vec<u8>,
    request_id: Option<u64>,
    encode: F,
) -> Result<(), ServeError> {
    buf.clear();
    buf.extend_from_slice(&[0, 0, 0, 0, 0]);
    if let Some(id) = request_id {
        put_varint(buf, id);
    }
    let ty = encode(buf);
    let len = buf.len() - 5;
    if len > MAX_FRAME as usize {
        return Err(ServeError::FrameTooLarge {
            len: len as u64,
            max: u64::from(MAX_FRAME),
        });
    }
    buf[..4].copy_from_slice(&(len as u32).to_le_bytes());
    buf[4] = ty;
    Ok(())
}

/// Splits the varint request-id prefix off a v3 frame payload,
/// returning `(id, rest-of-payload)`.
pub fn split_request_id(payload: &[u8]) -> Result<(u64, &[u8]), ServeError> {
    let mut r = wire::Reader::new(payload);
    let id = r.varint("request id").map_err(ServeError::from)?;
    let rest = &payload[payload.len() - r.remaining()..];
    Ok((id, rest))
}

/// A bounds-checked cursor over one received payload; every accessor
/// returns a typed [`ServeError`] on truncation.
pub struct Reader<'a> {
    inner: wire::Reader<'a>,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            inner: wire::Reader::new(buf),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }

    /// One byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        self.inner.u8(what).map_err(ServeError::from)
    }

    /// Fixed u16, little-endian.
    pub fn u16(&mut self, what: &str) -> Result<u16, ServeError> {
        self.inner.u16(what).map_err(ServeError::from)
    }

    /// IEEE-754 `f64`, little-endian bits.
    pub fn f64(&mut self, what: &str) -> Result<f64, ServeError> {
        self.inner.f64(what).map_err(ServeError::from)
    }

    /// LEB128 varint.
    pub fn varint(&mut self, what: &str) -> Result<u64, ServeError> {
        self.inner.varint(what).map_err(ServeError::from)
    }

    /// A varint that must fit a `usize` count bounded by what the
    /// payload could possibly hold (one byte per element minimum) —
    /// the guard that keeps corrupt counts from driving allocations.
    pub fn count(&mut self, what: &str) -> Result<usize, ServeError> {
        self.inner.count(what).map_err(ServeError::from)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], ServeError> {
        self.inner.bytes(what).map_err(ServeError::from)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str_(&mut self, what: &str) -> Result<String, ServeError> {
        self.inner.str_(what).map_err(ServeError::from)
    }

    /// Asserts the payload was fully consumed (trailing bytes are a
    /// protocol violation, they would hide framing bugs).
    pub fn finish(self, what: &str) -> Result<(), ServeError> {
        self.inner.finish(what).map_err(ServeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"hello").unwrap();
        let mut r = &buf[..];
        let (ty, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(ty, 0x42);
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_refused_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0x01);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, ServeError::FrameTooLarge { .. }));
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, 0x07, b"abcdef").unwrap();
        for len in 1..full.len() {
            let err = read_frame(&mut &full[..len]).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt { .. }),
                "prefix {len}: {err:?}"
            );
        }
    }

    #[test]
    fn varint_roundtrip_and_overflow() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v);
            r.finish("v").unwrap();
        }
        // 10 continuation bytes with a large final byte overflow u64.
        let bad = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(Reader::new(&bad).varint("v").is_err());
    }

    #[test]
    fn reader_guards_counts_and_trailing_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1_000_000); // count far beyond the payload
        assert!(Reader::new(&buf).count("items").is_err());

        let mut buf = Vec::new();
        put_str(&mut buf, "ok");
        buf.push(0xaa);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str_("s").unwrap(), "ok");
        assert!(r.finish("s").is_err());
    }
}
