//! The transport layer: one address type and one stream type over
//! both TCP and Unix-domain sockets (std only, no async runtime —
//! the server multiplexes nonblocking sockets over a `poll(2)` shim,
//! the client blocks).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens / a client dials.
///
/// Spellings accepted by [`ServeAddr::parse`]:
/// `unix:/path/to.sock`, `tcp:host:port`, or a bare `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeAddr {
    /// A TCP endpoint (`host:port`; port `0` binds an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ServeAddr {
    /// Parses an address spelling; `None` when it is neither a
    /// `unix:` path nor something with a port.
    pub fn parse(s: &str) -> Option<ServeAddr> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return None;
            }
            return Some(ServeAddr::Unix(PathBuf::from(path)));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        // Minimal sanity: must contain a colon separating a port.
        let (_, port) = hostport.rsplit_once(':')?;
        port.parse::<u16>().ok()?;
        Some(ServeAddr::Tcp(hostport.to_owned()))
    }
}

impl fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected stream of either flavor.
#[derive(Debug)]
pub enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Dials `addr`.
    pub fn connect(addr: &ServeAddr) -> io::Result<Conn> {
        match addr {
            ServeAddr::Tcp(hp) => Ok(Conn::Tcp(TcpStream::connect(hp.as_str())?)),
            ServeAddr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
        }
    }

    /// A second handle to the same socket (used by the server to
    /// force-close connections on shutdown).
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Shuts both directions down, unblocking any reader.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    /// Bounds how long a blocking read may wait (`None` = forever).
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Switches the socket between blocking and nonblocking mode (the
    /// server's event loop runs every connection nonblocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Disables Nagle batching on TCP (no-op for Unix sockets):
    /// request/response frames are latency-sensitive and already
    /// written coalesced.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nodelay(true),
            Conn::Unix(_) => Ok(()),
        }
    }
}

impl AsRawFd for Conn {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    /// Gather-write (`writev`): the server's flush path hands a whole
    /// queue of pipelined response frames to the kernel in one
    /// syscall instead of one per frame.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write_vectored(bufs),
            Conn::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener of either flavor.
#[derive(Debug)]
pub enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr`. A stale Unix socket file left by a crashed
    /// daemon is removed first (binding would otherwise fail with
    /// `AddrInUse` forever).
    pub fn bind(addr: &ServeAddr) -> io::Result<Listener> {
        match addr {
            ServeAddr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            ServeAddr::Unix(p) => {
                if p.exists() && UnixStream::connect(p).is_err() {
                    let _ = std::fs::remove_file(p);
                }
                Ok(Listener::Unix(UnixListener::bind(p)?))
            }
        }
    }

    /// Accepts one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            Listener::Unix(l) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }

    /// Switches the listener between blocking and nonblocking accept.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The bound address with any ephemeral port resolved — what a
    /// client should dial.
    pub fn local_addr(&self) -> io::Result<ServeAddr> {
        match self {
            Listener::Tcp(l) => Ok(ServeAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(ServeAddr::Unix(path.to_path_buf()))
            }
        }
    }
}

impl AsRawFd for Listener {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing() {
        assert_eq!(
            ServeAddr::parse("unix:/tmp/dgs.sock"),
            Some(ServeAddr::Unix(PathBuf::from("/tmp/dgs.sock")))
        );
        assert_eq!(
            ServeAddr::parse("tcp:127.0.0.1:7311"),
            Some(ServeAddr::Tcp("127.0.0.1:7311".into()))
        );
        assert_eq!(
            ServeAddr::parse("127.0.0.1:0"),
            Some(ServeAddr::Tcp("127.0.0.1:0".into()))
        );
        assert_eq!(ServeAddr::parse("no-port"), None);
        assert_eq!(ServeAddr::parse("host:notaport"), None);
        assert_eq!(ServeAddr::parse("unix:"), None);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in ["unix:/tmp/x.sock", "tcp:127.0.0.1:80"] {
            let a = ServeAddr::parse(s).unwrap();
            assert_eq!(ServeAddr::parse(&a.to_string()), Some(a));
        }
    }
}
