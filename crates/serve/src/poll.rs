//! A hand-rolled `poll(2)` shim: the readiness primitive behind the
//! event loop in [`crate::server`], with no dependency beyond std.
//!
//! std exposes nonblocking sockets (`set_nonblocking`) and raw fds
//! (`AsRawFd`) but no readiness multiplexer, so this module declares
//! the one libc symbol it needs itself — `poll` has a POSIX-stable
//! ABI, and std already links libc on every unix target. The wrapper
//! is level-triggered and rebuilds its fd array per call, which is
//! O(n) per iteration but carries no per-fd registration state; at
//! the 10k-connection scale the server targets, one `poll` scan is
//! tens of microseconds, far below a single query's service time.
//!
//! [`WakePipe`] is the classic self-pipe trick: worker threads finish
//! requests off the event thread and must interrupt its `poll` sleep
//! to get responses flushed; writing one byte to a socketpair the
//! poller watches does exactly that.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// Readable (`POLLIN`).
const POLLIN: i16 = 0x0001;
/// Writable (`POLLOUT`).
const POLLOUT: i16 = 0x0004;
/// Error condition (`POLLERR`, revents only).
const POLLERR: i16 = 0x0008;
/// Peer hung up (`POLLHUP`, revents only).
const POLLHUP: i16 = 0x0010;
/// Invalid fd (`POLLNVAL`, revents only).
const POLLNVAL: i16 = 0x0020;

/// `struct pollfd` — identical layout on every unix libc.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

#[cfg(target_os = "macos")]
type NFds = u32;
#[cfg(not(target_os = "macos"))]
type NFds = std::os::raw::c_ulong;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// A reusable `poll(2)` fd set: push interests, poll once, read back
/// readiness by the index `push` returned.
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> PollSet {
        PollSet { fds: Vec::new() }
    }

    /// Forgets every registered fd (call once per loop iteration).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with the given interests; the returned index
    /// addresses this fd in [`PollSet::readable`]/[`PollSet::writable`]
    /// after the next [`PollSet::poll`].
    pub fn push(&mut self, fd: RawFd, want_read: bool, want_write: bool) -> usize {
        let mut events = 0;
        if want_read {
            events |= POLLIN;
        }
        if want_write {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever); returns how many are ready.
    /// `EINTR` is retried.
    pub fn poll(&mut self, timeout: Option<std::time::Duration>) -> io::Result<usize> {
        let timeout_ms: std::os::raw::c_int = match timeout {
            // poll's granularity is 1ms; round up so a short deadline
            // is a short sleep, not a busy spin at timeout 0.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as i32,
            None => -1,
        };
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as NFds, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// True when the fd at `idx` has data to read — or an error/hangup
    /// to observe, which a read surfaces (0 bytes / an io error).
    pub fn readable(&self, idx: usize) -> bool {
        self.fds[idx].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True when the fd at `idx` accepts writes (or errored — the
    /// write surfaces it).
    pub fn writable(&self, idx: usize) -> bool {
        self.fds[idx].revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

impl Default for PollSet {
    fn default() -> Self {
        PollSet::new()
    }
}

/// The self-pipe: the event thread polls [`WakePipe::poll_fd`]; any
/// other thread calls [`WakeHandle::wake`] to interrupt its sleep.
pub struct WakePipe {
    reader: UnixStream,
    writer: UnixStream,
}

/// The cloneable writing end of a [`WakePipe`].
#[derive(Clone)]
pub struct WakeHandle {
    writer: std::sync::Arc<UnixStream>,
}

impl WakePipe {
    /// A connected nonblocking socketpair.
    pub fn new() -> io::Result<WakePipe> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(WakePipe { reader, writer })
    }

    /// The fd to register for read interest.
    pub fn poll_fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// A handle other threads use to wake the poller.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            writer: std::sync::Arc::new(self.writer.try_clone().expect("clone wake pipe writer")),
        }
    }

    /// Consumes any pending wake bytes (call when `poll_fd` reports
    /// readable, before re-polling).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
    }
}

impl WakeHandle {
    /// Wakes the poller. A full pipe means a wake is already pending —
    /// that is success, not an error.
    pub fn wake(&self) {
        let _ = (&*self.writer).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_reports_readable_after_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut set = PollSet::new();
        let idx = set.push(b.as_raw_fd(), true, false);
        assert_eq!(set.poll(Some(Duration::from_millis(10))).unwrap(), 0);
        assert!(!set.readable(idx));

        a.write_all(b"x").unwrap();
        set.clear();
        let idx = set.push(b.as_raw_fd(), true, false);
        assert_eq!(set.poll(Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(set.readable(idx));
        assert!(!set.writable(idx), "write interest was not registered");
    }

    #[test]
    fn wake_pipe_interrupts_a_sleeping_poll() {
        let mut pipe = WakePipe::new().unwrap();
        let handle = pipe.handle();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.wake();
        });
        let mut set = PollSet::new();
        let idx = set.push(pipe.poll_fd(), true, false);
        let start = Instant::now();
        set.poll(Some(Duration::from_secs(10))).unwrap();
        assert!(set.readable(idx));
        assert!(start.elapsed() < Duration::from_secs(5), "poll never woke");
        pipe.drain();
        // Drained: the next poll times out instead of spinning on a
        // stale wake byte.
        set.clear();
        let idx = set.push(pipe.poll_fd(), true, false);
        set.poll(Some(Duration::from_millis(10))).unwrap();
        assert!(!set.readable(idx));
        waker.join().unwrap();
    }
}
