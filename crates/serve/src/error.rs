//! Typed errors of the serving layer.
//!
//! Everything that can go wrong on the wire — truncation, corruption,
//! a version the peer does not speak, an oversized frame, a
//! server-signalled failure — is a [`ServeError`] variant. Decoders
//! never panic on malformed bytes.

use dgs_core::DgsError;
use std::fmt;
use std::io;

/// Error codes carried by `ERROR` frames. The numeric values are part
/// of the wire protocol (see `docs/PROTOCOL.md`) and must never be
/// reused for a different meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The pattern itself is malformed ([`DgsError::InvalidPattern`]).
    InvalidPattern = 1,
    /// The requested engine's precondition does not hold
    /// ([`DgsError::Unsupported`]).
    Unsupported = 2,
    /// The distributed run failed ([`DgsError::ExecutorFailed`]).
    ExecutorFailed = 3,
    /// A graph delta is malformed ([`DgsError::InvalidDelta`]).
    InvalidDelta = 4,
    /// The server could not decode the request frame.
    Malformed = 5,
    /// Admission control: the server is at its connection limit.
    Busy = 6,
    /// The server is shutting down and no longer serves requests.
    ShuttingDown = 7,
    /// Any other server-side failure.
    Internal = 8,
    /// The request named (or the connection is routed to) a session
    /// the server does not host.
    NoSuchSession = 9,
    /// `UNSUBSCRIBE` named a subscription this connection does not
    /// hold (never registered, already torn down, or another
    /// connection's).
    NoSuchSubscription = 10,
}

impl ErrorCode {
    /// The wire representation.
    pub fn to_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire error code; unknown values map to
    /// [`ErrorCode::Internal`] so old clients survive new servers.
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::InvalidPattern,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::ExecutorFailed,
            4 => ErrorCode::InvalidDelta,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::Busy,
            7 => ErrorCode::ShuttingDown,
            9 => ErrorCode::NoSuchSession,
            10 => ErrorCode::NoSuchSubscription,
            _ => ErrorCode::Internal,
        }
    }

    /// The code a [`DgsError`] maps to on the wire.
    pub fn of_dgs(e: &DgsError) -> ErrorCode {
        match e {
            DgsError::InvalidPattern { .. } => ErrorCode::InvalidPattern,
            DgsError::Unsupported { .. } => ErrorCode::Unsupported,
            DgsError::ExecutorFailed { .. } => ErrorCode::ExecutorFailed,
            DgsError::InvalidDelta { .. } => ErrorCode::InvalidDelta,
            // A failed site is an executor-level failure on the wire;
            // the reason string names the site.
            DgsError::SiteFailed { .. } => ErrorCode::ExecutorFailed,
        }
    }
}

/// Why a serving-layer operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying socket failure (includes the peer hanging up
    /// mid-frame).
    Io(io::Error),
    /// The peer's bytes violate the protocol: bad magic, a frame type
    /// this side does not know, a payload that does not decode, or
    /// trailing garbage.
    Corrupt {
        /// What was wrong.
        message: String,
    },
    /// The peer speaks no protocol version we do.
    UnsupportedVersion {
        /// Our highest supported version.
        ours: u8,
        /// The version the peer offered.
        theirs: u8,
    },
    /// A frame declared a length above the negotiated maximum —
    /// refused before allocating.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The maximum this side accepts.
        max: u64,
    },
    /// The server answered with an `ERROR` frame.
    Remote {
        /// The typed error code.
        code: ErrorCode,
        /// The server's human-readable description.
        message: String,
    },
}

impl ServeError {
    pub(crate) fn corrupt(message: impl Into<String>) -> ServeError {
        ServeError::Corrupt {
            message: message.into(),
        }
    }

    /// True when the server rejected the connection for capacity
    /// (admission-control backpressure) — the retryable case.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ServeError::Remote {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Corrupt { message } => write!(f, "protocol violation: {message}"),
            ServeError::UnsupportedVersion { ours, theirs } => write!(
                f,
                "version mismatch: peer offered v{theirs}, we support up to v{ours}"
            ),
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::InvalidPattern,
            ErrorCode::Unsupported,
            ErrorCode::ExecutorFailed,
            ErrorCode::InvalidDelta,
            ErrorCode::Malformed,
            ErrorCode::Busy,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::NoSuchSession,
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), code);
        }
        // Unknown codes degrade to Internal instead of failing.
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Internal);
    }

    #[test]
    fn dgs_error_mapping() {
        let e = DgsError::InvalidPattern {
            reason: "empty".into(),
        };
        assert_eq!(ErrorCode::of_dgs(&e), ErrorCode::InvalidPattern);
    }

    #[test]
    fn busy_is_retryable() {
        let e = ServeError::Remote {
            code: ErrorCode::Busy,
            message: "at capacity".into(),
        };
        assert!(e.is_busy());
        assert!(!ServeError::corrupt("x").is_busy());
    }
}
