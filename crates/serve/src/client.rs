//! The typed remote client: one blocking connection speaking the
//! frame protocol, with a method per request.
//!
//! ```no_run
//! use dgs_serve::{DgsClient, ServeAddr};
//!
//! let addr = ServeAddr::parse("127.0.0.1:7311").unwrap();
//! let mut client = DgsClient::connect(&addr).unwrap();
//! let info = client.graph_info().unwrap();
//! println!("serving |V| = {}, |E| = {}", info.nodes, info.edges);
//! ```

use crate::error::{ErrorCode, ServeError};
use crate::proto::{
    frame, Answer, DeltaSummary, GraphInfo, Request, Response, SessionInfo, SessionOptions,
    WireAlgorithm, WireCacheStats, WireCompression, WireMetrics, WIRE_MAGIC, WIRE_VERSION,
};
use crate::transport::{Conn, ServeAddr};
use crate::wire::{read_frame, write_frame};
use dgs_core::GraphDelta;
use dgs_graph::{Graph, Pattern};

/// A connected client session.
pub struct DgsClient {
    conn: Conn,
    version: u8,
}

impl DgsClient {
    /// Dials `addr` and performs the version handshake. A server at
    /// capacity answers the handshake with a typed `Busy` rejection
    /// ([`ServeError::is_busy`]).
    pub fn connect(addr: &ServeAddr) -> Result<DgsClient, ServeError> {
        let mut conn = Conn::connect(addr)?;
        let mut hello = Vec::with_capacity(5);
        hello.extend_from_slice(&WIRE_MAGIC);
        hello.push(WIRE_VERSION);
        write_frame(&mut conn, frame::HELLO, &hello)?;
        let Some((ty, payload)) = read_frame(&mut conn)? else {
            return Err(ServeError::corrupt("server closed during handshake"));
        };
        match ty {
            frame::WELCOME => {
                if payload.len() != 5 || payload[..4] != WIRE_MAGIC {
                    return Err(ServeError::corrupt("malformed WELCOME"));
                }
                let version = payload[4];
                if !(1..=WIRE_VERSION).contains(&version) {
                    return Err(ServeError::UnsupportedVersion {
                        ours: WIRE_VERSION,
                        theirs: version,
                    });
                }
                Ok(DgsClient { conn, version })
            }
            frame::ERROR => match Response::decode(ty, &payload)? {
                Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                _ => unreachable!("ERROR frames decode to Response::Error"),
            },
            other => Err(ServeError::corrupt(format!(
                "expected WELCOME, got frame {other:#04x}"
            ))),
        }
    }

    /// Parses and dials an address spelling (`host:port`,
    /// `tcp:host:port` or `unix:/path`).
    pub fn connect_str(addr: &str) -> Result<DgsClient, ServeError> {
        let addr = ServeAddr::parse(addr)
            .ok_or_else(|| ServeError::corrupt(format!("unparseable address '{addr}'")))?;
        DgsClient::connect(&addr)
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// One request/response exchange; server `ERROR` frames become
    /// [`ServeError::Remote`].
    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let (ty, payload) = req.encode();
        write_frame(&mut self.conn, ty, &payload)?;
        let Some((ty, payload)) = read_frame(&mut self.conn)? else {
            return Err(ServeError::corrupt("server closed mid-request"));
        };
        match Response::decode(ty, &payload)? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(what: &str) -> Result<T, ServeError> {
        Err(ServeError::corrupt(format!(
            "server answered with the wrong frame for {what}"
        )))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Self::unexpected("PING"),
        }
    }

    /// The loaded graph and fragmentation summary.
    pub fn graph_info(&mut self) -> Result<GraphInfo, ServeError> {
        match self.call(&Request::GraphInfo)? {
            Response::GraphInfo(info) => Ok(info),
            _ => Self::unexpected("GRAPH_INFO"),
        }
    }

    /// A data-selecting query; the answer carries the full relation.
    pub fn query(&mut self, q: &Pattern, algorithm: WireAlgorithm) -> Result<Answer, ServeError> {
        match self.call(&Request::Query {
            pattern: q.clone(),
            algorithm,
            boolean: false,
        })? {
            Response::Answer(a) => Ok(a),
            _ => Self::unexpected("QUERY"),
        }
    }

    /// A Boolean query (`rows` comes back empty; read `is_match`).
    pub fn query_boolean(
        &mut self,
        q: &Pattern,
        algorithm: WireAlgorithm,
    ) -> Result<Answer, ServeError> {
        match self.call(&Request::Query {
            pattern: q.clone(),
            algorithm,
            boolean: true,
        })? {
            Response::Answer(a) => Ok(a),
            _ => Self::unexpected("QUERY (boolean)"),
        }
    }

    /// A batched query; per-item outcomes in input order plus batch
    /// totals.
    #[allow(clippy::type_complexity)]
    pub fn query_batch(
        &mut self,
        patterns: &[Pattern],
        algorithm: WireAlgorithm,
    ) -> Result<(Vec<Result<Answer, (ErrorCode, String)>>, WireMetrics), ServeError> {
        match self.call(&Request::QueryBatch {
            patterns: patterns.to_vec(),
            algorithm,
        })? {
            Response::BatchAnswer { items, total } => Ok((items, total)),
            _ => Self::unexpected("QUERY_BATCH"),
        }
    }

    /// Absorbs a batch of edge updates into the served session.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaSummary, ServeError> {
        match self.call(&Request::ApplyDelta {
            insert_edges: delta
                .insert_edges
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
            delete_edges: delta
                .delete_edges
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
        })? {
            Response::DeltaApplied(d) => Ok(d),
            _ => Self::unexpected("APPLY_DELTA"),
        }
    }

    /// Counters of the server-side pattern-result cache (`None` when
    /// disabled).
    pub fn cache_stats(&mut self) -> Result<Option<WireCacheStats>, ServeError> {
        match self.call(&Request::CacheStats)? {
            Response::CacheStats(s) => Ok(s),
            _ => Self::unexpected("CACHE_STATS"),
        }
    }

    /// The served session's compressed-leg summary (`None` when built
    /// without compression).
    pub fn compression_info(&mut self) -> Result<Option<WireCompression>, ServeError> {
        match self.call(&Request::CompressionInfo)? {
            Response::CompressionInfo(c) => Ok(c),
            _ => Self::unexpected("COMPRESSION_INFO"),
        }
    }

    /// Replaces the served session with a freshly built one (admin).
    pub fn load_graph(
        &mut self,
        graph: &Graph,
        options: &SessionOptions,
    ) -> Result<(u64, u64, u16), ServeError> {
        match self.call(&Request::LoadGraph {
            graph: graph.clone(),
            options: options.clone(),
        })? {
            Response::Loaded {
                nodes,
                edges,
                sites,
            } => Ok((nodes, edges, sites)),
            _ => Self::unexpected("LOAD_GRAPH"),
        }
    }

    /// Creates (or replaces) a named session on the server.
    pub fn session_create(
        &mut self,
        name: &str,
        graph: &Graph,
        options: &SessionOptions,
    ) -> Result<SessionInfo, ServeError> {
        match self.call(&Request::SessionCreate {
            name: name.to_owned(),
            graph: graph.clone(),
            options: options.clone(),
        })? {
            Response::SessionCreated(info) => Ok(info),
            _ => Self::unexpected("SESSION_CREATE"),
        }
    }

    /// Every session the server hosts, sorted by name.
    pub fn session_list(&mut self) -> Result<Vec<SessionInfo>, ServeError> {
        match self.call(&Request::SessionList)? {
            Response::Sessions(infos) => Ok(infos),
            _ => Self::unexpected("SESSION_LIST"),
        }
    }

    /// Drops a named session ([`ErrorCode::NoSuchSession`] when the
    /// server does not host it).
    pub fn session_drop(&mut self, name: &str) -> Result<(), ServeError> {
        match self.call(&Request::SessionDrop {
            name: name.to_owned(),
        })? {
            Response::SessionDropped => Ok(()),
            _ => Self::unexpected("SESSION_DROP"),
        }
    }

    /// Points this connection at the named sessions: one name routes
    /// every request there; several fan queries out with merged
    /// answers; an **empty list** fans out over all hosted sessions.
    /// Returns how many sessions the route resolves to right now.
    pub fn session_route<S: AsRef<str>>(&mut self, sessions: &[S]) -> Result<u64, ServeError> {
        match self.call(&Request::SessionRoute {
            sessions: sessions.iter().map(|s| s.as_ref().to_owned()).collect(),
        })? {
            Response::SessionRouted { sessions } => Ok(sessions),
            _ => Self::unexpected("SESSION_ROUTE"),
        }
    }

    /// Stops the daemon (admin). The connection is spent afterwards.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Self::unexpected("SHUTDOWN"),
        }
    }
}
