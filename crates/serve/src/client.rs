//! The typed remote client: one connection speaking the frame
//! protocol, with a method per request — and, at wire v3, a
//! **pipelined** submit/await API that keeps many requests in flight
//! on the one connection.
//!
//! ```no_run
//! use dgs_serve::{DgsClient, ServeAddr};
//!
//! let addr = ServeAddr::parse("127.0.0.1:7311").unwrap();
//! let mut client = DgsClient::connect(&addr).unwrap();
//! let info = client.graph_info().unwrap();
//! println!("serving |V| = {}, |E| = {}", info.nodes, info.edges);
//!
//! // Pipelined: submit a window, then await in any order.
//! let ids: Vec<_> = (0..16)
//!     .map(|_| client.submit(&dgs_serve::Request::Ping).unwrap())
//!     .collect();
//! for id in ids {
//!     client.await_response(id).unwrap();
//! }
//! ```

use crate::error::{ErrorCode, ServeError};
use crate::proto::{
    frame, Answer, DeltaSummary, GraphInfo, MatchDiff, Request, Response, SessionInfo,
    SessionOptions, SubEventKind, WireAlgorithm, WireCacheStats, WireCompression, WireMetrics,
    WireTrace, WIRE_MAGIC, WIRE_VERSION,
};
use crate::transport::{Conn, ServeAddr};
use crate::wire::{put_varint, split_request_id, write_frame, FrameReader};
use dgs_core::GraphDelta;
use dgs_graph::{Graph, Pattern};
use dgs_net::MetricsSnapshot;
use std::collections::{HashMap, HashSet, VecDeque};

/// One push from a live subscription (wire v4): a match-set diff, or
/// a typed lifecycle event ending the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// The subscribed pattern's match set changed: `added`/`removed`
    /// `(query node, data node)` pairs, tagged with the generation the
    /// stream is now at.
    Diff(MatchDiff),
    /// The subscription ended (overflow, the session was dropped, or
    /// the server is draining). No further frames follow for this
    /// `sub_id`.
    Event {
        /// Which subscription.
        sub_id: u64,
        /// Why it ended.
        kind: SubEventKind,
    },
}

/// A connected client session.
pub struct DgsClient {
    conn: Conn,
    version: u8,
    /// Resumable reader: a timeout mid-frame keeps the partial bytes
    /// buffered instead of desyncing the stream.
    reader: FrameReader,
    /// The next request id to assign (v3; ids start at 1 — the server
    /// reserves 0 for connection-level frames).
    next_id: u64,
    /// Ids submitted but not yet awaited.
    outstanding: HashSet<u64>,
    /// Responses that arrived while awaiting a different id.
    stash: HashMap<u64, Response>,
    /// Subscription pushes (id-0 `MATCH_DIFF`/`SUB_EVENT` frames) that
    /// arrived while awaiting a response; drained by
    /// [`DgsClient::poll_event`]/[`DgsClient::next_event`].
    events: VecDeque<SubscriptionEvent>,
    /// Encoded submits not yet handed to the kernel: a pipelined
    /// burst goes out as one write when an await needs the wire (or
    /// the buffer passes [`SUBMIT_FLUSH_BYTES`]), not one syscall per
    /// request.
    wbuf: Vec<u8>,
}

/// Pending submits flush to the socket once the batch buffer reaches
/// this size, even before any await.
const SUBMIT_FLUSH_BYTES: usize = 64 * 1024;

impl DgsClient {
    /// Dials `addr` and performs the version handshake. A server at
    /// capacity answers the handshake with a typed `Busy` rejection
    /// ([`ServeError::is_busy`]).
    pub fn connect(addr: &ServeAddr) -> Result<DgsClient, ServeError> {
        let mut conn = Conn::connect(addr)?;
        let _ = conn.set_nodelay();
        let mut hello = Vec::with_capacity(5);
        hello.extend_from_slice(&WIRE_MAGIC);
        hello.push(WIRE_VERSION);
        write_frame(&mut conn, frame::HELLO, &hello)?;
        let mut reader = FrameReader::new();
        let Some((ty, payload)) = reader.read_frame(&mut conn)? else {
            return Err(ServeError::corrupt("server closed during handshake"));
        };
        match ty {
            frame::WELCOME => {
                // Tolerate trailing bytes after the version — a
                // future server's extensions, same stance the server
                // takes on HELLO.
                if payload.len() < 5 || payload[..4] != WIRE_MAGIC {
                    return Err(ServeError::corrupt("malformed WELCOME"));
                }
                let version = payload[4];
                if !(1..=WIRE_VERSION).contains(&version) {
                    return Err(ServeError::UnsupportedVersion {
                        ours: WIRE_VERSION,
                        theirs: version,
                    });
                }
                Ok(DgsClient {
                    conn,
                    version,
                    reader,
                    next_id: 1,
                    outstanding: HashSet::new(),
                    stash: HashMap::new(),
                    events: VecDeque::new(),
                    wbuf: Vec::new(),
                })
            }
            frame::ERROR => match Response::decode(ty, &payload)? {
                Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                _ => unreachable!("ERROR frames decode to Response::Error"),
            },
            other => Err(ServeError::corrupt(format!(
                "expected WELCOME, got frame {other:#04x}"
            ))),
        }
    }

    /// Parses and dials an address spelling (`host:port`,
    /// `tcp:host:port` or `unix:/path`).
    pub fn connect_str(addr: &str) -> Result<DgsClient, ServeError> {
        let addr = ServeAddr::parse(addr)
            .ok_or_else(|| ServeError::corrupt(format!("unparseable address '{addr}'")))?;
        DgsClient::connect(&addr)
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Bounds how long a blocking read may wait (`None` = forever).
    /// A timed-out [`DgsClient::next_event`] surfaces as
    /// [`ServeError::Io`] with kind `WouldBlock`/`TimedOut`; the
    /// resumable frame reader keeps any partial bytes, so the
    /// connection stays usable afterwards — this is how a subscriber
    /// polls a stream that may have gone quiet.
    pub fn set_read_timeout(&self, d: Option<std::time::Duration>) -> std::io::Result<()> {
        self.conn.set_read_timeout(d)
    }

    /// Requests submitted but not yet awaited.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// **Pipelined** submit (wire v3 only): encodes the request under
    /// a fresh id and returns immediately — the server may answer
    /// this and other submitted requests in any order; collect each
    /// with [`DgsClient::await_response`]. Submits are batched: the
    /// bytes reach the kernel at the next `await_response` (which
    /// always flushes first) or once the batch passes 64 KiB, so a
    /// burst of submits costs one syscall. A submit never awaited
    /// *and* never followed by an await may therefore never be sent.
    pub fn submit(&mut self, req: &Request) -> Result<u64, ServeError> {
        if self.version < 3 {
            return Err(ServeError::UnsupportedVersion {
                ours: WIRE_VERSION,
                theirs: self.version,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        // Encode straight into the batch buffer: the frame reaches
        // the kernel at the next await (or when the buffer fills),
        // so a burst of submits costs one syscall, not one each.
        let start = self.wbuf.len();
        self.wbuf.extend_from_slice(&[0, 0, 0, 0, 0]);
        put_varint(&mut self.wbuf, id);
        let ty = req.encode_into(&mut self.wbuf);
        let len = (self.wbuf.len() - start - 5) as u32;
        self.wbuf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        self.wbuf[start + 4] = ty;
        self.outstanding.insert(id);
        if self.wbuf.len() >= SUBMIT_FLUSH_BYTES {
            self.flush_submits()?;
        }
        Ok(id)
    }

    /// Hands every batched submit to the kernel.
    fn flush_submits(&mut self) -> Result<(), ServeError> {
        if !self.wbuf.is_empty() {
            std::io::Write::write_all(&mut self.conn, &self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Blocks for the response to a submitted `id`, reading (and
    /// stashing) other responses that arrive first. Server `ERROR`
    /// frames for this id become [`ServeError::Remote`]; a response
    /// carrying an id this client never submitted is a protocol
    /// violation and surfaces as a typed corrupt error.
    pub fn await_response(&mut self, id: u64) -> Result<Response, ServeError> {
        if !self.outstanding.contains(&id) && !self.stash.contains_key(&id) {
            return Err(ServeError::corrupt(format!(
                "request id {id} was never submitted (or already awaited)"
            )));
        }
        self.flush_submits()?;
        loop {
            if let Some(resp) = self.stash.remove(&id) {
                self.outstanding.remove(&id);
                return match resp {
                    Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                    resp => Ok(resp),
                };
            }
            let Some((ty, payload)) = self.reader.read_frame(&mut self.conn)? else {
                return Err(ServeError::corrupt("server closed mid-request"));
            };
            let (got, body) = split_request_id(&payload)?;
            if got != 0 && !self.outstanding.contains(&got) {
                return Err(ServeError::corrupt(format!(
                    "server answered unknown request id {got}"
                )));
            }
            let resp = Response::decode(ty, body)?;
            if got == 0 {
                // A connection-level frame (id 0). Subscription pushes
                // interleave with pipelined responses by design: queue
                // them for `poll_event`/`next_event` and keep waiting
                // for the awaited id. Anything else — a drain notice,
                // typically — surfaces on whatever await is active.
                match resp {
                    Response::MatchDiff(diff) => {
                        self.events.push_back(SubscriptionEvent::Diff(diff));
                        continue;
                    }
                    Response::SubEvent { sub_id, kind } => {
                        self.events
                            .push_back(SubscriptionEvent::Event { sub_id, kind });
                        continue;
                    }
                    _ => {}
                }
                self.outstanding.remove(&id);
                return match resp {
                    Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                    resp => Ok(resp),
                };
            }
            self.stash.insert(got, resp);
        }
    }

    /// One request/response exchange; server `ERROR` frames become
    /// [`ServeError::Remote`]. At v3 this is submit + await of one
    /// id; at v1/v2 it is the classic id-less exchange.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.call(req)
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        if self.version >= 3 {
            let id = self.submit(req)?;
            return self.await_response(id);
        }
        let (ty, payload) = req.encode();
        write_frame(&mut self.conn, ty, &payload)?;
        let Some((ty, payload)) = self.reader.read_frame(&mut self.conn)? else {
            return Err(ServeError::corrupt("server closed mid-request"));
        };
        match Response::decode(ty, &payload)? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(what: &str) -> Result<T, ServeError> {
        Err(ServeError::corrupt(format!(
            "server answered with the wrong frame for {what}"
        )))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Self::unexpected("PING"),
        }
    }

    /// The loaded graph and fragmentation summary.
    pub fn graph_info(&mut self) -> Result<GraphInfo, ServeError> {
        match self.call(&Request::GraphInfo)? {
            Response::GraphInfo(info) => Ok(info),
            _ => Self::unexpected("GRAPH_INFO"),
        }
    }

    /// A data-selecting query; the answer carries the full relation.
    pub fn query(&mut self, q: &Pattern, algorithm: WireAlgorithm) -> Result<Answer, ServeError> {
        match self.call(&Request::Query {
            pattern: q.clone(),
            algorithm,
            boolean: false,
        })? {
            Response::Answer(a) => Ok(a),
            _ => Self::unexpected("QUERY"),
        }
    }

    /// A Boolean query (`rows` comes back empty; read `is_match`).
    pub fn query_boolean(
        &mut self,
        q: &Pattern,
        algorithm: WireAlgorithm,
    ) -> Result<Answer, ServeError> {
        match self.call(&Request::Query {
            pattern: q.clone(),
            algorithm,
            boolean: true,
        })? {
            Response::Answer(a) => Ok(a),
            _ => Self::unexpected("QUERY (boolean)"),
        }
    }

    /// A batched query; per-item outcomes in input order plus batch
    /// totals.
    #[allow(clippy::type_complexity)]
    pub fn query_batch(
        &mut self,
        patterns: &[Pattern],
        algorithm: WireAlgorithm,
    ) -> Result<(Vec<Result<Answer, (ErrorCode, String)>>, WireMetrics), ServeError> {
        match self.call(&Request::QueryBatch {
            patterns: patterns.to_vec(),
            algorithm,
        })? {
            Response::BatchAnswer { items, total } => Ok((items, total)),
            _ => Self::unexpected("QUERY_BATCH"),
        }
    }

    /// Absorbs a batch of edge updates into the served session.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaSummary, ServeError> {
        match self.call(&Request::ApplyDelta {
            insert_edges: delta
                .insert_edges
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
            delete_edges: delta
                .delete_edges
                .iter()
                .map(|&(u, v)| (u.0, v.0))
                .collect(),
        })? {
            Response::DeltaApplied(d) => Ok(d),
            _ => Self::unexpected("APPLY_DELTA"),
        }
    }

    /// Counters of the server-side pattern-result cache (`None` when
    /// disabled).
    pub fn cache_stats(&mut self) -> Result<Option<WireCacheStats>, ServeError> {
        match self.call(&Request::CacheStats)? {
            Response::CacheStats(s) => Ok(s),
            _ => Self::unexpected("CACHE_STATS"),
        }
    }

    /// The served session's compressed-leg summary (`None` when built
    /// without compression).
    pub fn compression_info(&mut self) -> Result<Option<WireCompression>, ServeError> {
        match self.call(&Request::CompressionInfo)? {
            Response::CompressionInfo(c) => Ok(c),
            _ => Self::unexpected("COMPRESSION_INFO"),
        }
    }

    /// Replaces the served session with a freshly built one (admin).
    pub fn load_graph(
        &mut self,
        graph: &Graph,
        options: &SessionOptions,
    ) -> Result<(u64, u64, u16), ServeError> {
        match self.call(&Request::LoadGraph {
            graph: graph.clone(),
            options: options.clone(),
        })? {
            Response::Loaded {
                nodes,
                edges,
                sites,
            } => Ok((nodes, edges, sites)),
            _ => Self::unexpected("LOAD_GRAPH"),
        }
    }

    /// Creates (or replaces) a named session on the server.
    pub fn session_create(
        &mut self,
        name: &str,
        graph: &Graph,
        options: &SessionOptions,
    ) -> Result<SessionInfo, ServeError> {
        match self.call(&Request::SessionCreate {
            name: name.to_owned(),
            graph: graph.clone(),
            options: options.clone(),
        })? {
            Response::SessionCreated(info) => Ok(info),
            _ => Self::unexpected("SESSION_CREATE"),
        }
    }

    /// Every session the server hosts, sorted by name.
    pub fn session_list(&mut self) -> Result<Vec<SessionInfo>, ServeError> {
        match self.call(&Request::SessionList)? {
            Response::Sessions(infos) => Ok(infos),
            _ => Self::unexpected("SESSION_LIST"),
        }
    }

    /// Drops a named session ([`ErrorCode::NoSuchSession`] when the
    /// server does not host it).
    pub fn session_drop(&mut self, name: &str) -> Result<(), ServeError> {
        match self.call(&Request::SessionDrop {
            name: name.to_owned(),
        })? {
            Response::SessionDropped => Ok(()),
            _ => Self::unexpected("SESSION_DROP"),
        }
    }

    /// Points this connection at the named sessions: one name routes
    /// every request there; several fan queries out with merged
    /// answers; an **empty list** fans out over all hosted sessions.
    /// Returns how many sessions the route resolves to right now.
    pub fn session_route<S: AsRef<str>>(&mut self, sessions: &[S]) -> Result<u64, ServeError> {
        match self.call(&Request::SessionRoute {
            sessions: sessions.iter().map(|s| s.as_ref().to_owned()).collect(),
        })? {
            Response::SessionRouted { sessions } => Ok(sessions),
            _ => Self::unexpected("SESSION_ROUTE"),
        }
    }

    /// Registers a live subscription on the routed session (wire v4).
    /// Returns `(sub_id, generation, rows)`: the subscription id, the
    /// generation label of the snapshot, and the pattern's current
    /// match rows (one sorted node list per query node). From then on
    /// the server pushes [`SubscriptionEvent`]s as deltas apply —
    /// collect them with [`DgsClient::poll_event`] /
    /// [`DgsClient::next_event`]; applying each diff to the snapshot
    /// reproduces every generation's exact match set.
    #[allow(clippy::type_complexity)]
    pub fn subscribe(
        &mut self,
        q: &Pattern,
        algorithm: WireAlgorithm,
    ) -> Result<(u64, u64, Vec<Vec<u32>>), ServeError> {
        if self.version < 4 {
            return Err(ServeError::UnsupportedVersion {
                ours: WIRE_VERSION,
                theirs: self.version,
            });
        }
        match self.call(&Request::Subscribe {
            pattern: q.clone(),
            algorithm,
        })? {
            Response::Subscribed {
                sub_id,
                generation,
                rows,
            } => Ok((sub_id, generation, rows)),
            _ => Self::unexpected("SUBSCRIBE"),
        }
    }

    /// A snapshot of the server's metrics registry (wire v4). Empty
    /// when the server runs with metrics disabled.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        if self.version < 4 {
            return Err(ServeError::UnsupportedVersion {
                ours: WIRE_VERSION,
                theirs: self.version,
            });
        }
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            _ => Self::unexpected("METRICS"),
        }
    }

    /// The server's slow-query log, newest first (wire v4). Empty
    /// unless the server runs with `--slow-ms` and something tripped
    /// it.
    pub fn trace(&mut self) -> Result<Vec<WireTrace>, ServeError> {
        if self.version < 4 {
            return Err(ServeError::UnsupportedVersion {
                ours: WIRE_VERSION,
                theirs: self.version,
            });
        }
        match self.call(&Request::Trace)? {
            Response::Trace(traces) => Ok(traces),
            _ => Self::unexpected("TRACE"),
        }
    }

    /// Tears down a subscription. Diffs already pushed may still be
    /// queued locally (or in flight) and remain readable; no new ones
    /// follow the acknowledgement.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<(), ServeError> {
        match self.call(&Request::Unsubscribe { sub_id })? {
            Response::Unsubscribed => Ok(()),
            _ => Self::unexpected("UNSUBSCRIBE"),
        }
    }

    /// Pops the next already-received subscription push, if any.
    /// Never touches the socket — pushes land in this queue while
    /// responses are awaited.
    pub fn poll_event(&mut self) -> Option<SubscriptionEvent> {
        self.events.pop_front()
    }

    /// Blocks for the next subscription push, reading frames until
    /// one arrives. Responses to outstanding pipelined requests that
    /// arrive first are stashed for their `await_response`; an id-0
    /// error (a drain notice) surfaces as [`ServeError::Remote`].
    pub fn next_event(&mut self) -> Result<SubscriptionEvent, ServeError> {
        self.flush_submits()?;
        loop {
            if let Some(ev) = self.events.pop_front() {
                return Ok(ev);
            }
            let Some((ty, payload)) = self.reader.read_frame(&mut self.conn)? else {
                return Err(ServeError::corrupt("server closed mid-stream"));
            };
            let (got, body) = split_request_id(&payload)?;
            if got != 0 && !self.outstanding.contains(&got) {
                return Err(ServeError::corrupt(format!(
                    "server answered unknown request id {got}"
                )));
            }
            let resp = Response::decode(ty, body)?;
            if got == 0 {
                match resp {
                    Response::MatchDiff(diff) => {
                        self.events.push_back(SubscriptionEvent::Diff(diff));
                    }
                    Response::SubEvent { sub_id, kind } => {
                        self.events
                            .push_back(SubscriptionEvent::Event { sub_id, kind });
                    }
                    Response::Error { code, message } => {
                        return Err(ServeError::Remote { code, message });
                    }
                    other => {
                        return Err(ServeError::corrupt(format!(
                            "unexpected connection-level frame while waiting for a push: {other:?}"
                        )));
                    }
                }
            } else {
                self.stash.insert(got, resp);
            }
        }
    }

    /// Stops the daemon (admin). The connection is spent afterwards.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Self::unexpected("SHUTDOWN"),
        }
    }
}
