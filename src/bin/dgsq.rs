//! `dgsq` — command-line front end for distributed graph simulation.
//!
//! ```text
//! dgsq generate --family web|citation|tree|community|rmat --nodes N [--edges M] [--labels L] [--seed S] --out FILE
//! dgsq query    --graph FILE --pattern FILE[,FILE...] [--algorithm auto|NAME] [--sites K]
//!               [--partition hash|bfs|ldg|tree] [--executor virtual|threaded]
//!               [--seed S] [--boolean] [--matches]
//!               [--cache N] [--compress simeq|bisim] [--compress-threshold X]
//!               [--parallel W] [--repeat R] [--updates OPS.txt]
//! dgsq compress --graph FILE [--method simeq|bisim] [--out FILE]
//! dgsq stats    --graph FILE
//! ```
//!
//! Serving knobs of `query`: `--cache N` sizes the pattern-result
//! cache (0 disables; repeats of the same — or an isomorphic —
//! pattern are then served without a protocol run), `--compress`
//! builds the query-preserving quotient `Gc` and answers on it when
//! its ratio clears `--compress-threshold` (default 0.5),
//! `--parallel W` sets the batch worker pool (0 = one per core), and
//! `--repeat R` re-submits the whole stream `R` times to exercise the
//! cache. Passing several comma-separated pattern files runs them as
//! one batch.
//!
//! `--updates OPS.txt` replays a dynamic-graph workload after the
//! initial pass: the file holds `- u v` (delete edge) and `+ u v`
//! (insert edge) lines, `#` comments, and blank lines as **batch
//! separators**. Each batch is absorbed via `SimEngine::apply_delta` —
//! deletion-only batches keep the cached answers current through
//! distributed incremental maintenance, insertions invalidate and
//! re-plan — and the pattern stream is re-run after every batch so the
//! cache-hit and maintenance accounting is visible.
//!
//! Graphs and patterns use the line-oriented text format of
//! `dgs_graph::io` (`graph|pattern N M`, `n <id> <label>`,
//! `e <src> <dst>`).

use dgs::core::{Algorithm, CompressionMethod, GraphDelta, SimEngine};
use dgs::graph::{io, Graph, NodeId, Pattern};
use dgs::net::ExecutorKind;
use dgs::partition::{bfs_partition, hash_partition, tree_partition, Fragmentation};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::exit;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("dgsq: {msg}");
    exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         dgsq generate --family web|citation|tree|community|rmat --nodes N [--edges M] [--labels L] [--seed S] --out FILE\n  \
         dgsq query --graph FILE --pattern FILE[,FILE...] [--algorithm auto|dgpm|dgpm-nopt|dgpms|dgpmd|dgpmt|match|dishhk|dmes]\n             \
         [--sites K] [--partition hash|bfs|ldg|tree] [--executor virtual|threaded] [--seed S] [--boolean] [--matches]\n             \
         [--cache N] [--compress simeq|bisim] [--compress-threshold X] [--parallel W] [--repeat R] [--updates OPS.txt]\n  \
         dgsq compress --graph FILE [--method simeq|bisim] [--out FILE]\n  \
         dgsq stats --graph FILE"
    );
    exit(2);
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| fail(&format!("expected a --flag, got '{}'", args[i])));
        // Boolean flags take no value.
        if matches!(key, "boolean" | "matches") {
            flags.insert(key.to_owned(), "true".to_owned());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("--{key} requires a value")));
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    flags
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Option<&'a str> {
    flags.get(key).map(String::as_str)
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--{key}: cannot parse '{v}'"))),
    }
}

fn load_graph(path: &str) -> Graph {
    let f = File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    io::read_graph(BufReader::new(f)).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn load_pattern(path: &str) -> Pattern {
    let f = File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    io::read_pattern(BufReader::new(f)).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

/// Parses an update-ops file: `+ u v` / `- u v` lines, `#` comments,
/// blank lines as batch separators.
fn load_updates(path: &str) -> Vec<GraphDelta> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    let mut batches = Vec::new();
    let mut current = GraphDelta::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (op, u, v) = (parts.next(), parts.next(), parts.next());
        let bad = || {
            fail(&format!(
                "{path}:{}: expected '+ u v' or '- u v'",
                lineno + 1
            ))
        };
        let (Some(op), Some(u), Some(v)) = (op, u, v) else {
            bad()
        };
        if parts.next().is_some() {
            // A line with extra tokens describes something this replay
            // cannot faithfully run — reject instead of guessing.
            bad()
        }
        let u = NodeId(u.parse().unwrap_or_else(|_| bad()));
        let v = NodeId(v.parse().unwrap_or_else(|_| bad()));
        match op {
            "+" => current.insert_edges.push((u, v)),
            "-" => current.delete_edges.push((u, v)),
            _ => bad(),
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Replays update batches against the session, re-running the query
/// stream after each batch so the maintenance/invalidation behaviour
/// is visible.
fn replay_updates(engine: &mut SimEngine, algo: &Algorithm, qs: &[Pattern], path: &str) {
    let batches = load_updates(path);
    if batches.is_empty() {
        fail(&format!("{path}: no update ops found"));
    }
    for (i, delta) in batches.iter().enumerate() {
        let report = engine
            .apply_delta(delta)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "delta[{i}]: +{} -{} edges ({} ignored)  crossing +{}/-{}  virtuals +{}/-{}  gen {}",
            report.inserted,
            report.deleted,
            report.ignored,
            report.crossing_inserted,
            report.crossing_deleted,
            report.virtuals_created,
            report.virtuals_retired,
            report.generation
        );
        if report.maintained_entries > 0 {
            println!(
                "  maintained {} cached entr{} incrementally: {} pairs revoked, \
                 {} data msgs ({} B) of falsification traffic",
                report.maintained_entries,
                if report.maintained_entries == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.revoked_pairs,
                report.metrics.data_messages,
                report.metrics.data_bytes
            );
        }
        if report.invalidated_entries > 0 {
            println!(
                "  insertions invalidated {} cached entr{} (next queries re-plan)",
                report.invalidated_entries,
                if report.invalidated_entries == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        }
        let batch = engine.query_batch_with(algo, qs);
        println!(
            "  re-query: {}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} cache hits)",
            batch.succeeded(),
            qs.len(),
            batch.total.virtual_time_ms(),
            batch.total.data_kb(),
            batch.total.cache_hits
        );
        for (qi, r) in batch.reports.iter().enumerate() {
            if let Ok(r) = r {
                if let Some(note) = &r.plan.incremental {
                    println!(
                        "    [{qi}] served from the delta-maintained entry \
                         ({} deletions over {} runs, |Q(G)| = {} pairs)",
                        note.deletions_absorbed,
                        note.maintenance_runs,
                        r.answer().len()
                    );
                }
            }
        }
    }
    if let Some(stats) = engine.cache_stats() {
        println!(
            "cache after updates: {} entries, generation {}  ({} hits, {} misses, {} evictions)",
            stats.entries, stats.generation, stats.hits, stats.misses, stats.evictions
        );
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    use dgs::graph::generate::{dag, random, tree};
    let family = get(flags, "family").unwrap_or_else(|| fail("--family required"));
    let n: usize = num(flags, "nodes", 10_000);
    let m: usize = num(flags, "edges", 5 * n);
    let labels: usize = num(flags, "labels", 15);
    let seed: u64 = num(flags, "seed", 1);
    let out = get(flags, "out").unwrap_or_else(|| fail("--out required"));
    let g = match family {
        "web" => random::web_like(n, m, labels, seed),
        "citation" => dag::citation_like(n, m, labels, seed),
        "tree" => tree::random_tree(n, labels, seed),
        "community" => random::community(n, m, 8, 0.05, labels, seed),
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            dgs::graph::generate::rmat::rmat(
                scale,
                m,
                labels,
                dgs::graph::generate::rmat::RmatParams::graph500(),
                seed,
            )
        }
        other => fail(&format!("unknown family '{other}'")),
    };
    let f = File::create(out).unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
    io::write_graph(&g, std::io::BufWriter::new(f))
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!(
        "wrote {family} graph: {} nodes, {} edges -> {out}",
        g.node_count(),
        g.edge_count()
    );
}

fn cmd_query(flags: &HashMap<String, String>) {
    let g = load_graph(get(flags, "graph").unwrap_or_else(|| fail("--graph required")));
    let pattern_arg = get(flags, "pattern").unwrap_or_else(|| fail("--pattern required"));
    let qs: Vec<Pattern> = pattern_arg.split(',').map(load_pattern).collect();
    let k: usize = num(flags, "sites", 4);
    let seed: u64 = num(flags, "seed", 1);
    let algo = match get(flags, "algorithm").unwrap_or("auto") {
        "auto" => Algorithm::Auto,
        "dgpm" => Algorithm::dgpm(),
        "dgpm-nopt" => Algorithm::dgpm_nopt(),
        "dgpms" => Algorithm::Dgpms,
        "dgpmd" => Algorithm::Dgpmd,
        "dgpmt" => Algorithm::Dgpmt,
        "match" => Algorithm::MatchCentral,
        "dishhk" => Algorithm::DisHhk,
        "dmes" => Algorithm::DMes,
        other => fail(&format!("unknown algorithm '{other}'")),
    };
    let assignment = match get(flags, "partition").unwrap_or("hash") {
        "hash" => hash_partition(g.node_count(), k, seed),
        "bfs" => bfs_partition(&g, k, seed),
        "ldg" => dgs::partition::ldg_partition(&g, k, 0.1, seed),
        "tree" => tree_partition(&g, k),
        other => fail(&format!("unknown partitioner '{other}'")),
    };
    let frag = Arc::new(Fragmentation::build(&g, &assignment, k));
    let executor = match get(flags, "executor").unwrap_or("virtual") {
        "virtual" => ExecutorKind::Virtual,
        "threaded" => ExecutorKind::Threaded,
        other => fail(&format!("unknown executor '{other}'")),
    };
    // Load the fragmented graph into a session once; queries reuse the
    // cached structural facts (and, with --compress, the quotient Gc).
    let mut builder = SimEngine::builder(&g, frag).executor(executor);
    if flags.contains_key("cache") {
        builder = builder.cache_capacity(num(flags, "cache", 128));
    }
    if let Some(method) = get(flags, "compress") {
        builder = builder.compress(match method {
            "simeq" => {
                if g.node_count() > 20_000 {
                    fail("simeq compression holds an O(|V|^2) table; use --compress bisim for graphs this large");
                }
                CompressionMethod::SimEq
            }
            "bisim" => CompressionMethod::Bisim,
            other => fail(&format!("unknown compression method '{other}'")),
        });
    }
    if flags.contains_key("compress-threshold") {
        builder = builder.compression_threshold(num(flags, "compress-threshold", 0.5));
    }
    if flags.contains_key("parallel") {
        builder = builder.batch_workers(num(flags, "parallel", 0));
    }
    let mut engine = builder.build();
    let frag = Arc::clone(engine.fragmentation());

    println!(
        "graph |V|={} |E|={}  fragmentation |F|={k} |Vf|={} |Ef|={}  queries: {}",
        g.node_count(),
        g.edge_count(),
        frag.vf(),
        frag.ef(),
        qs.iter()
            .map(|q| format!("({},{})", q.node_count(), q.edge_count()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    if let Some(note) = engine.compression_note() {
        println!(
            "compression: Gc has {} classes via {} (ratio {:.3}, {})",
            note.classes,
            note.method,
            note.ratio,
            if engine.compression_active() {
                "active — Auto answers on Gc"
            } else {
                "above threshold — answering on G"
            }
        );
    }

    let repeat: usize = num(flags, "repeat", 1);
    if flags.contains_key("boolean") && flags.contains_key("updates") {
        fail("--updates needs data-selecting queries (drop --boolean)");
    }
    if flags.contains_key("boolean") {
        let q = match qs.as_slice() {
            [q] => q,
            _ => fail("--boolean takes a single pattern"),
        };
        let report = engine
            .query_boolean_with(&algo, q)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", report.plan);
        println!(
            "{}: match = {}   PT = {:.3} ms  DS = {:.3} KB",
            report.algorithm,
            report.is_match,
            report.metrics.virtual_time_ms(),
            report.metrics.data_kb()
        );
        return;
    }

    if qs.len() == 1 && repeat == 1 {
        let q = &qs[0];
        let report = engine
            .query_with(&algo, q)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", report.plan);
        println!(
            "{}: match = {}  |Q(G)| = {} pairs   PT = {:.3} ms  DS = {:.3} KB  ({} data msgs, {} ops)",
            report.algorithm,
            report.is_match,
            report.answer().len(),
            report.metrics.virtual_time_ms(),
            report.metrics.data_kb(),
            report.metrics.data_messages,
            report.metrics.total_ops
        );
        if flags.contains_key("matches") {
            for u in q.nodes() {
                let matches = report.answer().matches_of(u);
                let shown: Vec<String> = matches.iter().take(20).map(|v| v.to_string()).collect();
                let ellipsis = if matches.len() > 20 { ", ..." } else { "" };
                println!(
                    "  u{u}: {} matches [{}{}]",
                    matches.len(),
                    shown.join(", "),
                    ellipsis
                );
            }
        }
        if let Some(path) = get(flags, "updates") {
            replay_updates(&mut engine, &algo, &qs, path);
        }
        return;
    }

    // Stream mode: the batch (possibly re-submitted --repeat times)
    // runs through the worker pool and the pattern-result cache.
    for pass in 0..repeat {
        let batch = engine.query_batch_with(&algo, &qs);
        if pass == 0 {
            for (i, r) in batch.reports.iter().enumerate() {
                match r {
                    Ok(r) => println!(
                        "  [{i}] {}: match = {}  |Q(G)| = {} pairs  ({} data msgs)",
                        r.algorithm,
                        r.is_match,
                        r.answer().len(),
                        r.metrics.data_messages
                    ),
                    Err(e) => println!("  [{i}] error: {e}"),
                }
            }
        }
        println!(
            "pass {}: {}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} control msgs, {} cache hits)",
            pass + 1,
            batch.succeeded(),
            qs.len(),
            batch.total.virtual_time_ms(),
            batch.total.data_kb(),
            batch.total.control_messages,
            batch.total.cache_hits
        );
    }
    if let Some(stats) = engine.cache_stats() {
        println!(
            "cache: {} entries / capacity {}  {} hits, {} misses, {} evictions",
            stats.entries, stats.capacity, stats.hits, stats.misses, stats.evictions
        );
    }
    if let Some(path) = get(flags, "updates") {
        replay_updates(&mut engine, &algo, &qs, path);
    }
}

fn cmd_compress(flags: &HashMap<String, String>) {
    use dgs::sim::{compress_bisim, compress_simeq};
    let path = get(flags, "graph").unwrap_or_else(|| fail("--graph required"));
    let g = load_graph(path);
    let method = get(flags, "method").unwrap_or("bisim");
    let c = match method {
        "simeq" => {
            if g.node_count() > 20_000 {
                fail("simeq compression holds an O(|V|^2) table; use --method bisim for graphs this large");
            }
            compress_simeq(&g)
        }
        "bisim" => compress_bisim(&g),
        other => fail(&format!("unknown method '{other}'")),
    };
    println!(
        "{method}: |G| = {} -> |Gc| = {} ({:.1}% of original; {} classes)",
        g.size(),
        c.graph.size(),
        100.0 * c.ratio(g.size()),
        c.class_count()
    );
    if let Some(out) = get(flags, "out") {
        let f = File::create(out).unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
        io::write_graph(&c.graph, std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        println!("wrote quotient graph -> {out}");
    }
}

fn cmd_stats(flags: &HashMap<String, String>) {
    use dgs::graph::GraphStats;
    let path = get(flags, "graph").unwrap_or_else(|| fail("--graph required"));
    let g = load_graph(path);
    println!("graph {path}");
    println!("{}", GraphStats::compute(&g));
    println!(
        "top-1% hubs carry {:.1}% of edges",
        100.0 * GraphStats::top1pct_edge_share(&g)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "query" => cmd_query(&flags),
        "compress" => cmd_compress(&flags),
        "stats" => cmd_stats(&flags),
        "--help" | "-h" | "help" => usage(),
        other => fail(&format!("unknown command '{other}'")),
    }
}
